"""Design-space exploration: pick the optimal BlockGNN configuration for a task.

This walks the Section III-D flow end-to-end for a deployment scenario the
paper's introduction motivates — an edge server that must run GS-Pool
inference over a large social graph (Reddit-scale) in real time:

1. describe the GNN task analytically (model, dataset statistics, sampling),
2. exhaustively search the hardware parameters ``x, y, r, c, l, m`` under the
   ZC706's 900-DSP budget (Equation 8), minimising total cycles (Equation 7),
3. report the chosen configuration, its resource utilisation (Table VI style),
   and the latency/energy advantage over the fixed BlockGNN-base
   configuration, the HyGCN baseline and the Xeon CPU.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.experiments.tables import format_table
from repro.hardware import (
    BLOCKGNN_BASE,
    BLOCKGNN_POWER_WATTS,
    CPU_POWER_WATTS,
    CPURooflineModel,
    HyGCNModel,
    nodes_per_joule,
)
from repro.perfmodel import estimate_performance, estimate_resources, search_optimal_config
from repro.workloads import build_workload

MODEL = "GS-Pool"
DATASET = "reddit"


def main() -> None:
    workload = build_workload(MODEL, DATASET, hidden_features=512, sample_sizes=(25, 10))
    print(f"Task: {workload.summary()}")

    # --- search the optimal configuration (Table V flow) -----------------------
    print("\nSearching the design space (block size n=128, 900 DSPs)...")
    optimal = search_optimal_config(workload, block_size=128)
    params = optimal.config.describe()
    print(
        "optimal parameters: "
        + ", ".join(f"{key}={value}" for key, value in params.items())
        + f"  ->  {optimal.total_cycles / 1e6:.1f}M cycles, {optimal.latency_seconds:.2f} s"
    )

    usage = estimate_resources(optimal.config)
    print("estimated utilisation (Table VI style):")
    print(
        format_table(
            ["BRAM_18K", "DSP48", "FF", "LUT"],
            [[f"{value * 100:.1f}%" for value in usage.utilization().values()]],
        )
    )

    # --- compare against the fixed configuration and the baselines --------------
    base = estimate_performance(workload, BLOCKGNN_BASE)
    hygcn = HyGCNModel().estimate(workload)
    cpu = CPURooflineModel().estimate(workload)

    rows = [
        ["BlockGNN-opt", f"{optimal.latency_seconds:.2f}",
         f"{cpu.latency_seconds / optimal.latency_seconds:.2f}x",
         f"{nodes_per_joule(workload.num_nodes, optimal.latency_seconds, BLOCKGNN_POWER_WATTS):.1f}"],
        ["BlockGNN-base", f"{base.latency_seconds:.2f}",
         f"{cpu.latency_seconds / base.latency_seconds:.2f}x",
         f"{nodes_per_joule(workload.num_nodes, base.latency_seconds, BLOCKGNN_POWER_WATTS):.1f}"],
        ["HyGCN (4x32 + SIMD)", f"{hygcn.latency_seconds:.2f}",
         f"{cpu.latency_seconds / hygcn.latency_seconds:.2f}x",
         "-"],
        ["Xeon Gold 5220 CPU", f"{cpu.latency_seconds:.2f}", "1.00x",
         f"{nodes_per_joule(workload.num_nodes, cpu.latency_seconds, CPU_POWER_WATTS):.1f}"],
    ]
    print("\nEnd-to-end comparison (Figure 6 / Figure 7 style):")
    print(format_table(["architecture", "latency [s]", "speedup vs CPU", "nodes / J"], rows))

    print(
        f"\nBlockGNN-opt vs BlockGNN-base: {base.latency_seconds / optimal.latency_seconds:.2f}x — "
        "this is the benefit of the performance & resource model picking per-task parameters."
    )


if __name__ == "__main__":
    main()
