"""Compression study: accuracy vs. block size, and the aggregator-only variant.

Reproduces the *shape* of Table III on a laptop-scale synthetic Reddit
stand-in: for each block size, train the model with block-circulant weights
and report TCR / SR / accuracy.  Also demonstrates the two deployment paths:

* train-compressed (the paper's approach: impose the constraint during training),
* post-training projection of a dense model (``compress_model``),
* the Section V "compress only the aggregators" trade-off, and
* sampled vs. full-graph layer-wise inference (``evaluate_accuracy(mode="full")``).

Run with:  python examples/compress_train_evaluate.py
"""

from __future__ import annotations

from repro.compression import CompressionConfig, compress_model
from repro.experiments import render_table3, run_table3
from repro.experiments.ablations import render_aggregator_only, run_aggregator_only_ablation
from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.models.trainer import compare_inference_modes

MODEL = "GS-Pool"


def block_size_sweep() -> None:
    print("=== Accuracy vs. block size (Table III shape) ===")
    result = run_table3(
        block_sizes=(1, 8, 16),
        models=(MODEL,),
        dataset="reddit",
        dataset_scale=0.004,
        num_features=64,
        hidden_features=64,
        epochs=5,
        fanouts=(10, 5),
        seed=0,
    )
    print(render_table3(result))
    for block_size in (8, 16):
        drop = result.accuracy_drop(MODEL, block_size)
        print(f"accuracy drop at n={block_size}: {drop:+.3f}")


def post_training_projection() -> None:
    print("\n=== Post-training projection of a dense model ===")
    graph = load_dataset("cora", scale=0.2, seed=1, num_features=128)
    model = create_model(MODEL, graph.num_features, 64, graph.num_classes, seed=1)
    trainer = Trainer(model, graph, TrainingConfig(epochs=4, batch_size=64, fanouts=(10, 5), seed=1))
    trainer.fit()
    dense_accuracy = trainer.test_accuracy()

    report = compress_model(model, CompressionConfig(block_size=8))
    projected_accuracy = trainer.test_accuracy()
    print(f"dense accuracy      : {dense_accuracy:.3f}")
    print(f"projected (n=8)     : {projected_accuracy:.3f}  "
          f"({report.storage_reduction:.1f}x fewer stored parameters)")

    # A couple of fine-tuning epochs usually recover most of the projection
    # loss.  Note: compression swaps the layer objects, so a fresh Trainer
    # (whose optimiser tracks the new circulant parameters) is required.  The
    # validation loop uses full-graph layer-wise inference (eval_mode="full"),
    # which propagates every node once per layer instead of re-sampling
    # neighbourhoods per batch.
    finetuner = Trainer(
        model,
        graph,
        TrainingConfig(epochs=4, batch_size=64, fanouts=(10, 5), seed=2, eval_mode="full"),
    )
    finetuner.fit()
    print(f"after fine-tuning   : {finetuner.test_accuracy():.3f}")


def inference_modes() -> None:
    print("\n=== Sampled vs. full-graph layer-wise inference ===")
    graph = load_dataset("cora", scale=0.3, seed=0, num_features=64)
    model = create_model(
        MODEL, graph.num_features, 64, graph.num_classes,
        compression=CompressionConfig(block_size=8), seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=4, fanouts=(10, 5), seed=0)).fit()

    comparison = compare_inference_modes(model, graph, fanouts=(30, 30), seed=0)
    print(f"sampled (fanout 30) : acc {comparison.sampled_accuracy:.3f} "
          f"in {comparison.sampled_seconds * 1e3:.1f} ms")
    print(f"full-graph          : acc {comparison.full_accuracy:.3f} "
          f"in {comparison.full_seconds * 1e3:.1f} ms ({comparison.speedup:.1f}x faster)")


def aggregator_only() -> None:
    print("\n=== Section V ablation: compress only the aggregators ===")
    result = run_aggregator_only_ablation(
        model_name=MODEL,
        block_size=8,
        dataset="reddit",
        dataset_scale=0.004,
        num_features=64,
        hidden_features=64,
        epochs=5,
        fanouts=(10, 5),
        seed=0,
    )
    print(render_aggregator_only(result))
    print(
        f"accuracy drop: full compression {result.drop_full:+.3f}, "
        f"aggregator-only {result.drop_aggregator_only:+.3f}"
    )


def main() -> None:
    block_size_sweep()
    post_training_projection()
    aggregator_only()
    inference_modes()


if __name__ == "__main__":
    main()
