"""Quickstart: train a block-circulant-compressed GNN and inspect the savings.

This is the 5-minute tour of the library:

1. load a (synthetic stand-in for a) benchmark graph,
2. build a GraphSAGE-Pool model whose weight matrices are block-circulant,
3. train it with neighbour sampling and report accuracy,
4. compare parameter counts and theoretical FLOPs against the dense baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.compression import CompressionConfig, model_compression_report
from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.profiling import profile_model

BLOCK_SIZE = 8


def main() -> None:
    # 1. Data: a scaled-down synthetic stand-in for Cora (offline environment).
    graph = load_dataset("cora", scale=0.2, seed=0, num_features=128)
    print("Dataset:", graph.summary())

    # 2. Model: 2-layer GS-Pool with block-circulant weights (n = 8).
    compression = CompressionConfig(block_size=BLOCK_SIZE)
    model = create_model(
        "GS-Pool",
        in_features=graph.num_features,
        hidden_features=64,
        num_classes=graph.num_classes,
        compression=compression,
        seed=0,
    )
    report = model_compression_report(model)
    print(
        f"Model: GS-Pool, block size n={BLOCK_SIZE}  "
        f"({report['stored']} stored parameters vs {report['dense_equivalent']} dense, "
        f"{report['dense_equivalent'] / report['stored']:.1f}x storage reduction)"
    )
    print(
        f"Theoretical computation reduction (Table III): "
        f"{compression.theoretical_computation_reduction:.1f}x"
    )

    # 3. Train with GraphSAGE-style neighbour sampling (S1=10, S2=5 here).
    config = TrainingConfig(epochs=5, batch_size=64, fanouts=(10, 5), learning_rate=0.01, seed=0)
    trainer = Trainer(model, graph, config)
    trainer.fit(verbose=True)
    print(f"Test accuracy: {trainer.test_accuracy():.3f}")

    # 4. Why compress?  The Table II profile of GS-Pool on full-scale Reddit.
    profile = profile_model("GS-Pool")
    print(
        "\nGS-Pool on full-scale Reddit needs "
        f"{profile.aggregation.flops:.2e} aggregation FLOPs per layer pass — "
        f"block-circulant compression with n=128 cuts the mat-vec work by ~18.3x."
    )


if __name__ == "__main__":
    main()
