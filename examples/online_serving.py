"""Online serving tour: micro-batching, sharded workers, embedding cache.

Walks through the serving engine end to end:

1. train a block-circulant GCN on a Reddit-like synthetic graph,
2. partition the graph into halo-extended shards and start an
   :class:`repro.serving.InferenceServer`,
3. replay a request stream three ways — request-at-a-time, micro-batched
   cold, micro-batched warm — and compare latency/throughput,
4. verify the served answers are identical to offline full-graph inference,
5. price one request in CirCore accelerator cycles per shard (perfmodel).

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression import CompressionConfig
from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import InferenceServer, ServingConfig, estimate_shard_request_cycles


def main() -> None:
    # 1. A trained model to serve.
    graph = load_dataset("reddit", scale=0.002, seed=0, num_features=64)
    print("Dataset:", graph.summary())
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=64,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=8),
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=2, fanouts=(10, 5), seed=0)).fit()

    # 2. The server: 2 shards, 32-request micro-batches, per-worker LRU cache.
    server = InferenceServer(
        model,
        graph,
        ServingConfig(num_shards=2, max_batch_size=32, max_delay=0.002, cache_capacity=4096),
    )
    print(server.describe())

    # 3. A bursty request stream (hot nodes repeat, like real traffic).
    rng = np.random.default_rng(0)
    requests = rng.choice(graph.num_nodes, size=512, replace=True)

    naive = InferenceServer(
        model, graph, ServingConfig(num_shards=2, max_batch_size=1, cache_capacity=0)
    )
    start = time.perf_counter()
    naive_predictions = naive.predict(requests)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold_predictions = server.predict(requests)
    cold_seconds = time.perf_counter() - start
    cold_stats = server.stats()

    server.reset_stats()
    start = time.perf_counter()
    server.predict(requests)
    warm_seconds = time.perf_counter() - start
    warm_stats = server.stats()

    print("\n--- request-at-a-time vs micro-batched ---")
    print(f"request-at-a-time : {naive_seconds * 1e3:7.1f} ms  ({len(requests) / naive_seconds:7.0f} req/s)")
    print(
        f"micro-batched cold: {cold_seconds * 1e3:7.1f} ms  ({len(requests) / cold_seconds:7.0f} req/s, "
        f"{naive_seconds / cold_seconds:.1f}x)"
    )
    print(
        f"micro-batched warm: {warm_seconds * 1e3:7.1f} ms  ({len(requests) / warm_seconds:7.0f} req/s, "
        f"{naive_seconds / warm_seconds:.1f}x)"
    )
    print("\n--- cold pass stats ---")
    print(cold_stats.render())
    print("\n--- warm pass stats ---")
    print(warm_stats.render())

    # 4. Served answers match offline full-graph inference exactly.
    reference = model.full_forward(graph).data[requests].argmax(axis=-1)
    assert np.array_equal(cold_predictions, reference)
    assert np.array_equal(naive_predictions, reference)
    print("\nserved predictions identical to full-graph inference: OK")

    # 5. What would each shard cost on the BlockGNN accelerator?
    print("\n--- perfmodel: per-request CirCore cycles ---")
    estimates = estimate_shard_request_cycles(
        "GCN", server.shards, num_classes=graph.num_classes,
        hidden_features=64, num_layers=model.num_layers, sample_sizes=(10, 5),
    )
    for shard, estimate in zip(server.shards, estimates):
        print(
            f"shard {shard.part_id}: {estimate.cycles_per_node:.0f} cycles/request "
            f"({estimate.cycles_per_node / estimate.config.frequency_hz * 1e6:.1f} us @ 100 MHz)"
        )


if __name__ == "__main__":
    main()
