"""Online serving tour: micro-batching, sharding, concurrency, overload.

Walks through the serving engine end to end:

1. train a block-circulant GCN on a Reddit-like synthetic graph,
2. partition the graph into halo-extended shards and start an
   :class:`repro.serving.InferenceServer`,
3. replay a request stream three ways — request-at-a-time, micro-batched
   cold, micro-batched warm — and compare latency/throughput,
4. verify the served answers are identical to offline full-graph inference,
5. price one request in CirCore accelerator cycles per shard (perfmodel),
6. serve the same stream through the concurrent (thread-pool) executor and
   check it answers bit-identically to the serial one,
7. overload the server 2x with bounded queues + ``shed_oldest`` and watch
   class-aware admission shed backfill first while accounting for every
   request,
8. go through the front door: ``submit()`` returns :class:`RequestHandle`
   futures, and with ``ingress="thread"`` a background pump serves them —
   ``handle.result()`` blocks until the answer lands, no ``drain()`` needed.

Run with:  python examples/online_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.compression import CompressionConfig
from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import (
    InferenceServer,
    ManualClock,
    ServingConfig,
    estimate_shard_request_cycles,
)


def main() -> None:
    # 1. A trained model to serve.
    graph = load_dataset("reddit", scale=0.002, seed=0, num_features=64)
    print("Dataset:", graph.summary())
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=64,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=8),
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=2, fanouts=(10, 5), seed=0)).fit()

    # 2. The server: 2 shards, 32-request micro-batches, per-worker LRU cache.
    server = InferenceServer(
        model,
        graph,
        ServingConfig(num_shards=2, max_batch_size=32, max_delay=0.002, cache_capacity=4096),
    )
    print(server.describe())

    # 3. A bursty request stream (hot nodes repeat, like real traffic).
    rng = np.random.default_rng(0)
    requests = rng.choice(graph.num_nodes, size=512, replace=True)

    naive = InferenceServer(
        model, graph, ServingConfig(num_shards=2, max_batch_size=1, cache_capacity=0)
    )
    start = time.perf_counter()
    naive_predictions = naive.predict(requests)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold_predictions = server.predict(requests)
    cold_seconds = time.perf_counter() - start
    cold_stats = server.stats()

    server.reset_stats()
    start = time.perf_counter()
    server.predict(requests)
    warm_seconds = time.perf_counter() - start
    warm_stats = server.stats()

    print("\n--- request-at-a-time vs micro-batched ---")
    print(f"request-at-a-time : {naive_seconds * 1e3:7.1f} ms  ({len(requests) / naive_seconds:7.0f} req/s)")
    print(
        f"micro-batched cold: {cold_seconds * 1e3:7.1f} ms  ({len(requests) / cold_seconds:7.0f} req/s, "
        f"{naive_seconds / cold_seconds:.1f}x)"
    )
    print(
        f"micro-batched warm: {warm_seconds * 1e3:7.1f} ms  ({len(requests) / warm_seconds:7.0f} req/s, "
        f"{naive_seconds / warm_seconds:.1f}x)"
    )
    print("\n--- cold pass stats ---")
    print(cold_stats.render())
    print("\n--- warm pass stats ---")
    print(warm_stats.render())

    # 4. Served answers match offline full-graph inference exactly.
    reference = model.full_forward(graph).data[requests].argmax(axis=-1)
    assert np.array_equal(cold_predictions, reference)
    assert np.array_equal(naive_predictions, reference)
    print("\nserved predictions identical to full-graph inference: OK")

    # 5. What would each shard cost on the BlockGNN accelerator?
    print("\n--- perfmodel: per-request CirCore cycles ---")
    estimates = estimate_shard_request_cycles(
        "GCN", server.shards, num_classes=graph.num_classes,
        hidden_features=64, num_layers=model.num_layers, sample_sizes=(10, 5),
    )
    for shard, estimate in zip(server.shards, estimates):
        print(
            f"shard {shard.part_id}: {estimate.cycles_per_node:.0f} cycles/request "
            f"({estimate.cycles_per_node / estimate.config.frequency_hz * 1e6:.1f} us @ 100 MHz)"
        )

    # 6. The concurrent executor: one flush task per shard on a thread pool.
    #    Answers must be bit-identical — concurrency changes wall-clock only.
    print("\n--- concurrent executor (4 shards, thread pool) ---")
    for executor in ("serial", "concurrent"):
        with InferenceServer(
            model,
            graph,
            ServingConfig(num_shards=4, max_batch_size=32, cache_capacity=0, executor=executor),
        ) as wide:
            start = time.perf_counter()
            wide_predictions = wide.predict(requests)
            seconds = time.perf_counter() - start
            peak = wide.stats().peak_concurrency
        assert np.array_equal(wide_predictions, reference)
        print(
            f"{executor:10s}: {seconds * 1e3:7.1f} ms ({len(requests) / seconds:7.0f} req/s, "
            f"peak {peak} flushes in flight)"
        )

    # 7. Overload: 2x the service rate against bounded queues.  Admission is
    #    class-aware: under shed_oldest the lightest class (backfill) is
    #    evicted first, premium batches first — and every request still
    #    terminates in exactly one state.
    print("\n--- admission control under 2x overload (shed_oldest, 3 classes) ---")
    clock = ManualClock()
    overloaded = InferenceServer(
        model,
        graph,
        ServingConfig(
            num_shards=2, max_batch_size=16, max_delay=0.005,
            max_queue_depth=32, overload_policy="shed_oldest", default_timeout=0.25,
        ),
        clock=clock,
    )
    overloaded.scheduler.flush_on_submit = False  # open loop: we drive the rounds
    class_cycle = ("premium", "standard", "backfill", "backfill")
    submitted = []
    for _ in range(20):
        arrivals = rng.choice(graph.num_nodes, size=64, replace=True)  # 2x capacity
        submitted.extend(
            overloaded.submit(int(node), request_class=class_cycle[i % len(class_cycle)])
            for i, node in enumerate(arrivals)
        )
        clock.advance(0.010)
        overloaded.poll()
    overloaded.shutdown()
    stats = overloaded.stats()
    print(
        f"submitted {stats.submitted_requests}: {stats.completed_requests} completed, "
        f"{stats.shed_requests} shed, {stats.expired_requests} expired, "
        f"{stats.rejected_requests} rejected"
    )
    for name, ledger in stats.class_requests.items():
        print(
            f"  class {name:9s}: {ledger['completed']:4d} completed, "
            f"{ledger['shed']:4d} shed, {ledger['expired']:4d} expired"
        )
    print(f"completed-request p99 latency: {stats.p99_latency * 1e3:.1f} ms (simulated clock)")
    assert stats.submitted_requests == len(submitted)
    print("every request accounted for: OK")

    # 8. The front door: RequestHandle futures + a background ingress pump.
    #    submit() enqueues and wakes the pump; result() blocks until the
    #    answer lands.  No drain(), no polling — and work stealing lets idle
    #    executor slots drain the hottest queue at round barriers.
    print("\n--- front door: handles, background ingress, work stealing ---")
    front = InferenceServer(
        model,
        graph,
        ServingConfig(
            num_shards=2, max_batch_size=32, max_delay=0.002, cache_capacity=4096,
            ingress="thread", work_stealing=True, executor="concurrent",
        ),
    )
    try:
        handles = [
            front.submit(int(node), request_class="premium" if i % 4 == 0 else "backfill")
            for i, node in enumerate(requests[:64])
        ]
        answers = np.array([handle.result(timeout=10.0) for handle in handles])
    finally:
        front.shutdown()
    assert np.array_equal(answers, reference[:64])
    premium_latencies = [h.latency for h in handles if h.request_class == "premium"]
    print(
        f"{len(handles)} handles resolved by the background pump (no drain); "
        f"premium p99 {np.percentile(premium_latencies, 99) * 1e3:.2f} ms, "
        f"{front.stats().stolen_batches} batches work-stolen"
    )
    print("front-door answers identical to full-graph inference: OK")


if __name__ == "__main__":
    main()
