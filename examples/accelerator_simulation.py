"""Functional accelerator simulation: run a trained compressed GNN on CirCore.

This example demonstrates the software/hardware co-design loop on real data:

1. train a block-circulant GS-Pool model on a small synthetic graph,
2. pre-compute the spectral weights and load them into the BlockGNN
   accelerator's Weight Buffer,
3. execute the pooling aggregation and the combination layer on the modelled
   datapath (FFT channels -> spectral systolic array -> IFFT channels -> VPU)
   and verify the outputs match the software library bit-for-bit,
4. report the pipeline utilisation statistics and the analytical latency /
   energy projection for the full-scale dataset.

Run with:  python examples/accelerator_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro.compression import CompressionConfig
from repro.graph import NeighborSampler, load_dataset
from repro.hardware import BLOCKGNN_POWER_WATTS, BlockGNNAccelerator, CirCoreConfig, nodes_per_joule
from repro.models import Trainer, TrainingConfig, create_model
from repro.tensor import Tensor
from repro.workloads import build_workload

BLOCK_SIZE = 16


def main() -> None:
    # --- 1. train a compressed model -------------------------------------------------
    graph = load_dataset("pubmed", scale=0.05, seed=0, num_features=64)
    print("Dataset:", graph.summary())
    model = create_model(
        "GS-Pool",
        in_features=graph.num_features,
        hidden_features=64,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=BLOCK_SIZE),
        seed=0,
    )
    trainer = Trainer(model, graph, TrainingConfig(epochs=4, batch_size=64, fanouts=(10, 5), seed=0))
    trainer.fit()
    print(f"software test accuracy: {trainer.test_accuracy():.3f}")

    # --- 2. load the spectral weights into the accelerator ---------------------------
    accelerator = BlockGNNAccelerator(
        CirCoreConfig(
            fft_channels=8, ifft_channels=8, systolic_rows=4, systolic_cols=4, block_size=BLOCK_SIZE
        )
    )
    stored = accelerator.load_model(model)
    print(f"\nloaded {len(stored)} compressed layers into the Weight Buffer: {stored}")
    print(f"weight buffer utilisation: {accelerator.buffers.weight_buffer.utilization * 100:.1f}%")

    # --- 3. run the first layer's pooling aggregation on the datapath ----------------
    sampler = NeighborSampler(graph, fanouts=(10, 5), seed=0)
    batch = sampler.sample(np.arange(16))
    block = batch.blocks[0]
    features = batch.input_features(graph)
    neighbor_features = features[block.neighbor_index]

    layer = model.layers[0]
    hardware_pooled = accelerator.aggregate_max_pool(stored[0], neighbor_features)
    software_pooled = (
        layer.pool_fc(Tensor(neighbor_features.reshape(-1, layer.in_features)))
        .relu()
        .data.reshape(block.num_dst, block.fanout, -1)
        .max(axis=1)
    )
    error = float(np.abs(hardware_pooled - software_pooled).max())
    print(f"\nhardware vs software max-pooling aggregation |error| = {error:.2e}")
    assert error < 1e-9

    report = accelerator.utilization_report()
    print("pipeline statistics for this batch:")
    for key, value in report.items():
        formatted = f"{value * 100:.1f}%" if key.endswith("utilization") else f"{value:,.0f}"
        print(f"  {key:28s} {formatted}")

    # --- 4. project to the full-scale deployment -------------------------------------
    workload = build_workload("GS-Pool", "pubmed", hidden_features=512, sample_sizes=(25, 10))
    estimate = accelerator.estimate_latency(workload)
    efficiency = nodes_per_joule(workload.num_nodes, estimate.latency_seconds, BLOCKGNN_POWER_WATTS)
    print(
        f"\nprojected full-scale Pubmed inference on this configuration: "
        f"{estimate.total_cycles / 1e6:.1f}M cycles = {estimate.latency_seconds * 1e3:.1f} ms, "
        f"{efficiency:.0f} nodes/J at {BLOCKGNN_POWER_WATTS} W"
    )


if __name__ == "__main__":
    main()
