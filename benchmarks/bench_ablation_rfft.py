"""Benchmark: Section V ablation — real-valued FFT (RFFT/IRFFT).

Paper reference: the gap between the implemented speedup (up to 8.3x) and the
theoretical reduction (up to 18.3x) is attributed to the FFT implementation;
because GNN inputs are real-valued, switching to RFFT roughly halves the
spectral work.  The benchmark verifies the numerical equivalence of the RFFT
kernel and quantifies the FLOP / cycle savings.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_rfft_ablation
from repro.experiments.tables import format_table


def test_rfft_ablation(benchmark, save_result):
    result = benchmark(run_rfft_ablation)
    table = format_table(
        ["quantity", "complex FFT", "RFFT", "reduction"],
        [
            ["kernel FLOPs / matvec", f"{result.complex_flops:.3e}", f"{result.rfft_flops:.3e}", f"{result.flop_reduction:.2f}x"],
            ["estimated cycles (GS-Pool/reddit)", f"{result.complex_cycles:.3e}", f"{result.rfft_cycles:.3e}", f"{result.cycle_reduction:.2f}x"],
            ["max |output difference|", "-", f"{result.max_output_difference:.2e}", "-"],
        ],
    )
    save_result("ablation_rfft", table)

    assert result.max_output_difference < 1e-9
    assert result.flop_reduction == pytest.approx(2.0, rel=0.2)
    assert result.cycle_reduction >= 1.0
