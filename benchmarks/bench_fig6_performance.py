"""Benchmark: regenerate Figure 6 — performance comparison of the four architectures.

Paper reference (Section IV-C): normalised to the Xeon Gold 5220 CPU,
BlockGNN-opt achieves on average 2.3x speedup over the CPU and 4.2x over the
FPGA-scaled HyGCN, with a maximum of 8.3x over HyGCN (G-GCN on Reddit);
BlockGNN-base trails BlockGNN-opt; the GCN tasks show the smallest gains
because their aggregation is not compute-intensive; Reddit is processed as
two graph partitions.

The reproduced quantities are the orderings and rough factors (the baselines
are analytical roofline models, see EXPERIMENTS.md for the calibration notes).
"""

from __future__ import annotations


from repro.experiments import render_figure6, run_figure6


def _run():
    return run_figure6()


def test_figure6_performance_comparison(benchmark, save_result):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    text = render_figure6(result)
    summary = (
        f"mean BlockGNN-opt vs CPU   : {result.mean_speedup_vs_cpu:.2f}x (paper 2.3x)\n"
        f"mean BlockGNN-opt vs HyGCN : {result.mean_speedup_vs_hygcn:.2f}x (paper 4.2x)\n"
        f"max  BlockGNN-opt vs HyGCN : {result.max_speedup_vs_hygcn[0]:.2f}x on "
        f"{result.max_speedup_vs_hygcn[1]}/{result.max_speedup_vs_hygcn[2]} (paper 8.3x on G-GCN/reddit)"
    )
    save_result("figure6_performance", text + "\n\n" + summary)

    # Who wins: BlockGNN-opt beats both baselines on every compute-heavy task.
    for entry in result.entries:
        if entry.model != "GCN":
            assert entry.speedups_vs_cpu["BlockGNN-opt"] > 1.0
            assert entry.speedup_opt_vs_hygcn > 1.0
        # The tuned configuration never loses to the fixed one.
        assert entry.speedup_opt_vs_base >= 1.0 - 1e-9

    # GCN shows the smallest gains (Section IV-C's explicit observation).
    for dataset in ("cora", "citeseer", "pubmed", "reddit"):
        gcn = result.entry("GCN", dataset).speedups_vs_cpu["BlockGNN-opt"]
        others = [
            result.entry(model, dataset).speedups_vs_cpu["BlockGNN-opt"]
            for model in ("GS-Pool", "G-GCN", "GAT")
        ]
        assert gcn < min(others)

    # Rough factors: the averages land within ~3x of the paper's headline numbers.
    assert 1.5 < result.mean_speedup_vs_cpu < 7.0
    assert 2.0 < result.mean_speedup_vs_hygcn < 13.0
    assert result.max_speedup_vs_hygcn[0] > 4.0
