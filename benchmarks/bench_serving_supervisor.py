"""Self-healing serving benchmarks with gates (supervisor, budget, hedging).

Gates on the synthetic Reddit-like graph served by a 4-shard x 2-replica
server, exercising the PR-9 self-healing layer end to end:

1. **Supervisor rebuild + steady-state floor** (``steady_state_ratio``): a
   ``kind="die"`` :class:`~repro.serving.FaultPlan` permanently kills one of
   the two replicas of every shard during a chaos pass.  The
   :class:`~repro.serving.ReplicaSupervisor` must quarantine and rebuild each
   corpse mid-stream (fresh worker, halo-prewarmed cache, new epoch), no
   request may be lost (the ledger balances to the submission count, every
   request completes) and every prediction stays bitwise equal to offline
   inference.  A second, timed pass after the fault window closes — all
   replicas healed — must reach >= ``STEADY_FLOOR`` x the throughput of a
   fault-free server running the identical two-pass schedule.
2. **Retry-budget ceiling** (exact counts): under a correlated flap storm
   (two of every three dispatches fail, deterministically, on *every*
   replica) a zero-refill :class:`~repro.serving.RetryBudget` of ``B`` tokens
   caps total granted retries at exactly ``B`` — asserted to the token via
   the stats ledger — while the identical no-budget baseline retries far
   past it.  This is the retry-storm anti-amplification contract.
3. **Hedged-dispatch tail floor** (``hedged_p99_speedup``): with one
   deterministically slow replica per shard (+200 ms per dispatch),
   ``hedge_after=10ms`` must *strictly* lower completed-request p99 versus
   the unhedged run of the same stream, with predictions bitwise equal
   between the two runs (hedging changes latency, never answers).

All runs use a ``ManualClock``: injected stalls advance simulated time only,
so latency percentiles are exact fault arithmetic and the steady-state ratio
is computed over **CPU time** (``time.process_time``), best-of interleaved
repeats.  ``BLOCKGNN_QUICK=1`` shrinks the graph and streams for CI;
``BLOCKGNN_CHAOS_SEED`` re-seeds the plans for the chaos-smoke job without
touching the gates' fixed seed.  Gate 1 additionally dumps the supervisor's
event log to ``results/supervisor_events.json`` as a CI artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import FaultPlan, FaultSpec, InferenceServer, ManualClock, ServingConfig

QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"

SCALE = 0.0015 if QUICK else 0.006
HIDDEN = 32 if QUICK else 64
NUM_SHARDS = 4
NUM_REPLICAS = 2
BATCH_SIZE = 32
REPEATS = 3 if QUICK else 5
STREAM = 4 if QUICK else 8  # batches per shard per pass

CHAOS_SEED = int(os.environ.get("BLOCKGNN_CHAOS_SEED", "1337"))

#: Worker ids of the first replica of every shard (workers are laid out
#: shard-major: shard s owns ids [s*R, s*R+R)) — the "1 of 2 replicas per
#: shard" victims of the die plan and the slow replicas of the hedging gate.
FIRST_REPLICAS = tuple(range(0, NUM_SHARDS * NUM_REPLICAS, NUM_REPLICAS))

#: Die-window end (simulated seconds): deaths only fire before this instant,
#: so replicas rebuilt after the window stay alive for the steady-state pass.
DIE_UNTIL = 0.5

#: Steady-state throughput floor of the healed server vs fault-free.
STEADY_FLOOR = 0.9

#: Retry-budget ceiling for gate 2 (zero refill => exact).
BUDGET = 8 if QUICK else 16

#: Hedging gate: stall size and hedge trigger.
SLOW_SECONDS = 0.2
HEDGE_AFTER = 0.01


@pytest.fixture(scope="module")
def served_setup():
    """A trained GCN on the Reddit-like graph plus its offline reference."""
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=1, fanouts=(10, 5), seed=0)).fit()
    model.eval()
    reference = model.full_forward(graph).data.argmax(axis=-1)
    return graph, model, reference


def _server(model, graph, fault_plan=None, **overrides):
    defaults = dict(
        num_shards=NUM_SHARDS,
        num_replicas=NUM_REPLICAS,
        max_batch_size=BATCH_SIZE,
        max_delay=0.002,
        cache_capacity=65536,
        fault_plan=fault_plan,
        max_retries=2,
        retry_backoff=0.0005,
        seed=0,
    )
    defaults.update(overrides)
    return InferenceServer(model, graph, ServingConfig(**defaults), clock=ManualClock())


def _stream(graph, seed=1):
    size = STREAM * BATCH_SIZE * NUM_SHARDS
    return np.random.default_rng(seed).choice(graph.num_nodes, size=size, replace=True)


def _assert_ledger_balances(requests, stats, reference):
    """Exactly-once termination + bitwise-exact completions (zero lost)."""
    assert all(request.done for request in requests)
    assert stats.submitted_requests == len(requests)
    terminal = (
        stats.completed_requests
        + stats.failed_requests
        + stats.rejected_requests
        + stats.shed_requests
        + stats.expired_requests
    )
    assert terminal == len(requests)
    for request in requests:
        if request.completed:
            assert request.prediction == reference[request.node]


def _two_pass(model, graph, fault_plan, **overrides):
    """Chaos pass, close the fault window, then a timed steady-state pass.

    Returns (cpu_seconds_of_pass2, pass1_requests, pass2_requests, server).
    The caller shuts the server down (gate 1 reads the supervisor log first).
    """
    server = _server(model, graph, fault_plan=fault_plan, **overrides)
    pass1 = server.submit_many(_stream(graph))
    server.drain()
    server.clock.advance(2 * DIE_UNTIL)  # every fault window is over
    nodes = _stream(graph, seed=2)
    start = time.process_time()
    pass2 = server.submit_many(nodes)
    server.drain()
    seconds = time.process_time() - start
    return seconds, pass1, pass2, server


def test_supervisor_rebuild_steady_state_gate(served_setup, save_result, results_dir):
    """Gate 1: die plan kills 1 of 2 replicas per shard; the supervisor
    rebuilds them and the healed server's throughput floor holds."""
    graph, model, reference = served_setup

    def die_plan():
        return FaultPlan(
            FaultSpec(workers=FIRST_REPLICAS, die_rate=1.0, until=DIE_UNTIL),
            seed=CHAOS_SEED,
        )

    healing = dict(
        supervisor=True,
        supervisor_failure_budget=1,
        supervisor_window=10.0,
        health_failure_threshold=1,
        health_cooldown=0.05,
    )
    _two_pass(model, graph, None)[3].shutdown()  # warm numpy/scipy paths once

    best = {"fault_free": float("inf"), "die": float("inf")}
    last = {}
    for _ in range(REPEATS):
        seconds, p1, p2, server = _two_pass(model, graph, None)
        best["fault_free"] = min(best["fault_free"], seconds)
        stats = server.stats()
        server.shutdown()
        last["fault_free"] = (p1, p2, stats, None)

        seconds, p1, p2, server = _two_pass(model, graph, die_plan(), **healing)
        best["die"] = min(best["die"], seconds)
        stats = server.stats()
        events = server.supervisor.event_log()
        # Every replica the server can still dispatch to is live, and the
        # plan's corpse set was emptied by the rebuilds.
        assert not server.faults.dead_workers()
        assert all(not w.retired for row in server._replicas for w in row)
        server.shutdown()
        last["die"] = (p1, p2, stats, events)

    p1, p2, stats, events = last["die"]
    # The supervisor really healed: one rebuild per shard at minimum (round-
    # robin dispatch sends every shard's first batch to its doomed replica).
    assert stats.supervisor_restarts >= NUM_SHARDS
    assert stats.supervisor_quarantines >= NUM_SHARDS
    rebuilt = {e["worker"] for e in events if e["event"] != "quarantine"}
    assert rebuilt >= set(FIRST_REPLICAS)
    # Zero lost requests across both passes; every completion exact.  The
    # chaos pass keeps a live sibling per shard, so nothing even fails.
    _assert_ledger_balances(p1 + p2, stats, reference)  # stats span both passes
    assert all(request.completed for request in p1 + p2)
    for request in p1 + p2:
        assert request.prediction == reference[request.node]

    total = len(_stream(graph))
    rates = {name: total / seconds for name, seconds in best.items()}
    steady_state_ratio = rates["die"] / rates["fault_free"]

    log_path = results_dir / "supervisor_events.json"
    log_path.write_text(json.dumps(events, indent=2) + "\n")

    save_result(
        "serving_supervisor",
        f"self-healing under a die plan (CPU time, best of {REPEATS}), GCN, "
        f"{NUM_SHARDS} shards x {NUM_REPLICAS} replicas, batch {BATCH_SIZE}, "
        f"{total} requests/pass on {graph.summary()}\n"
        f"  fault-free steady state : {best['fault_free'] * 1e3:8.1f} ms "
        f"({rates['fault_free']:7.0f} req/s)\n"
        f"  healed steady state     : {best['die'] * 1e3:8.1f} ms "
        f"({rates['die']:7.0f} req/s, ratio {steady_state_ratio:.2f}, "
        f"floor {STEADY_FLOOR:.1f})\n"
        f"  healing                 : {stats.supervisor_restarts} rebuilds "
        f"({stats.supervisor_quarantines} quarantined), "
        f"{stats.prewarmed_rows} rows pre-warmed, event log -> {log_path.name}",
        steady_state_ratio=steady_state_ratio,
        supervisor_restarts=stats.supervisor_restarts,
        prewarmed_rows=stats.prewarmed_rows,
        healed_req_per_s=rates["die"],
        fault_free_req_per_s=rates["fault_free"],
    )
    assert steady_state_ratio >= STEADY_FLOOR, (
        f"healed server reaches only {steady_state_ratio:.2f}x fault-free "
        f"steady-state throughput (floor {STEADY_FLOOR}x)"
    )


def test_retry_budget_caps_flap_storm_exactly(served_setup, save_result):
    """Gate 2: a zero-refill budget of B tokens grants exactly B retries
    under a correlated flap storm; the no-budget baseline blows past B."""
    graph, model, reference = served_setup
    # Two of every three dispatches fail, on every replica, deterministically
    # — correlated flapping that failover alone amplifies into a retry storm.
    storm = FaultSpec(flap_period=3, flap_down=2)
    common = dict(
        max_retries=4,
        health_failure_threshold=10**6,  # breakers stay closed: pure retries
        executor="serial",
    )

    def run(retry_budget):
        server = _server(
            model,
            graph,
            fault_plan=FaultPlan(storm, seed=CHAOS_SEED),
            retry_budget=retry_budget,
            retry_budget_refill=0.0,
            **common,
        )
        requests = server.submit_many(_stream(graph))
        server.drain()
        stats = server.stats()
        server.shutdown()
        _assert_ledger_balances(requests, stats, reference)
        return stats

    baseline = run(retry_budget=None)
    capped = run(retry_budget=BUDGET)

    # The storm is real: unbudgeted, retries exceed the ceiling.
    assert baseline.retry_attempts > BUDGET
    # Budgeted: granted retries == spent tokens == B, to the token.
    assert capped.retry_attempts == BUDGET
    assert capped.retry_budget_spent == BUDGET
    assert capped.retry_budget_tokens == 0.0
    assert capped.retry_budget_exhausted > 0

    save_result(
        "serving_supervisor_budget",
        f"retry budget under a 2/3 flap storm, {len(_stream(graph))} requests, "
        f"{NUM_SHARDS} shards x {NUM_REPLICAS} replicas, batch {BATCH_SIZE}\n"
        f"  no budget : {baseline.retry_attempts} retries, "
        f"{baseline.failed_requests} failed\n"
        f"  budget {BUDGET:2d} : {capped.retry_attempts} retries "
        f"(== ceiling, {capped.retry_budget_exhausted} denied), "
        f"{capped.failed_requests} failed",
        baseline_retries=baseline.retry_attempts,
        capped_retries=capped.retry_attempts,
        budget=BUDGET,
        denied=capped.retry_budget_exhausted,
    )


def test_hedged_dispatch_lowers_p99_exactly(served_setup, save_result):
    """Gate 3: hedging strictly lowers p99 on a deterministic slow-replica
    plan while keeping every prediction bitwise equal to the unhedged run."""
    graph, model, reference = served_setup

    def slow_plan():
        # One always-slow replica per shard: +200 ms on every dispatch.
        return FaultPlan(
            FaultSpec(workers=FIRST_REPLICAS, slow_rate=1.0, slow_seconds=SLOW_SECONDS),
            seed=CHAOS_SEED,
        )

    def run(hedge_after):
        server = _server(
            model,
            graph,
            fault_plan=slow_plan(),
            hedge_after=hedge_after,
            executor="serial",  # deterministic dispatch order
        )
        requests = server.submit_many(_stream(graph))
        server.drain()
        stats = server.stats()
        server.shutdown()
        assert all(request.completed for request in requests)
        predictions = [request.prediction for request in requests]
        assert predictions == [int(reference[request.node]) for request in requests]
        return np.percentile(stats.latencies, 99), predictions, stats

    unhedged_p99, unhedged_predictions, _ = run(hedge_after=None)
    hedged_p99, hedged_predictions, stats = run(hedge_after=HEDGE_AFTER)

    # Hedges really fired and won races against the stalled primary.
    assert stats.hedged_batches > 0
    assert stats.hedges_won > 0
    # Bitwise equality: hedging may change who computes, never the answer.
    assert hedged_predictions == unhedged_predictions
    # The gate: strictly lower p99 (simulated seconds, so this is exact).
    assert hedged_p99 < unhedged_p99, (
        f"hedged p99 {hedged_p99 * 1e3:.1f} ms is not below unhedged "
        f"{unhedged_p99 * 1e3:.1f} ms"
    )
    hedged_p99_speedup = float(unhedged_p99 / hedged_p99)

    save_result(
        "serving_supervisor_hedge",
        f"hedged dispatch vs one +{SLOW_SECONDS * 1e3:.0f} ms replica per shard "
        f"(simulated time), hedge_after={HEDGE_AFTER * 1e3:.0f} ms, "
        f"{len(_stream(graph))} requests\n"
        f"  unhedged p99 : {unhedged_p99 * 1e3:8.1f} ms\n"
        f"  hedged p99   : {hedged_p99 * 1e3:8.1f} ms "
        f"({hedged_p99_speedup:.1f}x lower)\n"
        f"  hedges       : {stats.hedged_batches} fired, {stats.hedges_won} won, "
        f"{stats.hedges_cancelled} losers cancelled",
        hedged_p99_speedup=hedged_p99_speedup,
        hedged_batches=stats.hedged_batches,
        hedges_won=stats.hedges_won,
        unhedged_p99_ms=unhedged_p99 * 1e3,
        hedged_p99_ms=hedged_p99 * 1e3,
    )
