#!/usr/bin/env python
"""Bench-trend gate: compare ``BENCH_*.json`` artifacts against baselines.

Every benchmark run emits machine-readable ``BENCH_<gate>.json`` records (see
``benchmarks/_emit.py``).  This tool compares the asserted *floor metrics* of
the current run against the committed baselines under
``benchmarks/baselines/`` and **fails (exit 1) when any floor regresses by
more than the tolerance** (default 20%) — so a slow drift that stays above a
gate's hard floor still trips CI, and the repository starts accumulating an
enforced perf trajectory instead of write-only artifacts.

Only ratio/rate metrics are tracked (speedups and hit rates measure the same
machine against itself, so they transfer across runners; raw req/s numbers do
not).  A result whose ``quick`` flag differs from the baseline's is skipped
with a warning — quick-mode and full-mode workloads are not comparable.

Refreshing baselines after an intentional change::

    BLOCKGNN_QUICK=1 BLOCKGNN_STRICT_PERF=0 PYTHONPATH=src \
        python -m pytest benchmarks/bench_serving.py \
        benchmarks/bench_serving_hotpath.py benchmarks/bench_serving_halo.py \
        benchmarks/bench_serving_faults.py \
        benchmarks/bench_serving_supervisor.py \
        benchmarks/bench_serving_multiprocess.py \
        benchmarks/bench_serving_telemetry.py \
        benchmarks/bench_serving_frontdoor.py \
        -q --benchmark-disable
    cp benchmarks/results/BENCH_<gate>.json benchmarks/baselines/
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List

#: gate name -> higher-is-better floor metrics enforced against the baseline.
FLOOR_METRICS: Dict[str, List[str]] = {
    "serving_microbatch_throughput": ["speedup"],
    "serving_hotpath_cold": ["speedup_cold"],
    "serving_hotpath_warm": ["speedup_warm"],
    "serving_hotpath_degree_policy": ["degree_hit_rate"],
    "serving_halo_cold": ["speedup_halo_cold", "halo_hit_rate"],
    "serving_halo_plan_cache": ["plan_speedup", "hit_rate"],
    "serving_faults": ["throughput_ratio"],
    "serving_supervisor": ["steady_state_ratio"],
    "serving_supervisor_hedge": ["hedged_p99_speedup"],
    "serving_multiprocess": ["healed_steady_state_ratio"],
    "serving_telemetry": ["metrics_ratio", "trace_ratio"],
    "serving_frontdoor": ["backfill_shed_share"],
    "serving_frontdoor_stealing": ["steal_round_ratio"],
}


def _load(path: pathlib.Path) -> dict:
    with path.open() as handle:
        return json.load(handle)


def compare(results_dir: pathlib.Path, baselines_dir: pathlib.Path, tolerance: float) -> int:
    regressions: List[str] = []
    compared = 0
    for name, metrics in sorted(FLOOR_METRICS.items()):
        baseline_path = baselines_dir / f"BENCH_{name}.json"
        result_path = results_dir / f"BENCH_{name}.json"
        if not baseline_path.exists():
            print(f"note: no baseline for {name} (new gate?) — record one")
            continue
        if not result_path.exists():
            print(f"warning: {name} has a baseline but produced no result this run")
            continue
        baseline = _load(baseline_path)
        result = _load(result_path)
        if baseline.get("quick") != result.get("quick"):
            print(
                f"warning: {name} skipped — baseline quick={baseline.get('quick')} "
                f"vs result quick={result.get('quick')}"
            )
            continue
        for metric in metrics:
            base_value = baseline.get("metrics", {}).get(metric)
            new_value = result.get("metrics", {}).get(metric)
            if base_value is None or new_value is None:
                print(f"warning: {name}.{metric} missing on one side — skipped")
                continue
            compared += 1
            floor = base_value * (1.0 - tolerance)
            status = "ok" if new_value >= floor else "REGRESSION"
            print(
                f"{status:10s} {name}.{metric}: {new_value:.3f} "
                f"(baseline {base_value:.3f}, floor {floor:.3f})"
            )
            if new_value < floor:
                regressions.append(
                    f"{name}.{metric} regressed to {new_value:.3f} "
                    f"(> {tolerance * 100:.0f}% below baseline {base_value:.3f})"
                )
    if not compared:
        have_baselines = any(
            (baselines_dir / f"BENCH_{name}.json").exists() for name in FLOOR_METRICS
        )
        if have_baselines:
            print(
                "bench-trend FAILED: baselines exist but nothing was compared — "
                "the bench run stopped emitting results (or their quick flags "
                "all mismatch); the gate would otherwise pass vacuously"
            )
            return 1
        print("warning: nothing compared — no baselines recorded yet")
    if regressions:
        print("\nbench-trend FAILED:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nbench-trend ok: {compared} floor metric(s) within tolerance")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    root = pathlib.Path(__file__).parent
    parser.add_argument("--results", type=pathlib.Path, default=root / "results")
    parser.add_argument("--baselines", type=pathlib.Path, default=root / "baselines")
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional drop below baseline before failing (default 0.20)",
    )
    args = parser.parse_args(argv)
    return compare(args.results, args.baselines, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
