"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section, prints it (run ``pytest benchmarks/ --benchmark-only -s`` to see the
tables inline) and saves the rendered text under ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be refreshed with a single command.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist a rendered table/figure under ``benchmarks/results/<name>.txt``."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}\n(saved to {path})")

    return _save
