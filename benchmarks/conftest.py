"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's evaluation
section, prints it (run ``pytest benchmarks/ --benchmark-only -s`` to see the
tables inline) and saves the rendered text under ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be refreshed with a single command.

``save_result`` additionally emits a machine-readable ``BENCH_<name>.json``
next to every text file (see ``benchmarks/_emit.py``): gates pass their key
numbers as keyword arguments —
``save_result("gate", text, speedup=3.1, p50_ms=0.4)`` — and CI archives the
JSON files as the run's perf record.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _emit import emit_bench_json  # noqa: E402  (needs the path tweak above)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Persist a result as ``<name>.txt`` + machine-readable ``BENCH_<name>.json``.

    Keyword arguments become the JSON's ``metrics`` mapping (numbers only).
    """

    def _save(name: str, text: str, **metrics) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        json_path = emit_bench_json(results_dir, name, metrics=metrics, text=text)
        print(f"\n[{name}]\n{text}\n(saved to {path} and {json_path})")

    return _save
