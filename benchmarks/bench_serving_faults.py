"""Fault-tolerant serving benchmarks with gates (chaos under measurement).

Gates on the synthetic Reddit-like graph served by a 4-shard x 2-replica
server with the concurrent executor:

1. **Exactness under faults + no lost requests** (always asserted): with a
   10% per-dispatch replica-failure :class:`~repro.serving.FaultPlan`, every
   submitted request reaches exactly one terminal state (the stats ledger
   balances to the submission count), and every *completed* prediction is
   bitwise equal to offline full-graph inference.  Failover must actually
   fire — the plan's injection counters are asserted non-zero.
2. **Failover throughput floor** (``throughput_ratio``): end-to-end
   throughput under the 10% failure plan >= ``FAILOVER_FLOOR`` x the
   fault-free run of the same stream.  Retries re-do ~10% of the batch work
   plus health bookkeeping; losing more than that means the retry loop or
   breaker is doing something quadratic.
3. **Idle-machinery overhead** (``idle_ratio``): a server carrying a
   zero-rate fault plan (decide() consulted on every dispatch, nothing ever
   injected) stays within ``IDLE_FLOOR`` x the throughput of a server with
   no plan at all — the fault path must cost ~nothing when faults are off,
   so the hotpath floors guarded by ``bench_serving_hotpath.py`` keep
   holding.

All runs use a ``ManualClock``: injected hangs and retry backoff advance
simulated time only, so the ratios measure real work (recompute, dispatch,
bookkeeping), not sleeping.  The ratios are computed over **CPU time**
(``time.process_time``, summed across executor threads), best-of
interleaved repeats: the retry/failover contract is about work
amplification, and CPU time keeps the gate meaningful on throttled or
noisy-neighbour CI runners where wall-clock of a ~30 ms pass can swing 5x.
``BLOCKGNN_QUICK=1`` shrinks the graph and streams for CI;
``BLOCKGNN_CHAOS_SEED`` re-seeds the plan for the chaos-smoke job without
touching the gates' fixed seed.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import FaultPlan, FaultSpec, InferenceServer, ManualClock, ServingConfig

QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"

SCALE = 0.0015 if QUICK else 0.006
HIDDEN = 32 if QUICK else 64
NUM_SHARDS = 4
NUM_REPLICAS = 2
BATCH_SIZE = 32
REPEATS = 3 if QUICK else 5
STREAM = 4 if QUICK else 8  # batches per shard per pass

FAIL_RATE = 0.10
CHAOS_SEED = int(os.environ.get("BLOCKGNN_CHAOS_SEED", "1337"))

#: Throughput floor under the 10% replica-failure plan, vs fault-free.
FAILOVER_FLOOR = 0.6
#: Throughput floor of a zero-rate plan (machinery armed, nothing injected)
#: vs no plan at all.  Pure per-dispatch overhead; generous for CI noise.
IDLE_FLOOR = 0.5


@pytest.fixture(scope="module")
def served_setup():
    """A trained GCN on the Reddit-like graph plus its offline reference."""
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=1, fanouts=(10, 5), seed=0)).fit()
    model.eval()
    reference = model.full_forward(graph).data.argmax(axis=-1)
    return graph, model, reference


def _server(model, graph, fault_plan=None, **overrides):
    defaults = dict(
        num_shards=NUM_SHARDS,
        num_replicas=NUM_REPLICAS,
        max_batch_size=BATCH_SIZE,
        max_delay=0.002,
        cache_capacity=65536,
        executor="concurrent",
        fault_plan=fault_plan,
        max_retries=2,
        retry_backoff=0.0005,
        seed=0,
    )
    defaults.update(overrides)
    return InferenceServer(model, graph, ServingConfig(**defaults), clock=ManualClock())


def _stream(graph, seed=1):
    size = STREAM * BATCH_SIZE * NUM_SHARDS
    return np.random.default_rng(seed).choice(graph.num_nodes, size=size, replace=True)


def _timed_pass(model, graph, fault_plan):
    """Fresh server, one cold end-to-end pass: (cpu_seconds, requests, stats)."""
    server = _server(model, graph, fault_plan=fault_plan)
    nodes = _stream(graph)
    start = time.process_time()
    requests = server.submit_many(nodes)
    server.drain()
    seconds = time.process_time() - start
    stats = server.stats()
    server.shutdown()
    return seconds, requests, stats


def test_faulty_predictions_exact_and_nothing_lost(served_setup):
    """Gate 1: 10% replica failures — ledger balances, answers stay exact."""
    graph, model, reference = served_setup
    plan = FaultPlan.replica_failures(FAIL_RATE, seed=CHAOS_SEED)
    _, requests, stats = _timed_pass(model, graph, fault_plan=plan)

    # Faults really fired and failover really happened.
    assert stats.injected_faults > 0
    assert stats.worker_failures == stats.injected_faults
    assert stats.failovers > 0

    # Exactly-once termination: nothing lost, nothing double-counted.
    assert all(request.done for request in requests)
    assert stats.submitted_requests == len(requests)
    terminal = (
        stats.completed_requests
        + stats.failed_requests
        + stats.rejected_requests
        + stats.shed_requests
        + stats.expired_requests
    )
    assert terminal == len(requests)

    # Every completed answer is bitwise equal to offline inference.  With two
    # replicas and two retries a loss needs 3 consecutive 10% draws, so the
    # fixed seed completes everything — but the gate is the equality, not the
    # completion count.
    completed = [request for request in requests if request.completed]
    assert len(completed) >= int(0.99 * len(requests))
    for request in completed:
        assert request.prediction == reference[request.node]


def test_failover_throughput_gate(served_setup, save_result):
    """Gates 2+3: failover and idle-machinery throughput floors."""
    graph, model, reference = served_setup

    variants = {
        "fault_free": lambda: None,
        "idle_plan": lambda: FaultPlan(FaultSpec(fail_rate=0.0), seed=CHAOS_SEED),
        "faulty": lambda: FaultPlan.replica_failures(FAIL_RATE, seed=CHAOS_SEED),
    }
    _timed_pass(model, graph, fault_plan=None)  # warm numpy/scipy paths once
    best = dict.fromkeys(variants, float("inf"))
    last = {}
    for _ in range(REPEATS):
        for name, make_plan in variants.items():  # interleaved: fair scheduler noise
            seconds, requests, stats = _timed_pass(model, graph, fault_plan=make_plan())
            best[name] = min(best[name], seconds)
            last[name] = (requests, stats)

    for name, (requests, _) in last.items():
        for request in requests:
            if request.completed:
                assert request.prediction == reference[request.node], name

    total = len(_stream(graph))
    rates = {name: total / seconds for name, seconds in best.items()}
    throughput_ratio = rates["faulty"] / rates["fault_free"]
    idle_ratio = rates["idle_plan"] / rates["fault_free"]
    faulty_stats = last["faulty"][1]

    save_result(
        "serving_faults",
        f"end-to-end serving under chaos (CPU time, best of {REPEATS}), GCN, "
        f"{NUM_SHARDS} shards x {NUM_REPLICAS} replicas, batch {BATCH_SIZE}, "
        f"{total} requests on {graph.summary()}\n"
        f"  fault-free : {best['fault_free'] * 1e3:8.1f} ms "
        f"({rates['fault_free']:7.0f} req/s)\n"
        f"  idle plan  : {best['idle_plan'] * 1e3:8.1f} ms "
        f"({rates['idle_plan']:7.0f} req/s, ratio {idle_ratio:.2f}, "
        f"floor {IDLE_FLOOR:.1f})\n"
        f"  10% faults : {best['faulty'] * 1e3:8.1f} ms "
        f"({rates['faulty']:7.0f} req/s, ratio {throughput_ratio:.2f}, "
        f"floor {FAILOVER_FLOOR:.1f})\n"
        f"  chaos      : {faulty_stats.injected_faults} injected, "
        f"{faulty_stats.retried_requests} retried, "
        f"{faulty_stats.failovers} failovers, "
        f"{faulty_stats.failed_requests} failed",
        throughput_ratio=throughput_ratio,
        idle_ratio=idle_ratio,
        injected_faults=faulty_stats.injected_faults,
        failovers=faulty_stats.failovers,
        faulty_req_per_s=rates["faulty"],
        fault_free_req_per_s=rates["fault_free"],
    )
    assert throughput_ratio >= FAILOVER_FLOOR, (
        f"10% replica failures cut throughput to {throughput_ratio:.2f}x "
        f"fault-free (floor {FAILOVER_FLOOR}x)"
    )
    assert idle_ratio >= IDLE_FLOOR, (
        f"idle fault machinery costs {idle_ratio:.2f}x fault-free throughput "
        f"(floor {IDLE_FLOOR}x)"
    )


def test_degraded_stale_ok_summary(served_setup, save_result):
    """Degraded serving surfaces in the stats: warm rows survive a dead shard."""
    graph, model, reference = served_setup
    # Single shard, both replicas die after t=1.0; first-failure breaker trip.
    plan = FaultPlan(FaultSpec(fail_rate=1.0, after=1.0), seed=CHAOS_SEED)
    server = _server(
        model,
        graph,
        fault_plan=plan,
        num_shards=1,
        num_replicas=2,
        degraded_policy="stale_ok",
        health_failure_threshold=1,
        health_cooldown=1e6,
    )
    warm = np.arange(BATCH_SIZE * 4)
    assert np.array_equal(server.predict(warm), reference[warm])
    server.clock.advance(2.0)
    requests = server.submit_many(warm[: BATCH_SIZE])
    server.drain()
    stats = server.stats()
    rendered = stats.render()
    server.shutdown()

    assert all(request.completed and request.stale for request in requests)
    for request in requests:
        assert request.prediction == reference[request.node]
    assert stats.degraded_requests == len(requests)
    assert "served stale" in rendered
    save_result(
        "serving_faults_degraded",
        rendered,
        degraded_requests=stats.degraded_requests,
        worker_failures=stats.worker_failures,
    )
