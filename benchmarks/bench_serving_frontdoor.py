"""Front-door benchmarks: class-aware overload, work stealing, async ingress.

Gates on the synthetic Reddit-like graph (all deterministic unless noted):

1. **Class-aware shedding** (simulated clock, always asserted): under a
   sustained 2x-overload open loop with a 25/25/50 premium/standard/backfill
   mix, bounded queues + ``shed_oldest`` must (a) keep *premium* p99 within
   the analytic queueing bound and (b) land >= 90% of the sheds on backfill —
   the excess traffic equals the backfill share, so the lightest class can
   absorb essentially all of it.  The per-class ledger must balance.
2. **Work stealing** (simulated clock, always asserted): on a skewed stream
   (one hot shard), stealing must drain the backlog in strictly fewer
   scheduler rounds, steal at least one batch, and keep predictions
   bitwise-identical to the non-stealing run.
3. **Background ingress** (wall clock, always asserted for exactness): with
   ``ingress="thread"`` handles resolve through the pump alone — no
   ``drain()`` — and the answers are bitwise-identical to the synchronous
   server's.

``BLOCKGNN_QUICK=1`` shrinks the graph and the request stream so CI can
exercise every code path without timing flakiness.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.compression import CompressionConfig
from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import InferenceServer, ManualClock, ServingConfig, SystemClock

QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"

SCALE = 0.001 if QUICK else 0.003
HIDDEN = 32 if QUICK else 64
EPOCHS = 1 if QUICK else 2

#: 25/25/50 premium/standard/backfill — the overload excess (2x arrival over
#: 1x capacity) exactly matches the backfill share of the stream.
CLASS_CYCLE = ("premium", "standard", "backfill", "backfill")


@pytest.fixture(scope="module")
def served_setup():
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=8),
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=EPOCHS, fanouts=(10, 5), seed=0)).fit()
    return graph, model


def test_class_overload_premium_p99_bounded_gate(served_setup, save_result):
    """Gate: 2x overload sheds backfill (>= 90%) while premium p99 holds."""
    graph, model = served_setup
    shards = 2
    batch = 8
    depth = 16
    interval = 0.010
    rounds = 8 if QUICK else 20

    rng = np.random.default_rng(1)
    clock = ManualClock()
    server = InferenceServer(
        model,
        graph,
        ServingConfig(
            num_shards=shards,
            max_batch_size=batch,
            max_delay=interval / 2,
            cache_capacity=4096,
            max_queue_depth=depth,
            overload_policy="shed_oldest",
            flush_on_submit=False,
            seed=0,
        ),
        clock=clock,
    )
    handles = []
    for _ in range(rounds):  # arrival phase: 2x the per-round service capacity
        arrivals = rng.choice(graph.num_nodes, size=2 * shards * batch, replace=True)
        handles.extend(
            server.submit(int(node), request_class=CLASS_CYCLE[i % len(CLASS_CYCLE)])
            for i, node in enumerate(arrivals)
        )
        clock.advance(interval)
        server.poll()
    while server.batcher.pending:  # service continues at the same rate
        clock.advance(interval)
        server.poll()
    server.shutdown()
    stats = server.stats()

    # Per-class ledger balances against per-handle ground truth.
    assert stats.submitted_requests == len(handles)
    for name in ("premium", "standard", "backfill"):
        group = [h for h in handles if h.request_class == name]
        assert sum(stats.class_requests[name].values()) == len(group)

    # Backfill absorbs (nearly) all of the excess.
    total_shed = stats.shed_requests
    assert total_shed > 0
    backfill_shed = stats.class_requests["backfill"]["shed"]
    backfill_shed_share = backfill_shed / total_shed
    assert stats.class_requests["premium"]["shed"] == 0

    # Premium p99 within the analytic queueing bound: a surviving request
    # sits behind at most max_queue_depth queued requests, served one batch
    # per round — and premium, batched first, never waits out a full queue.
    premium_latencies = np.array(
        [h.latency for h in handles if h.request_class == "premium" and h.completed]
    )
    premium_p99 = float(np.percentile(premium_latencies, 99))
    bound = (depth / batch + 2) * interval

    save_result(
        "serving_frontdoor",
        f"2x-overload open loop, {rounds} rounds x {2 * shards * batch} arrivals, "
        f"25/25/50 premium/standard/backfill, {shards} shards, batch {batch}, "
        f"depth {depth} ({graph.summary()})\n"
        f"  premium  : p99 {premium_p99 * 1e3:8.1f} ms "
        f"(completed {stats.class_requests['premium']['completed']}, shed 0)\n"
        f"  backfill : shed {backfill_shed}/{total_shed} "
        f"({backfill_shed_share:.1%} of all sheds)\n"
        f"  analytic bound: {bound * 1e3:8.1f} ms",
        premium_p99_ms=premium_p99 * 1e3,
        bound_ms=bound * 1e3,
        backfill_shed_share=backfill_shed_share,
        total_shed=total_shed,
    )
    assert premium_p99 <= bound, (
        f"premium p99 {premium_p99 * 1e3:.1f} ms exceeds the queueing bound "
        f"{bound * 1e3:.1f} ms"
    )
    assert backfill_shed_share >= 0.90, (
        f"backfill carried only {backfill_shed_share:.1%} of sheds; "
        f"expected >= 90% of the excess"
    )


def test_work_stealing_drains_hot_shard_gate(served_setup, save_result):
    """Gate: stealing drains a skewed backlog in fewer rounds, bit-identically."""
    graph, model = served_setup
    shards = 2
    batch = 8
    interval = 0.010
    backlog = 4 * batch  # hot shard holds four rounds' worth of work

    def run(work_stealing: bool):
        clock = ManualClock()
        server = InferenceServer(
            model,
            graph,
            ServingConfig(
                num_shards=shards,
                max_batch_size=batch,
                max_delay=interval / 2,
                cache_capacity=4096,
                work_stealing=work_stealing,
                flush_on_submit=False,
                seed=0,
            ),
            clock=clock,
        )
        owners = server._owner
        hot = [n for n in range(graph.num_nodes) if owners[n] == 0][:backlog]
        cold = [n for n in range(graph.num_nodes) if owners[n] == 1][: batch // 2]
        handles = server.submit_many(hot + cold)
        rounds = 0
        while server.batcher.pending:
            clock.advance(interval)
            server.poll()
            rounds += 1
        predictions = np.array([h.result() for h in handles])
        stolen = server.stats().stolen_batches
        server.shutdown()
        return predictions, rounds, stolen

    # Busy time (stage_seconds) is identical either way — the same batches
    # run; rounds-to-drain is the idle proxy: fewer rounds at equal busy
    # time means executor slots spent less time parked at round barriers.
    plain_predictions, plain_rounds, plain_stolen = run(work_stealing=False)
    steal_predictions, steal_rounds, stolen_batches = run(work_stealing=True)

    # Exactness first: stealing only changes *when* a batch runs.
    np.testing.assert_array_equal(plain_predictions, steal_predictions)
    assert plain_stolen == 0
    assert stolen_batches > 0
    assert steal_rounds < plain_rounds

    steal_round_ratio = plain_rounds / steal_rounds
    save_result(
        "serving_frontdoor_stealing",
        f"skewed backlog: {backlog} hot-shard + {batch // 2} cold-shard requests, "
        f"{shards} shards, batch {batch} ({graph.summary()})\n"
        f"  no stealing : {plain_rounds} rounds to drain\n"
        f"  stealing    : {steal_rounds} rounds to drain "
        f"({stolen_batches} batches stolen, {steal_round_ratio:.2f}x fewer rounds)",
        plain_rounds=plain_rounds,
        steal_rounds=steal_rounds,
        stolen_batches=stolen_batches,
        steal_round_ratio=steal_round_ratio,
    )


def test_thread_ingress_matches_sync_gate(served_setup, save_result):
    """Gate: the background pump resolves handles bit-identically, no drain."""
    graph, model = served_setup
    num_requests = 64 if QUICK else 256
    nodes = np.random.default_rng(2).choice(graph.num_nodes, size=num_requests, replace=True)

    base = dict(
        num_shards=2, max_batch_size=32, max_delay=0.002, cache_capacity=4096, seed=0
    )
    with InferenceServer(model, graph, ServingConfig(**base)) as sync_server:
        expected = sync_server.predict(nodes)

    threaded = InferenceServer(
        model, graph, ServingConfig(**base, ingress="thread"), clock=SystemClock()
    )
    try:
        assert threaded.has_background_ingress
        handles = threaded.submit_many([int(node) for node in nodes])
        got = np.array([h.result(timeout=30.0) for h in handles])
        polls = threaded.frontdoor.polls
    finally:
        threaded.shutdown()

    np.testing.assert_array_equal(got, expected)
    save_result(
        "serving_frontdoor_ingress",
        f"{num_requests} requests resolved through the background pump "
        f"({polls} pump polls, no drain) — bitwise-identical to sync ingress",
        pump_polls=polls,
        requests=num_requests,
    )
