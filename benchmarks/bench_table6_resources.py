"""Benchmark: regenerate Table VI — FPGA resource utilisation for GS-Pool.

Paper reference (BlockGNN-opt on the ZC706: 1090 BRAM18K, 900 DSP48,
437 200 FF, 218 600 LUT):

    CR  BRAM 39.3%  DSP 99.8%  FF 27.7%  LUT 34.6%
    CS  BRAM 41.8%  DSP 99.8%  FF 35.3%  LUT 44.8%
    PB  BRAM 42.2%  DSP 93.6%  FF 36.1%  LUT 32.2%
    RD  BRAM 42.9%  DSP 98.7%  FF 39.1%  LUT 45.3%

The DSP column uses the published Equation-8 coefficients; BRAM/FF/LUT use the
calibrated per-component costs, so the reproduced claim is the utilisation
*picture* (DSPs nearly exhausted, BRAM ~40%, FF/LUT below half), not exact
percentages.
"""

from __future__ import annotations


from repro.experiments import render_table6, run_table6


def test_table6_resource_utilisation(benchmark, save_result):
    rows = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    save_result("table6_resource_utilisation", render_table6(rows))

    for row in rows:
        utilization = row.utilization
        # Nothing overflows the device.
        assert all(value <= 1.0 for value in utilization.values())
        # DSPs are the near-exhausted resource (the paper's takeaway that the
        # DSP count is the right search constraint).
        assert utilization["DSP48"] > 0.85
        assert utilization["DSP48"] >= utilization["FF"]
        assert utilization["DSP48"] >= utilization["LUT"]
        # BRAM sits in the same ~35-50% band as the paper.
        assert 0.25 < utilization["BRAM_18K"] < 0.6
        # FF / LUT stay well below half the device, matching the paper's picture.
        assert utilization["FF"] < 0.6
        assert utilization["LUT"] < 0.6
