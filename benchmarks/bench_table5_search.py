"""Benchmark: regenerate Table V — searched optimal hardware parameters for GS-Pool.

Paper reference (GS-Pool, n = 128, ZC706 DSP budget):

    CR  x=18 y=7  r=6 c=4 l=1 m=1   24.9M cycles
    CS  x=21 y=4  r=6 c=4 l=1 m=1   64.4M cycles
    PB  x=14 y=15 r=4 c=4 l=1 m=1   95.4M cycles
    RD  x=15 y=13 r=5 c=4 l=1 m=1  1240.3M cycles

The search minimises the Equation-7 cycle count under the Equation-8 DSP
constraint, using the paper's aggregation-dominant approximation for GS-Pool.
"""

from __future__ import annotations


from repro.experiments import PAPER_TABLE5, render_table5, run_table5


def test_table5_design_space_search(benchmark, save_result):
    rows = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    save_result("table5_searched_parameters", render_table5(rows))

    by_dataset = {row.dataset: row for row in rows}
    assert set(by_dataset) == {"cora", "citeseer", "pubmed", "reddit"}

    for dataset, row in by_dataset.items():
        paper = PAPER_TABLE5[dataset]
        # Every searched configuration fits the 900-DSP budget (Equation 8).
        assert row.design.resources.dsp <= 900
        # Estimated minimum cycles land within 2x of the paper's numbers.
        assert paper["min_cycles"] / 2 <= row.min_cycles <= paper["min_cycles"] * 2
        # The search spends most DSPs on FFT/IFFT channels, as in the paper
        # (the transform stages are the bottleneck for GS-Pool).
        params = row.parameters
        channel_dsps = 18 * (params["x"] + params["y"])
        assert channel_dsps > 0.4 * row.design.resources.dsp

    # Cycle counts ordered by graph size, with Reddit an order of magnitude above.
    assert by_dataset["reddit"].min_cycles > 5 * by_dataset["pubmed"].min_cycles
    assert by_dataset["cora"].min_cycles < by_dataset["pubmed"].min_cycles
