"""Telemetry overhead gates + the observability artifacts CI archives.

The telemetry design promise: metrics are a registry of pre-resolved children
(one lock + one add per event, vectorised histogram writes per flush) and
tracing is bounded rings of plain dicts — so observability must cost almost
nothing.  Gated here:

1. **Metrics overhead** (``metrics_ratio``): end-to-end throughput with
   ``telemetry="metrics"`` (the default) >= ``METRICS_FLOOR`` x the
   ``telemetry="off"`` run of the same stream.  "off" wires the null
   registry through the identical engine code, so the ratio isolates the
   cost of real counters/histograms — the tracing-disabled overhead budget
   is <= ~5% (steady-state measurements sit at 0-3%).
2. **Trace overhead** (``trace_ratio``): full request tracing stays within
   ``TRACE_FLOOR`` x the "off" run (budget <= ~15%; measured ~9%).  Tracing
   allocates one span dict per request and one record per batch dispatch;
   losing more than that means per-request work crept into the per-batch
   paths.
3. **Trace completeness under faults** (always asserted): a fault-injected
   traced run exports valid Chrome trace-event JSON accounting for every
   terminal request, and the failed attempt records match the health
   tracker's per-replica failure counts one for one.

Ratios are CPU time (``time.process_time``), best-of interleaved repeats,
under a ``ManualClock`` — same methodology as ``bench_serving_faults.py``.
The fault run's Chrome trace and the measured run's Prometheus snapshot are
written to ``benchmarks/results/`` (``serving_telemetry_sample.trace.json`` /
``.prom``) so CI can archive browsable artifacts of every run.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import FaultPlan, InferenceServer, ManualClock, ServingConfig

QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"

SCALE = 0.0015 if QUICK else 0.006
HIDDEN = 32 if QUICK else 64
NUM_SHARDS = 4
BATCH_SIZE = 32
REPEATS = 5 if QUICK else 7
STREAM = 4 if QUICK else 8  # batches per shard per pass

#: Design budgets: metrics <= ~5% overhead, tracing <= ~15% (steady-state
#: measurements sit around 0-3% and ~9% on the quick config).  The asserted
#: floors are looser — same convention as ``bench_serving_faults.py`` — so a
#: noisy-neighbour CI runner does not flake the gate while a structural
#: regression (per-request work on a per-batch path) still trips it.
METRICS_FLOOR = 0.90
TRACE_FLOOR = 0.75

FAIL_RATE = 0.10
CHAOS_SEED = 1337


@pytest.fixture(scope="module")
def served_setup():
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=1, fanouts=(10, 5), seed=0)).fit()
    model.eval()
    reference = model.full_forward(graph).data.argmax(axis=-1)
    return graph, model, reference


def _server(model, graph, telemetry, fault_plan=None, **overrides):
    defaults = dict(
        num_shards=NUM_SHARDS,
        num_replicas=2 if fault_plan is not None else 1,
        max_batch_size=BATCH_SIZE,
        max_delay=0.002,
        cache_capacity=65536,
        telemetry=telemetry,
        trace_capacity=65536,
        fault_plan=fault_plan,
        max_retries=2,
        retry_backoff=0.0005,
        seed=0,
    )
    defaults.update(overrides)
    return InferenceServer(model, graph, ServingConfig(**defaults), clock=ManualClock())


def _stream(graph, seed=1):
    size = STREAM * BATCH_SIZE * NUM_SHARDS
    return np.random.default_rng(seed).choice(graph.num_nodes, size=size, replace=True)


def _timed_pass(model, graph, telemetry):
    """Fresh server, one cold end-to-end pass: (cpu_seconds, server kept open)."""
    server = _server(model, graph, telemetry)
    nodes = _stream(graph)
    start = time.process_time()
    requests = server.submit_many(nodes)
    server.drain()
    seconds = time.process_time() - start
    assert all(request.completed for request in requests)
    return seconds, server


def test_telemetry_overhead_gates(served_setup, save_result, results_dir):
    """Gates 1+2: metrics and trace mode throughput floors vs telemetry off."""
    graph, model, reference = served_setup
    modes = ("off", "metrics", "trace")

    warm_seconds, warm_server = _timed_pass(model, graph, "off")  # warm numpy paths
    warm_server.shutdown()

    best = dict.fromkeys(modes, float("inf"))
    keep = {}
    for _ in range(REPEATS):
        for mode in modes:  # interleaved: fair scheduler/thermal noise
            seconds, server = _timed_pass(model, graph, mode)
            best[mode] = min(best[mode], seconds)
            previous = keep.pop(mode, None)
            if previous is not None:
                previous.shutdown()
            keep[mode] = server

    total = len(_stream(graph))
    rates = {mode: total / seconds for mode, seconds in best.items()}
    metrics_ratio = rates["metrics"] / rates["off"]
    trace_ratio = rates["trace"] / rates["off"]

    # The metrics-mode ledger still balances against exact per-request state.
    stats = keep["metrics"].stats()
    assert stats.completed_requests == total
    # Trace mode recorded one closed span per request.
    tracer = keep["trace"].tracer
    assert len(tracer.finished()) == total and tracer.active_count == 0

    # Archive a Prometheus snapshot of the measured metrics run.
    prom_path = results_dir / "serving_telemetry_sample.prom"
    keep["metrics"].telemetry.write_metrics(prom_path)
    for server in keep.values():
        server.shutdown()

    save_result(
        "serving_telemetry",
        f"telemetry overhead (CPU time, best of {REPEATS}), GCN, "
        f"{NUM_SHARDS} shards, batch {BATCH_SIZE}, {total} requests on "
        f"{graph.summary()}\n"
        f"  off     : {best['off'] * 1e3:8.1f} ms ({rates['off']:7.0f} req/s)\n"
        f"  metrics : {best['metrics'] * 1e3:8.1f} ms ({rates['metrics']:7.0f} req/s, "
        f"ratio {metrics_ratio:.3f}, floor {METRICS_FLOOR})\n"
        f"  trace   : {best['trace'] * 1e3:8.1f} ms ({rates['trace']:7.0f} req/s, "
        f"ratio {trace_ratio:.3f}, floor {TRACE_FLOOR})\n"
        f"  prometheus snapshot -> {prom_path.name}",
        metrics_ratio=metrics_ratio,
        trace_ratio=trace_ratio,
        off_req_per_s=rates["off"],
        metrics_req_per_s=rates["metrics"],
        trace_req_per_s=rates["trace"],
    )
    assert metrics_ratio >= METRICS_FLOOR, (
        f"metrics-mode telemetry costs {1 - metrics_ratio:.1%} throughput "
        f"(budget {1 - METRICS_FLOOR:.0%})"
    )
    assert trace_ratio >= TRACE_FLOOR, (
        f"request tracing costs {1 - trace_ratio:.1%} throughput "
        f"(budget {1 - TRACE_FLOOR:.0%})"
    )


def test_fault_injected_trace_is_complete(served_setup, save_result, results_dir):
    """Gate 3: the chaos run's trace is valid and accounts for everything."""
    graph, model, reference = served_setup
    plan = FaultPlan.replica_failures(FAIL_RATE, seed=CHAOS_SEED)
    server = _server(model, graph, "trace", fault_plan=plan)
    nodes = _stream(graph)
    requests = server.submit_many(nodes)
    server.drain()

    assert server.stats().injected_faults > 0
    assert all(request.done for request in requests)
    for request in requests:
        if request.completed:
            assert request.prediction == reference[request.node]

    # Failed attempt records match the health tracker one for one.
    traced = server.tracer.failed_attempts_by_worker()
    for worker in server.workers:
        assert traced.get(worker.worker_id, 0) == (
            server.health.snapshot(worker.worker_id).failures
        )

    trace_path = results_dir / "serving_telemetry_sample.trace.json"
    server.telemetry.write_trace(trace_path)
    server.shutdown()

    document = json.loads(trace_path.read_text())  # valid trace-event JSON
    spans = {
        event["args"]["request_id"]: event["args"]["status"]
        for event in document["traceEvents"]
        if event.get("cat") == "request"
    }
    assert document["otherData"]["dropped_traces"] == 0
    assert len(spans) == len(requests)
    for request in requests:
        assert spans[request.request_id] == request.status

    attempts = sum(
        1 for event in document["traceEvents"] if event.get("cat") == "dispatch"
    )
    errors = sum(v for v in traced.values())
    save_result(
        "serving_telemetry_trace",
        f"fault-injected trace: {len(spans)} request spans, {attempts} dispatch "
        f"attempts ({errors} failed), 0 dropped -> {trace_path.name}",
        request_spans=len(spans),
        dispatch_attempts=attempts,
        failed_attempts=errors,
    )
