"""Benchmark: regenerate Table II — GNN profiling on Reddit.

Paper reference (Table II, MAC counted as one operation):

    GCN      aggregation 3.7e9  FLOPs / AI 0.5,   combination 7.5e10 / 256.3
    GS-Pool  aggregation 1.9e12 FLOPs / AI 257.5, combination 1.5e11 / 512.2
    G-GCN    aggregation 3.7e12 FLOPs / AI 256.0, combination 7.5e10 / 256.3
    GAT      aggregation 1.9e12 FLOPs / AI 512.8, combination 7.5e10 / 256.3

This repository counts 2 FLOPs per MAC, so absolute totals are ~2x the paper;
the reproduced quantities are the cross-model and cross-phase ratios and the
"GCN aggregation is memory-bound, everything else is compute-bound" split.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_TABLE2, render_table2, run_table2


def test_table2_profiling(benchmark, save_result):
    rows = benchmark(run_table2)
    save_result("table2_profiling", render_table2(rows))

    measured = {row.model: row for row in rows}
    # Shape checks mirroring the paper's observations.
    assert measured["GCN"].aggregation_intensity < 1.0
    for model in ("GS-Pool", "G-GCN", "GAT"):
        assert measured[model].aggregation_intensity > 50.0
    ggcn_over_gs = measured["G-GCN"].aggregation_flops / measured["GS-Pool"].aggregation_flops
    paper_ratio = PAPER_TABLE2["G-GCN"]["agg_flops"] / PAPER_TABLE2["GS-Pool"]["agg_flops"]
    assert ggcn_over_gs == pytest.approx(paper_ratio, rel=0.15)


def test_table2_compressed_headroom(benchmark, save_result):
    """Table II extended with the n = 128 compressed aggregation FLOPs."""
    from repro.profiling import profile_table

    text = benchmark(profile_table, block_size=128)
    save_result("table2_compressed_headroom", text)
    assert "n=128" in text
