"""Benchmark: regenerate Table III — compression ratio vs. accuracy.

Paper reference (Reddit node classification, 2-layer models, hidden 512):

    n = 1    TCR  1.0x  SR   1.0x   GCN 0.924  GS-Pool 0.948  G-GCN 0.950  GAT 0.926
    n = 16   TCR  4.0x  SR  16.0x   GCN 0.922  GS-Pool 0.941  G-GCN 0.944  GAT 0.922
    n = 32   TCR  6.4x  SR  32.0x   GCN 0.920  GS-Pool 0.939  G-GCN 0.942  GAT 0.921
    n = 64   TCR 10.7x  SR  64.0x   GCN 0.920  GS-Pool 0.938  G-GCN 0.938  GAT 0.919
    n = 128  TCR 18.3x  SR 128.0x   GCN 0.919  GS-Pool 0.938  G-GCN 0.935  GAT 0.920

The real Reddit graph is unavailable offline, so the sweep trains on the
synthetic Reddit stand-in (scaled down).  The TCR/SR columns are exact; the
accuracy columns reproduce the *trend* (compression costs only a small
accuracy drop), not the paper's absolute values.
"""

from __future__ import annotations

import pytest

from repro.compression import storage_reduction, theoretical_computation_reduction
from repro.experiments import render_table3, run_table3

BLOCK_SIZES = (1, 8, 16)
MODELS = ("GCN", "GS-Pool", "G-GCN", "GAT")


def _run_sweep():
    return run_table3(
        block_sizes=BLOCK_SIZES,
        models=MODELS,
        dataset="reddit",
        dataset_scale=0.004,
        num_features=64,
        hidden_features=64,
        epochs=6,
        fanouts=(10, 5),
        batch_size=64,
        seed=0,
    )


def test_table3_compression_vs_accuracy(benchmark, save_result):
    result = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    save_result("table3_accuracy", render_table3(result))

    # TCR / SR columns are exact closed forms.
    assert theoretical_computation_reduction(16) == pytest.approx(4.0, abs=0.05)
    assert storage_reduction(16) == 16.0

    chance = 1.0 / 41.0
    for model in MODELS:
        # Uncompressed models learn the task well.
        assert result.accuracy(model, 1) > 10 * chance
        # Compression keeps the models usable classifiers: every compressed
        # variant stays an order of magnitude above chance and the degradation
        # is bounded.  (On the paper's full-size Reddit graph with 512-dim
        # hidden layers the drop is under 1.5%; the scaled-down synthetic
        # stand-in exaggerates it, see EXPERIMENTS.md.)
        for block_size in BLOCK_SIZES[1:]:
            assert result.accuracy(model, block_size) > 10 * chance
            assert result.accuracy_drop(model, block_size) < 0.5
