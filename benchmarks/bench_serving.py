"""Online serving benchmarks with in-repo acceptance gates.

Gates on the synthetic Reddit-like graph:

1. **Exactness** (always asserted): served predictions are identical to
   offline full-graph inference (``evaluate_accuracy(mode="full")``) for the
   same nodes — under *both* the serial and the concurrent executor.
2. **Micro-batching** (wall-clock, skipped when ``BLOCKGNN_STRICT_PERF=0``):
   micro-batched throughput >= 3x request-at-a-time.
3. **Embedding cache** (wall-clock, same switch): warm-cache p50 latency
   beats cold p50.
4. **Concurrent executor** (wall-clock, same switch, needs >= 2 CPUs):
   concurrent throughput >= serial on a >= 4-shard workload, with
   bitwise-identical predictions.
5. **Admission control** (simulated clock, always asserted): under a
   sustained 2x-overload open loop, ``shed_oldest`` + bounded queues keep
   completed-request p99 within the analytic queueing bound while the
   unbounded server's p99 grows with the stream — and every request is
   accounted for (completed + shed + rejected + expired == submitted).

``BLOCKGNN_QUICK=1`` shrinks the graph and the request stream so CI can
exercise every code path without timing flakiness (combined with
``BLOCKGNN_STRICT_PERF=0``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.compression import CompressionConfig
from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.models.trainer import evaluate_accuracy
from repro.serving import (
    InferenceServer,
    ManualClock,
    ServingConfig,
    estimate_shard_request_cycles,
)

STRICT_PERF = os.environ.get("BLOCKGNN_STRICT_PERF", "1") != "0"
QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"

SCALE = 0.001 if QUICK else 0.003
NUM_REQUESTS = 128 if QUICK else 768
HIDDEN = 32 if QUICK else 64
EPOCHS = 1 if QUICK else 2
NUM_SHARDS = 2
CONCURRENT_SHARDS = 4     # the concurrent-vs-serial gate runs a wider workload
BATCH_SIZE = 32


@pytest.fixture(scope="module")
def served_setup():
    """A trained block-circulant GCN on the Reddit-like graph + request stream."""
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=8),
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=EPOCHS, fanouts=(10, 5), seed=0)).fit()
    requests = np.random.default_rng(0).choice(graph.num_nodes, size=NUM_REQUESTS, replace=True)
    return graph, model, requests


def _server(
    model, graph, batch_size: int, cache: int, executor: str = "serial", shards: int = NUM_SHARDS
) -> InferenceServer:
    return InferenceServer(
        model,
        graph,
        ServingConfig(
            num_shards=shards,
            max_batch_size=batch_size,
            max_delay=0.002,
            cache_capacity=cache,
            executor=executor,
            seed=0,
        ),
    )


@pytest.mark.parametrize("executor", ["serial", "concurrent"])
def test_served_predictions_match_full_graph_inference(served_setup, executor):
    """Gate: serving == evaluate_accuracy(mode='full'), under both executors."""
    graph, model, requests = served_setup
    with _server(model, graph, BATCH_SIZE, cache=4096, executor=executor) as server:
        served = server.predict(requests)

        reference = model.full_forward(graph).data[requests].argmax(axis=-1)
        assert np.array_equal(served, reference)

        served_accuracy = float((served == graph.labels[requests]).mean())
        offline_accuracy = evaluate_accuracy(model, graph, requests, mode="full")
        assert served_accuracy == offline_accuracy

        # And again through a warm cache: reuse must not change a single answer.
        assert np.array_equal(server.predict(requests), reference)


def test_serving_is_deterministic_under_simulated_clock(served_setup):
    """Gate: fixed seed + ManualClock => identical predictions and latencies."""
    graph, model, requests = served_setup
    outcomes = []
    for _ in range(2):
        server = InferenceServer(
            model,
            graph,
            ServingConfig(num_shards=NUM_SHARDS, max_batch_size=BATCH_SIZE, seed=0),
            clock=ManualClock(),
        )
        predictions = server.predict(requests)
        stats = server.stats()
        outcomes.append((predictions, stats.latencies, stats.batch_sizes))
    for left, right in zip(outcomes[0], outcomes[1]):
        assert np.array_equal(left, right)


def test_microbatch_throughput_gate(served_setup, save_result):
    """Gate: micro-batched serving >= 3x request-at-a-time throughput."""
    graph, model, requests = served_setup

    baseline_server = _server(model, graph, batch_size=1, cache=0)
    start = time.perf_counter()
    baseline_predictions = baseline_server.predict(requests)
    baseline_seconds = time.perf_counter() - start

    batched_server = _server(model, graph, batch_size=BATCH_SIZE, cache=4096)
    start = time.perf_counter()
    batched_predictions = batched_server.predict(requests)
    batched_seconds = time.perf_counter() - start

    assert np.array_equal(baseline_predictions, batched_predictions)
    speedup = baseline_seconds / batched_seconds
    stats = batched_server.stats()
    save_result(
        "serving_microbatch_throughput",
        f"GCN n=8 serving {NUM_REQUESTS} requests on {graph.summary()}\n"
        f"  request-at-a-time : {baseline_seconds * 1e3:.1f} ms "
        f"({NUM_REQUESTS / baseline_seconds:.0f} req/s)\n"
        f"  micro-batched (<= {BATCH_SIZE}) : {batched_seconds * 1e3:.1f} ms "
        f"({NUM_REQUESTS / batched_seconds:.0f} req/s)\n"
        f"  speedup           : {speedup:.1f}x\n"
        f"  mean batch size   : {stats.mean_batch_size:.1f}, "
        f"cache hit rate {stats.cache_hit_rate * 100:.1f}%",
        speedup=speedup,
        baseline_req_per_s=NUM_REQUESTS / baseline_seconds,
        batched_req_per_s=NUM_REQUESTS / batched_seconds,
        p50_ms=stats.p50_latency * 1e3,
        p95_ms=stats.p95_latency * 1e3,
        p99_ms=stats.p99_latency * 1e3,
        cache_hit_rate=stats.cache_hit_rate,
    )
    if STRICT_PERF:
        assert speedup >= 3.0, f"micro-batching only {speedup:.2f}x over request-at-a-time"


def test_warm_cache_latency_gate(served_setup, save_result):
    """Gate: warm embedding-cache p50 latency < cold p50 latency."""
    graph, model, requests = served_setup
    server = _server(model, graph, BATCH_SIZE, cache=8192)

    server.predict(requests)
    cold = server.stats()
    server.reset_stats()
    server.predict(requests)
    warm = server.stats()

    save_result(
        "serving_warm_cache_latency",
        f"GCN n=8 serving {NUM_REQUESTS} requests on {graph.summary()}\n"
        f"  cold pass: p50 {cold.p50_latency * 1e3:.3f} ms  p95 {cold.p95_latency * 1e3:.3f} ms  "
        f"hit rate {cold.cache_hit_rate * 100:.1f}%\n"
        f"  warm pass: p50 {warm.p50_latency * 1e3:.3f} ms  p95 {warm.p95_latency * 1e3:.3f} ms  "
        f"hit rate {warm.cache_hit_rate * 100:.1f}%",
        cold_p50_ms=cold.p50_latency * 1e3,
        cold_p95_ms=cold.p95_latency * 1e3,
        warm_p50_ms=warm.p50_latency * 1e3,
        warm_p95_ms=warm.p95_latency * 1e3,
        warm_hit_rate=warm.cache_hit_rate,
    )
    assert warm.cache_hit_rate > cold.cache_hit_rate
    assert warm.cache_hit_rate == 1.0  # repeat stream fully memoised
    if STRICT_PERF:
        assert warm.p50_latency < cold.p50_latency, (
            f"warm p50 {warm.p50_latency * 1e3:.3f} ms not below "
            f"cold p50 {cold.p50_latency * 1e3:.3f} ms"
        )


def test_concurrent_executor_throughput_gate(served_setup, save_result):
    """Gate: concurrent executor >= serial throughput on a >= 4-shard workload.

    Predictions must stay bitwise identical either way; the throughput
    assertion itself is wall-clock, so it follows ``BLOCKGNN_STRICT_PERF``
    and is skipped on single-CPU machines where thread-level parallelism
    cannot win by construction.
    """
    graph, model, requests = served_setup

    timings = {}
    predictions = {}
    for executor in ("serial", "concurrent"):
        with _server(
            model, graph, BATCH_SIZE, cache=0, executor=executor, shards=CONCURRENT_SHARDS
        ) as server:
            server.predict(requests[: BATCH_SIZE * CONCURRENT_SHARDS])  # warm-up pass
            start = time.perf_counter()
            predictions[executor] = server.predict(requests)
            timings[executor] = time.perf_counter() - start
            stats = server.stats()
            assert stats.executor == executor

    assert np.array_equal(predictions["serial"], predictions["concurrent"])
    reference = model.full_forward(graph).data[requests].argmax(axis=-1)
    assert np.array_equal(predictions["concurrent"], reference)

    ratio = timings["serial"] / timings["concurrent"]
    save_result(
        "serving_concurrent_throughput",
        f"GCN n=8 serving {NUM_REQUESTS} requests on {graph.summary()}, "
        f"{CONCURRENT_SHARDS} shards\n"
        f"  serial executor    : {timings['serial'] * 1e3:.1f} ms "
        f"({NUM_REQUESTS / timings['serial']:.0f} req/s)\n"
        f"  concurrent executor: {timings['concurrent'] * 1e3:.1f} ms "
        f"({NUM_REQUESTS / timings['concurrent']:.0f} req/s)\n"
        f"  speedup            : {ratio:.2f}x on {os.cpu_count()} CPUs",
        speedup=ratio,
        serial_req_per_s=NUM_REQUESTS / timings["serial"],
        concurrent_req_per_s=NUM_REQUESTS / timings["concurrent"],
    )
    if STRICT_PERF:
        if (os.cpu_count() or 1) < 2:
            pytest.skip("concurrent >= serial needs >= 2 CPUs; correctness already asserted")
        assert ratio >= 1.0, (
            f"concurrent executor slower than serial ({ratio:.2f}x) on "
            f"{os.cpu_count()} CPUs"
        )


def test_overload_p99_bounded_with_shedding_gate(served_setup, save_result):
    """Gate: p99 stays bounded under 2x overload when shed_oldest is on.

    Runs an open-loop simulation on a ``ManualClock`` (deterministic — always
    asserted, regardless of ``BLOCKGNN_STRICT_PERF``): every round, twice the
    service capacity arrives, the clock advances one service interval, and
    the scheduler flushes one batch per shard.  Bounded queues with
    ``shed_oldest`` must keep completed-request p99 within the analytic
    queueing bound, while the unbounded server's p99 grows with the stream.
    """
    graph, model, _ = served_setup
    shards = CONCURRENT_SHARDS
    batch = 8
    depth = 16
    interval = 0.010          # simulated seconds between scheduler rounds
    rounds = 8 if QUICK else 20

    def run(config: ServingConfig):
        rng = np.random.default_rng(1)  # identical arrival stream per config
        clock = ManualClock()
        server = InferenceServer(model, graph, config, clock=clock)
        server.scheduler.flush_on_submit = False
        submitted = []
        for _ in range(rounds):     # arrival phase: 2x the per-round capacity
            arrivals = rng.choice(graph.num_nodes, size=2 * shards * batch, replace=True)
            submitted.extend(server.submit(int(node)) for node in arrivals)
            clock.advance(interval)
            server.poll()
        while server.batcher.pending:   # service continues at the same rate
            clock.advance(interval)
            server.poll()
        server.shutdown()
        return submitted, server.stats()

    base = dict(
        num_shards=shards, max_batch_size=batch, max_delay=interval / 2, cache_capacity=4096,
        seed=0,
    )
    unbounded_requests, unbounded = run(ServingConfig(**base))
    shed_requests, shed = run(
        ServingConfig(**base, max_queue_depth=depth, overload_policy="shed_oldest")
    )

    # Accounting: no request silently dropped in either configuration.
    assert unbounded.submitted_requests == len(unbounded_requests)
    assert shed.submitted_requests == len(shed_requests)
    assert shed.shed_requests > 0

    # The analytic bound: a completed request sits behind at most
    # max_queue_depth queued requests, served one batch per round.
    bound = (depth / batch + 2) * interval
    save_result(
        "serving_overload_p99",
        f"2x-overload open loop, {rounds} rounds x {2 * shards * batch} arrivals, "
        f"{shards} shards, batch {batch}, depth {depth} ({graph.summary()})\n"
        f"  unbounded queues : p99 {unbounded.p99_latency * 1e3:8.1f} ms "
        f"(completed {unbounded.completed_requests})\n"
        f"  shed_oldest d={depth}: p99 {shed.p99_latency * 1e3:8.1f} ms "
        f"(completed {shed.completed_requests}, shed {shed.shed_requests})\n"
        f"  analytic bound   : {bound * 1e3:8.1f} ms",
        unbounded_p99_ms=unbounded.p99_latency * 1e3,
        shed_p99_ms=shed.p99_latency * 1e3,
        bound_ms=bound * 1e3,
        shed_requests=shed.shed_requests,
    )
    assert shed.p99_latency <= bound, (
        f"shedding p99 {shed.p99_latency * 1e3:.1f} ms exceeds the "
        f"queueing bound {bound * 1e3:.1f} ms"
    )
    assert shed.p99_latency < unbounded.p99_latency


def test_per_shard_accelerator_cost_estimates(served_setup, save_result):
    """Perfmodel bridge: price one request in CirCore cycles per shard."""
    graph, model, _ = served_setup
    server = _server(model, graph, BATCH_SIZE, cache=0)
    estimates = estimate_shard_request_cycles(
        "GCN",
        server.shards,
        num_classes=graph.num_classes,
        hidden_features=HIDDEN,
        num_layers=model.num_layers,
        sample_sizes=(10, 5),
    )
    lines = [f"per-request CirCore cost on {graph.summary()}"]
    for shard, estimate in zip(server.shards, estimates):
        assert estimate.cycles_per_node > 0
        lines.append(
            f"  shard {shard.part_id} ({shard.num_core} core + {shard.num_halo} halo): "
            f"{estimate.cycles_per_node:.0f} cycles/request "
            f"({estimate.cycles_per_node / estimate.config.frequency_hz * 1e6:.1f} us @ 100 MHz)"
        )
    save_result("serving_shard_cycles", "\n".join(lines))
