"""Micro-benchmarks of the core kernels (supporting Table III's TCR column).

These time the actual software kernels on this machine: dense mat-vec vs the
FFT-based block-circulant mat-vec at several block sizes, plus the functional
accelerator datapath.  They demonstrate that the measured FLOP reduction
follows the theoretical ``n / log2(n)`` trend (wall-clock gains on NumPy are
smaller than on dedicated hardware, which is exactly the gap the CirCore
architecture addresses).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    BlockCirculantSpec,
    block_circulant_matmul,
    block_circulant_operation_count,
    dense_operation_count,
    random_block_circulant,
    spectral_weights,
)
from repro.hardware import BlockGNNAccelerator, CirCoreConfig
from repro.nn import BlockCirculantLinear

DIM = 512
BATCH = 64


@pytest.fixture(scope="module")
def dense_problem():
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((DIM, DIM))
    features = rng.standard_normal((BATCH, DIM))
    return weights, features


def test_dense_matvec_baseline(benchmark, dense_problem):
    weights, features = dense_problem
    result = benchmark(lambda: features @ weights.T)
    assert result.shape == (BATCH, DIM)


@pytest.mark.parametrize("block_size", [16, 64, 128])
def test_block_circulant_matvec(benchmark, dense_problem, block_size):
    _, features = dense_problem
    rng = np.random.default_rng(1)
    spec = BlockCirculantSpec(DIM, DIM, block_size)
    weights = random_block_circulant(spec, rng)
    w_hat = spectral_weights(weights)

    result = benchmark(lambda: block_circulant_matmul(features, weights, spec, spectral=w_hat))
    assert result.shape == (BATCH, DIM)
    # The theoretical FLOP reduction grows with the block size.
    reduction = dense_operation_count(DIM, DIM) / block_circulant_operation_count(spec)
    assert reduction > 1.0


def test_accelerator_functional_datapath(benchmark):
    rng = np.random.default_rng(2)
    layer = BlockCirculantLinear(DIM, DIM, 128, rng=rng)
    accelerator = BlockGNNAccelerator(
        CirCoreConfig(fft_channels=16, ifft_channels=16, systolic_rows=4, systolic_cols=4, block_size=128)
    )
    accelerator.load_layer("fc", layer)
    features = rng.standard_normal((BATCH, DIM))

    result = benchmark(lambda: accelerator.execute_linear("fc", features))
    assert result.shape == (BATCH, DIM)
