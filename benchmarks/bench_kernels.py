"""Micro-benchmarks of the core kernels (supporting Table III's TCR column).

These time the actual software kernels on this machine: dense mat-vec vs the
FFT-based block-circulant mat-vec at several block sizes, plus the functional
accelerator datapath.  They demonstrate that the measured FLOP reduction
follows the theoretical ``n / log2(n)`` trend (wall-clock gains on NumPy are
smaller than on dedicated hardware, which is exactly the gap the CirCore
architecture addresses).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.compression import (
    BlockCirculantSpec,
    CompressionConfig,
    block_circulant_matmul,
    block_circulant_operation_count,
    dense_operation_count,
    random_block_circulant,
    spectral_weights,
)
from repro.graph import load_dataset
from repro.hardware import BlockGNNAccelerator, CirCoreConfig
from repro.models import Trainer, TrainingConfig, create_model
from repro.models.trainer import compare_inference_modes
from repro.nn import BlockCirculantLinear
from repro.tensor import Tensor

DIM = 512
BATCH = 64
#: Block size used by the cached-vs-uncached forward comparison.
CACHE_BLOCK = 64
#: Wall-clock assertions are skipped when BLOCKGNN_STRICT_PERF=0 (set by CI,
#: where shared runners make timing ratios unreliable); the correctness
#: assertions always run.
STRICT_PERF = os.environ.get("BLOCKGNN_STRICT_PERF", "1") != "0"


def _best_of(fn, repeats: int = 5, inner: int = 3) -> float:
    """Minimum wall-clock of ``inner`` calls over ``repeats`` attempts."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


@pytest.fixture(scope="module")
def dense_problem():
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((DIM, DIM))
    features = rng.standard_normal((BATCH, DIM))
    return weights, features


def test_dense_matvec_baseline(benchmark, dense_problem):
    weights, features = dense_problem
    result = benchmark(lambda: features @ weights.T)
    assert result.shape == (BATCH, DIM)


@pytest.mark.parametrize("block_size", [16, 64, 128])
def test_block_circulant_matvec(benchmark, dense_problem, block_size):
    _, features = dense_problem
    rng = np.random.default_rng(1)
    spec = BlockCirculantSpec(DIM, DIM, block_size)
    weights = random_block_circulant(spec, rng)
    w_hat = spectral_weights(weights)

    result = benchmark(lambda: block_circulant_matmul(features, weights, spec, spectral=w_hat))
    assert result.shape == (BATCH, DIM)
    # The theoretical FLOP reduction grows with the block size.
    reduction = dense_operation_count(DIM, DIM) / block_circulant_operation_count(spec)
    assert reduction > 1.0


@pytest.mark.parametrize("use_rfft", [False, True], ids=["fft", "rfft"])
def test_block_circulant_matmul_fft_vs_rfft(benchmark, dense_problem, use_rfft):
    """rFFT vs complex FFT with precomputed spectra (pure kernel comparison)."""
    _, features = dense_problem
    rng = np.random.default_rng(1)
    spec = BlockCirculantSpec(DIM, DIM, CACHE_BLOCK)
    weights = random_block_circulant(spec, rng)
    w_hat = spectral_weights(weights, use_rfft=use_rfft)

    result = benchmark(lambda: block_circulant_matmul(features, None, spec, spectral=w_hat))
    assert result.shape == (BATCH, DIM)


def _seed_circulant_forward(x: np.ndarray, weights: np.ndarray, spec: BlockCirculantSpec) -> np.ndarray:
    """The seed repository's ``circulant_linear`` forward, verbatim.

    Complex FFT over all ``n`` bins, ``FFT(W)`` recomputed on every call, and
    an un-optimised einsum — the exact hot path this PR replaces.
    """
    batch, n = x.shape[0], spec.block_size
    padded = x.reshape(batch, spec.q, n)
    x_hat = np.fft.fft(padded, axis=-1)
    w_hat = np.fft.fft(weights, axis=-1)
    out_hat = np.einsum("pqn,bqn->bpn", w_hat, x_hat)
    out = np.real(np.fft.ifft(out_hat, axis=-1)).reshape(batch, spec.padded_out)
    return out[:, : spec.out_features]


def test_circulant_forward_uncached_fft(benchmark, dense_problem):
    """The seed hot path: complex FFT with FFT(W) recomputed on every call."""
    _, features = dense_problem
    rng = np.random.default_rng(1)
    spec = BlockCirculantSpec(DIM, DIM, CACHE_BLOCK)
    weights = random_block_circulant(spec, rng)

    result = benchmark(lambda: _seed_circulant_forward(features, weights, spec))
    assert result.shape == (BATCH, DIM)


def test_circulant_forward_cached_rfft(benchmark, dense_problem):
    """The optimised hot path: rFFT with the per-version spectral cache."""
    _, features = dense_problem
    rng = np.random.default_rng(1)
    layer = BlockCirculantLinear(DIM, DIM, CACHE_BLOCK, bias=False, rng=rng)
    x = Tensor(features)
    layer(x)  # warm the (version, W_hat) cache

    result = benchmark(lambda: layer(x))
    assert result.shape == (BATCH, DIM)


def test_cached_rfft_speedup_over_seed_path(dense_problem, save_result):
    """Acceptance gate: cached-rFFT forward >= 2x the seed uncached complex path."""
    _, features = dense_problem
    rng = np.random.default_rng(1)
    spec = BlockCirculantSpec(DIM, DIM, CACHE_BLOCK)
    layer = BlockCirculantLinear(DIM, DIM, CACHE_BLOCK, bias=False, rng=rng)
    x = Tensor(features)
    layer(x)  # warm the cache

    uncached = _best_of(lambda: _seed_circulant_forward(features, layer.weight.data, spec))
    cached = _best_of(lambda: layer(x))
    speedup = uncached / cached
    save_result(
        "kernels_spectral_cache",
        f"BlockCirculantLinear forward, DIM={DIM} BATCH={BATCH} n={CACHE_BLOCK}\n"
        f"  uncached complex-FFT (seed) : {uncached * 1e3:.3f} ms\n"
        f"  cached rFFT (this PR)       : {cached * 1e3:.3f} ms\n"
        f"  speedup                     : {speedup:.1f}x",
        speedup=speedup,
        uncached_ms=uncached * 1e3,
        cached_ms=cached * 1e3,
    )
    if STRICT_PERF:
        assert speedup >= 2.0, f"cached rFFT path only {speedup:.2f}x faster than the seed path"


def test_full_graph_vs_sampled_inference(save_result):
    """Full-graph layer-wise inference: faster than sampled and within 1% accuracy.

    The sampled baseline runs at "full fanout" — fanouts larger than the
    graph's maximum degree, so every neighbourhood is covered; the residual
    accuracy difference is with-replacement sampling noise.
    """
    graph = load_dataset("cora", scale=0.3, seed=0, num_features=64)
    fanouts = (30, 30)
    assert np.diff(graph.indptr).max() <= max(fanouts)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=64,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=8),
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=4, fanouts=(10, 5), seed=0)).fit()

    comparison = compare_inference_modes(model, graph, fanouts, seed=0, repeats=3)
    save_result(
        "kernels_full_vs_sampled",
        f"GCN n=8 on {graph.summary()}\n"
        f"  sampled (fanouts {fanouts})  : acc {comparison.sampled_accuracy:.4f} "
        f"in {comparison.sampled_seconds * 1e3:.1f} ms\n"
        f"  full-graph layer-wise        : acc {comparison.full_accuracy:.4f} "
        f"in {comparison.full_seconds * 1e3:.1f} ms\n"
        f"  speedup {comparison.speedup:.1f}x, "
        f"accuracy difference {comparison.accuracy_difference:.4f}",
        speedup=comparison.speedup,
        sampled_ms=comparison.sampled_seconds * 1e3,
        full_ms=comparison.full_seconds * 1e3,
        accuracy_difference=comparison.accuracy_difference,
    )
    assert comparison.accuracy_difference <= 0.01
    if STRICT_PERF:
        assert comparison.full_seconds < comparison.sampled_seconds


def test_accelerator_functional_datapath(benchmark):
    rng = np.random.default_rng(2)
    layer = BlockCirculantLinear(DIM, DIM, 128, rng=rng)
    accelerator = BlockGNNAccelerator(
        CirCoreConfig(fft_channels=16, ifft_channels=16, systolic_rows=4, systolic_cols=4, block_size=128)
    )
    accelerator.load_layer("fc", layer)
    features = rng.standard_normal((BATCH, DIM))

    result = benchmark(lambda: accelerator.execute_linear("fc", features))
    assert result.shape == (BATCH, DIM)
