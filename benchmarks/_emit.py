"""Machine-readable benchmark emission shared by every ``bench_*.py`` gate.

Each benchmark's ``save_result`` fixture renders a human-readable text file
under ``benchmarks/results/`` *and* routes through :func:`emit_bench_json`,
which writes a ``BENCH_<name>.json`` sibling: a stable, diffable record of
the run's metrics (throughput, latency percentiles, speedup ratios — whatever
the gate passes) so the repository accumulates a perf trajectory instead of
prose snapshots.  CI uploads the JSON files as a workflow artifact.

The schema is intentionally small::

    {
      "name": "<gate name>",
      "schema": 1,
      "quick": false,            # BLOCKGNN_QUICK run (shrunken workload)?
      "strict_perf": true,       # were wall-clock assertions armed?
      "metrics": {"speedup_cold": 2.7, ...},   # numbers only
      "text": "<the rendered human-readable result>"
    }
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from typing import Dict, Optional

__all__ = ["emit_bench_json"]

SCHEMA_VERSION = 1


def _jsonable(value):
    value = float(value)
    if math.isnan(value):
        return None
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def emit_bench_json(
    results_dir: pathlib.Path,
    name: str,
    metrics: Optional[Dict[str, float]] = None,
    text: str = "",
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` under ``results_dir`` and return its path."""
    payload = {
        "name": name,
        "schema": SCHEMA_VERSION,
        "quick": os.environ.get("BLOCKGNN_QUICK", "0") == "1",
        "strict_perf": os.environ.get("BLOCKGNN_STRICT_PERF", "1") != "0",
        "metrics": {key: _jsonable(value) for key, value in sorted((metrics or {}).items())},
        "text": text,
    }
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
