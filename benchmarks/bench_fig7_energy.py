"""Benchmark: regenerate Figure 7 — energy-efficiency (Nodes per Joule) comparison.

Paper reference (Section IV-D): BlockGNN-opt draws about 4.6 W against the
CPU's 125 W and saves 33.9x-111.9x energy (68.9x on average) across the
4 models x 4 datasets, i.e. one to two orders of magnitude better Nodes/J.
"""

from __future__ import annotations

import pytest

from repro.experiments import render_figure7, run_figure7
from repro.hardware import BLOCKGNN_POWER_WATTS, CPU_POWER_WATTS


def test_figure7_energy_efficiency(benchmark, save_result):
    result = benchmark.pedantic(run_figure7, rounds=1, iterations=1)
    text = render_figure7(result)
    summary = (
        f"energy reduction: min {result.min_energy_reduction:.1f}x, "
        f"mean {result.mean_energy_reduction:.1f}x, max {result.max_energy_reduction:.1f}x "
        f"(paper: 33.9x / 68.9x / 111.9x)"
    )
    save_result("figure7_energy", text + "\n\n" + summary)

    power_ratio = CPU_POWER_WATTS / BLOCKGNN_POWER_WATTS
    for entry in result.entries:
        # BlockGNN is always the more energy-efficient platform ...
        assert entry.energy_reduction > 1.0
        # ... and the reduction decomposes into speedup x power ratio.
        speedup = entry.cpu.latency_seconds / entry.blockgnn.latency_seconds
        assert entry.energy_reduction == pytest.approx(speedup * power_ratio, rel=1e-6)

    # One to two orders of magnitude, as in the paper.
    assert 10.0 < result.mean_energy_reduction < 400.0
    assert result.min_energy_reduction > 5.0
