"""Cross-shard halo exchange + restriction-plan cache benchmarks with gates.

Gates on the synthetic Reddit-like graph, served over a **boundary-heavy**
partition (hash partitioning spreads every neighbourhood across shards, so
nearly every node is inside some other shard's halo — the worst case the
halo tier exists for):

1. **Exactness** (always asserted): predictions with the halo tier and plan
   cache enabled are bitwise equal to offline full-graph inference — and to
   a server with both disabled — for all four models under both executors,
   cold and warm.
2. **Cold-flush speedup** (always asserted, floor depends on quick mode):
   cold-flush throughput with the halo tier on >= ``COLD_FLOOR`` x the same
   server with it off.  Without exchange each of the S shards recomputes the
   hidden layers of its entire halo; with it, every boundary row is computed
   exactly once server-wide and gathered everywhere else.
3. **Plan-cache hit path strictly cheaper than rebuild** (always asserted):
   on an overlapping Zipf-style batch mix (hot miss sets recur exactly,
   shrink a little, grow a little) serving plans through the
   :class:`~repro.graph.PlanCache` — exact hits plus subset/superset
   patching — costs less wall-clock than rebuilding every plan, while
   producing bitwise-identical operators.  All three hit kinds must fire.

"Flush throughput" is measured at the worker level (``worker.predict`` on
routed micro-batches), as in ``bench_serving_hotpath.py``: the engine's
admission/batching bookkeeping is unchanged by this PR and would only dilute
the ratio.  ``BLOCKGNN_QUICK=1`` shrinks the graph and streams for CI.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.graph import PlanCache, Restriction, load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import InferenceServer, ManualClock, ServingConfig

QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"

SCALE = 0.0015 if QUICK else 0.006
HIDDEN = 32 if QUICK else 64
EPOCHS = 1
NUM_SHARDS = 4 if QUICK else 6
BATCH_SIZE = 32
REPEATS = 3 if QUICK else 5

#: Speedup floor of the halo tier on the boundary-heavy partition.  Asserted
#: in every run, including CI's quick mode; the quick floor is lower because
#: the shrunken graph leaves less duplicated work to remove.
COLD_FLOOR = 1.2 if QUICK else 1.5

MODELS = ["GCN", "GS-Pool", "G-GCN", "GAT"]


@pytest.fixture(scope="module")
def served_setup():
    """A trained GCN on the Reddit-like graph (hash partition regime)."""
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=EPOCHS, fanouts=(10, 5), seed=0)).fit()
    model.eval()  # flush measurements run the inference path, as the engine pins it
    return graph, model


@pytest.fixture(scope="module")
def model_zoo(served_setup):
    """All four (untrained) model variants for the exactness grid."""
    graph, _ = served_setup
    return {
        name: create_model(
            name,
            in_features=graph.num_features,
            hidden_features=HIDDEN,
            num_classes=graph.num_classes,
            seed=0,
        )
        for name in MODELS
    }


def _server(model, graph, halo=True, plan_cache=32, executor="serial",
            cache=65536, clock=None):
    return InferenceServer(
        model,
        graph,
        ServingConfig(
            num_shards=NUM_SHARDS,
            partition_method="hash",   # boundary-heavy: every cut is a halo
            max_batch_size=BATCH_SIZE,
            max_delay=0.002,
            cache_capacity=cache,
            halo_tier=halo,
            plan_cache_size=plan_cache,
            executor=executor,
            seed=0,
        ),
        clock=clock,
    )


def _flush_batches(server, nodes):
    """Route ``nodes`` to their owning shard and chunk into micro-batches."""
    owner = server._owner[nodes]
    batches = []
    for shard_id, group in enumerate(server._replicas):
        shard_nodes = nodes[owner == shard_id]
        for start in range(0, len(shard_nodes), BATCH_SIZE):
            batches.append((group[0], shard_nodes[start: start + BATCH_SIZE]))
    return batches


def _flush_throughput(server, nodes):
    """Total seconds + predictions of serving ``nodes`` flush by flush."""
    predictions = []
    start = time.perf_counter()
    for worker, batch in _flush_batches(server, nodes):
        predictions.append(worker.predict(batch))
    return time.perf_counter() - start, np.concatenate(predictions)


@pytest.mark.parametrize("name", MODELS)
@pytest.mark.parametrize("executor", ["serial", "concurrent"])
def test_halo_predictions_bitwise_equal(served_setup, model_zoo, name, executor):
    """Gate: halo tier + plan cache on == off == full-graph inference."""
    graph, _ = served_setup
    model = model_zoo[name]
    requests = np.random.default_rng(1).choice(
        graph.num_nodes, size=4 * BATCH_SIZE * NUM_SHARDS, replace=True
    )
    reference = model.full_forward(graph).data[requests].argmax(axis=-1)
    with _server(model, graph, halo=True, plan_cache=32, executor=executor) as server:
        enabled = server.predict(requests)
        enabled_warm = server.predict(requests)
        assert server.halo_store is not None
    with _server(model, graph, halo=False, plan_cache=0, executor=executor) as server:
        disabled = server.predict(requests)
        disabled_warm = server.predict(requests)
        assert server.halo_store is None
    assert np.array_equal(enabled, reference)
    assert np.array_equal(enabled_warm, reference)
    assert np.array_equal(disabled, reference)
    assert np.array_equal(disabled_warm, reference)


def test_halo_cold_flush_speedup_gate(served_setup, save_result):
    """Gate: cold-flush throughput with the halo tier >= COLD_FLOOR x without.

    A cold pass cannot be repeated on one server (the first pass warms every
    cache), so each repeat rebuilds the server; configurations are
    interleaved and the best pass per configuration compared, shaving
    scheduler noise off the wall-clock ratio.
    """
    graph, model = served_setup
    stream = np.random.default_rng(2).permutation(graph.num_nodes)

    results = {True: None, False: None}
    halo_hit_rate = 0.0
    for _ in range(REPEATS):
        for halo in (True, False):
            server = _server(model, graph, halo=halo, clock=ManualClock())
            seconds, predictions = _flush_throughput(server, stream)
            if results[halo] is None or seconds < results[halo][0]:
                results[halo] = (seconds, predictions)
            if halo:
                halo_hit_rate = server.stats().halo_hit_rate
            server.shutdown()

    assert np.array_equal(results[True][1], results[False][1])
    speedup = results[False][0] / results[True][0]
    save_result(
        "serving_halo_cold",
        f"cold (miss-heavy) flush throughput, GCN n=1, {NUM_SHARDS} hash shards "
        f"(boundary-heavy), batch {BATCH_SIZE} on {graph.summary()}\n"
        f"  halo off: {results[False][0] * 1e3:8.1f} ms "
        f"({len(stream) / results[False][0]:7.0f} req/s)\n"
        f"  halo on : {results[True][0] * 1e3:8.1f} ms "
        f"({len(stream) / results[True][0]:7.0f} req/s, "
        f"boundary hit rate {halo_hit_rate * 100:.1f}%)\n"
        f"  speedup : {speedup:.2f}x (floor {COLD_FLOOR:.1f}x)",
        speedup_halo_cold=speedup,
        floor=COLD_FLOOR,
        halo_hit_rate=halo_hit_rate,
        off_req_per_s=len(stream) / results[False][0],
        on_req_per_s=len(stream) / results[True][0],
    )
    assert speedup >= COLD_FLOOR, (
        f"halo tier cold path only {speedup:.2f}x over no-exchange (floor {COLD_FLOOR}x)"
    )


def test_plan_cache_hit_path_cheaper_than_rebuild(served_setup, save_result):
    """Gate: serving overlapping Zipf miss sets from the plan cache beats
    rebuilding each plan, bitwise-identically.

    The batch mix models warm Zipf traffic at the plan level: a hot miss set
    recurs exactly (exact hits), sometimes loses a few cooled-off rows
    (subset patches) and sometimes gains a few cold ones (superset patches).
    """
    graph, _ = served_setup
    shard_graph = graph  # plan caching is per frozen graph; the full one will do
    rng = np.random.default_rng(3)
    hot = np.unique(rng.choice(shard_graph.num_nodes, size=160 if QUICK else 320))

    batches = []
    for index in range(30 if QUICK else 60):
        mode = index % 3
        if mode == 0:
            rows = hot
        elif mode == 1:  # a few hot rows cooled off: subset of the hot plan
            drop = rng.choice(len(hot), size=max(len(hot) // 10, 1), replace=False)
            rows = np.delete(hot, drop)
        else:            # a few cold rows joined: superset of the hot plan
            extra = rng.choice(shard_graph.num_nodes, size=max(len(hot) // 20, 1))
            rows = np.union1d(hot, extra)
        batches.append(np.asarray(rows, dtype=np.int64))

    def timed(use_cache):
        best = float("inf")
        stats = None
        for _ in range(REPEATS):
            cache = PlanCache(capacity=32)
            start = time.perf_counter()
            for rows in batches:
                if use_cache:
                    plan = cache.restriction(shard_graph, rows)
                else:
                    plan = Restriction(shard_graph, rows)
                plan.operator("random_walk", add_self_loops=True)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
                stats = cache.stats
        return best, stats

    rebuild_seconds, _ = timed(use_cache=False)
    cached_seconds, stats = timed(use_cache=True)

    # Bitwise correctness of every derived plan against a fresh build.
    check = PlanCache(capacity=32)
    for rows in batches[:6]:
        cached_plan = check.restriction(shard_graph, rows)
        fresh = Restriction(shard_graph, rows)
        got = cached_plan.operator("random_walk", add_self_loops=True)
        expected = fresh.operator("random_walk", add_self_loops=True)
        dense_cols = np.searchsorted(cached_plan.cols, fresh.cols)
        assert np.array_equal(got.toarray()[:, dense_cols], expected.toarray())

    speedup = rebuild_seconds / cached_seconds
    save_result(
        "serving_halo_plan_cache",
        f"restriction plans for {len(batches)} overlapping Zipf batches "
        f"(hot set {len(hot)} rows) on {shard_graph.summary()}\n"
        f"  rebuild every plan: {rebuild_seconds * 1e3:8.2f} ms\n"
        f"  plan cache        : {cached_seconds * 1e3:8.2f} ms "
        f"({stats.exact_hits} exact + {stats.subset_hits} subset + "
        f"{stats.superset_hits} superset hits / {stats.lookups} lookups)\n"
        f"  speedup           : {speedup:.2f}x (must be > 1)",
        plan_speedup=speedup,
        exact_hits=stats.exact_hits,
        subset_hits=stats.subset_hits,
        superset_hits=stats.superset_hits,
        hit_rate=stats.hit_rate,
    )
    assert stats.exact_hits > 0 and stats.subset_hits > 0 and stats.superset_hits > 0
    assert cached_seconds < rebuild_seconds, (
        f"plan-cache path ({cached_seconds * 1e3:.2f} ms) not cheaper than "
        f"rebuild ({rebuild_seconds * 1e3:.2f} ms)"
    )


def test_halo_and_plan_stats_surface_in_summary(served_setup, save_result):
    """The serve-bench surface reports halo and plan-cache hit rates."""
    graph, model = served_setup
    with _server(model, graph, clock=ManualClock()) as server:
        nodes = np.random.default_rng(4).choice(graph.num_nodes, size=512, replace=True)
        server.predict(nodes)
        stats = server.stats()
        rendered = stats.render()
    assert "halo tier:" in rendered
    assert "plan cache:" in rendered
    save_result(
        "serving_halo_stats",
        rendered,
        halo_hit_rate=stats.halo_hit_rate,
        plan_hit_rate=stats.plan_hit_rate,
        cache_hit_rate=stats.cache_hit_rate,
    )
