"""Crash-isolated multi-process serving benchmarks with gates.

Gates on the synthetic Reddit-like graph served by ``executor="process"``
workers over shared-memory slabs (the PR-10 process plane):

1. **Process beats threads** (``process_vs_thread_ratio``): on >= 4 shards
   the process executor's throughput must strictly exceed the thread-pool
   executor's on the identical stream, with predictions bitwise equal to
   offline inference under both.  Worker processes sidestep the GIL on the
   Python-side batch assembly that threads serialise.  Needs >= 4 CPUs to
   mean anything, so the gate skips (with the host's count in the reason)
   on smaller runners; the ratio assertion follows ``BLOCKGNN_STRICT_PERF``.
2. **SIGKILL heal, zero lost** (``healed_steady_state_ratio``): one worker
   process per shard is killed with a real ``SIGKILL`` mid-stream.  Every
   kill must surface as a typed :class:`~repro.serving.ProcessDead`, fail
   over to the sibling replica with zero lost requests (ledger balances,
   every completion bitwise exact), and the supervisor must respawn the
   corpse under a bumped epoch with a halo-prewarmed cache.  A timed pass on
   the healed fleet must reach >= ``STEADY_FLOOR`` x the pre-kill
   steady-state throughput of the same server (wall-clock — real processes —
   so the assertion follows ``BLOCKGNN_STRICT_PERF``; the trend gate tracks
   the ratio).
3. **No leaked segments** (unconditional): after SIGKILLing *every* worker
   and draining, shutdown leaves no shared-memory segment behind, and a
   segment orphaned by a dead creator is reclaimed by the next server's
   startup sweep.

``BLOCKGNN_QUICK=1`` shrinks the graph, stream, and fleet for CI.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import InferenceServer, ProcessWorkerHandle, ServingConfig
from repro.serving.procplane import list_segments

QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"
STRICT_PERF = os.environ.get("BLOCKGNN_STRICT_PERF", "1") != "0"
CPUS = os.cpu_count() or 1

SCALE = 0.0015 if QUICK else 0.004
HIDDEN = 32 if QUICK else 64
BATCH_SIZE = 16
REPEATS = 3
STREAM = 3  # batches per shard per pass

#: Gate 1 fleet: wide enough that flush parallelism is the signal.
WIDE_SHARDS = 4

#: Gate 2 fleet: one kill victim + one surviving sibling per shard.
HEAL_SHARDS = 2 if QUICK else 4

#: Healed steady-state throughput floor vs the same server pre-kill.
STEADY_FLOOR = 0.9


@pytest.fixture(scope="module")
def served_setup():
    """A trained GCN on the Reddit-like graph plus its offline reference."""
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=1, fanouts=(10, 5), seed=0)).fit()
    model.eval()
    reference = model.full_forward(graph).data.argmax(axis=-1)
    return graph, model, reference


def _server(model, graph, num_shards, **overrides):
    defaults = dict(
        num_shards=num_shards,
        max_batch_size=BATCH_SIZE,
        max_delay=0.0,
        cache_capacity=65536,
        seed=0,
    )
    defaults.update(overrides)
    return InferenceServer(model, graph, ServingConfig(**defaults))


def _stream(graph, num_shards, seed=1):
    size = STREAM * BATCH_SIZE * num_shards
    return np.random.default_rng(seed).choice(graph.num_nodes, size=size, replace=True)


def _timed_pass(server, nodes):
    start = time.perf_counter()
    requests = server.submit_many(nodes)
    server.drain()
    return time.perf_counter() - start, requests


def _assert_ledger_balances(requests, stats, reference):
    """Exactly-once termination + bitwise-exact completions (zero lost)."""
    assert all(request.done for request in requests)
    assert stats.submitted_requests == len(requests)
    terminal = (
        stats.completed_requests
        + stats.failed_requests
        + stats.rejected_requests
        + stats.shed_requests
        + stats.expired_requests
    )
    assert terminal == len(requests)
    for request in requests:
        if request.completed:
            assert request.prediction == reference[request.node]


def _handles(server):
    return [worker for worker in server.workers if isinstance(worker, ProcessWorkerHandle)]


@pytest.mark.skipif(
    CPUS < 4,
    reason=f"process-vs-thread throughput gate needs >= 4 CPUs (host has {CPUS})",
)
def test_process_beats_threads_on_wide_fleet(served_setup, save_result):
    """Gate 1: worker processes out-serve the thread pool on >= 4 shards,
    bitwise equal under both executors."""
    graph, model, reference = served_setup
    nodes = _stream(graph, WIDE_SHARDS)

    def run(executor):
        server = _server(model, graph, WIDE_SHARDS, executor=executor)
        try:
            server.predict(nodes[:BATCH_SIZE])  # warm spawn/compile paths
            best = float("inf")
            requests = []
            for _ in range(REPEATS):
                seconds, requests = _timed_pass(server, nodes)
                best = min(best, seconds)
            stats = server.stats()
            _assert_ledger_balances(requests, stats, reference)
            assert stats.failed_requests == 0
        finally:
            server.shutdown()
        return best

    thread_seconds = run("concurrent")
    process_seconds = run("process")
    ratio = thread_seconds / process_seconds

    save_result(
        "serving_multiprocess_throughput",
        f"process vs thread executor (wall-clock, best of {REPEATS}), GCN, "
        f"{WIDE_SHARDS} shards, batch {BATCH_SIZE}, {len(nodes)} requests/pass "
        f"on {graph.summary()} ({CPUS} CPUs)\n"
        f"  thread pool : {thread_seconds * 1e3:8.1f} ms "
        f"({len(nodes) / thread_seconds:7.0f} req/s)\n"
        f"  processes   : {process_seconds * 1e3:8.1f} ms "
        f"({len(nodes) / process_seconds:7.0f} req/s, {ratio:.2f}x)",
        process_vs_thread_ratio=ratio,
        thread_req_per_s=len(nodes) / thread_seconds,
        process_req_per_s=len(nodes) / process_seconds,
    )
    if STRICT_PERF:
        assert ratio > 1.0, (
            f"process executor is {ratio:.2f}x the thread pool on "
            f"{WIDE_SHARDS} shards (must be strictly faster)"
        )


def test_sigkill_heal_mid_stream_zero_lost(served_setup, save_result):
    """Gate 2: SIGKILL one worker process per shard mid-stream; typed
    failover + supervisor respawn lose nothing and throughput recovers."""
    graph, model, reference = served_setup
    server = _server(
        model,
        graph,
        HEAL_SHARDS,
        executor="process",
        num_replicas=2,
        supervisor=True,
        supervisor_failure_budget=1,
        supervisor_window=60.0,
        health_failure_threshold=1,
        health_cooldown=30.0,
        max_retries=3,
    )
    base = server._procplane.arena.base
    try:
        warm_nodes = _stream(graph, HEAL_SHARDS)
        np.testing.assert_array_equal(
            server.predict(warm_nodes), reference[warm_nodes]
        )

        before = float("inf")
        for _ in range(REPEATS):
            seconds, _ = _timed_pass(server, _stream(graph, HEAL_SHARDS, seed=2))
            before = min(before, seconds)

        # One victim per shard: the first replica (shard-major layout).
        victims = [
            server.workers[shard * 2] for shard in range(HEAL_SHARDS)
        ]
        assert all(isinstance(victim, ProcessWorkerHandle) for victim in victims)
        for victim in victims:
            os.kill(victim.pid, signal.SIGKILL)
            victim._proc.join(5.0)

        # Mid-stream: the kills surface as ProcessDead on dispatch, fail over
        # to the sibling replica, and the supervisor respawns each corpse.
        heal_nodes = _stream(graph, HEAL_SHARDS, seed=3)
        _, heal_requests = _timed_pass(server, heal_nodes)
        stats = server.stats()
        # Zero lost: every mid-kill request completes bitwise-exact, and the
        # cumulative ledger (stats span every pass) still balances.
        assert all(request.completed for request in heal_requests)
        for request in heal_requests:
            assert request.prediction == reference[request.node]
        terminal = (
            stats.completed_requests
            + stats.failed_requests
            + stats.rejected_requests
            + stats.shed_requests
            + stats.expired_requests
        )
        assert terminal == stats.submitted_requests
        assert stats.failed_requests == 0
        assert stats.supervisor_restarts >= len(victims)
        for victim in victims:
            replacement = server.workers[victim.worker_id]
            assert isinstance(replacement, ProcessWorkerHandle)
            assert replacement is not victim
            assert replacement.epoch == victim.epoch + 1
            assert replacement._proc.is_alive()
        prewarmed = stats.prewarmed_rows

        after = float("inf")
        for _ in range(REPEATS):
            seconds, _ = _timed_pass(server, _stream(graph, HEAL_SHARDS, seed=2))
            after = min(after, seconds)
    finally:
        server.shutdown()
    assert not list_segments(base)  # gate 3's invariant holds here too

    total = len(_stream(graph, HEAL_SHARDS))
    healed_steady_state_ratio = before / after
    save_result(
        "serving_multiprocess",
        f"SIGKILL heal (wall-clock, best of {REPEATS}), GCN, {HEAL_SHARDS} "
        f"shards x 2 replicas (processes), batch {BATCH_SIZE}, "
        f"{total} requests/pass on {graph.summary()}\n"
        f"  pre-kill steady state : {before * 1e3:8.1f} ms "
        f"({total / before:7.0f} req/s)\n"
        f"  healed steady state   : {after * 1e3:8.1f} ms "
        f"({total / after:7.0f} req/s, ratio {healed_steady_state_ratio:.2f}, "
        f"floor {STEADY_FLOOR:.1f})\n"
        f"  healing               : {stats.supervisor_restarts} respawns, "
        f"{prewarmed} rows pre-warmed, 0 lost of {len(heal_requests)} "
        f"mid-kill requests",
        healed_steady_state_ratio=healed_steady_state_ratio,
        supervisor_restarts=stats.supervisor_restarts,
        prewarmed_rows=prewarmed,
        healed_req_per_s=total / after,
        pre_kill_req_per_s=total / before,
    )
    if STRICT_PERF:
        assert healed_steady_state_ratio >= STEADY_FLOOR, (
            f"healed fleet reaches only {healed_steady_state_ratio:.2f}x its "
            f"pre-kill steady-state throughput (floor {STEADY_FLOOR}x)"
        )


def test_no_leaked_segments_after_killing_everything(served_setup):
    """Gate 3 (unconditional): SIGKILL every worker, drain, shut down —
    /dev/shm is clean, and a dead creator's orphan is swept at startup."""
    graph, model, _ = served_setup
    server = _server(model, graph, 2, executor="process")
    base = server._procplane.arena.base
    server.predict(_stream(graph, 2)[:BATCH_SIZE])
    for handle in _handles(server):
        os.kill(handle.pid, signal.SIGKILL)
        handle._proc.join(5.0)
    server.shutdown()  # must not raise, must still sweep
    assert not list_segments(base)

    # An orphan left by a SIGKILL'd *parent* (its creator pid is dead) is
    # reclaimed by the next server's startup sweep.
    pid = os.fork()
    if pid == 0:
        os._exit(0)
    os.waitpid(pid, 0)
    from repro.serving.procplane import _create_segment

    stale = f"bgnn-{pid}-cafef00d-features"
    shm, _ = _create_segment(stale, (4,), np.float64)
    shm.close()
    fresh = _server(model, graph, 2, executor="process")
    try:
        assert stale in fresh.swept_segments
        assert stale not in list_segments()
    finally:
        fresh.shutdown()
    assert not list_segments(fresh._procplane.arena.base)
