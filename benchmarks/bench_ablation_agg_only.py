"""Benchmark: Section V ablation — compress only the aggregators.

Paper reference: compressing both phases maximises the compression ratio, but
compressing only the aggregation-phase matrices keeps the accuracy drop below
0.5%.  The benchmark trains the three variants (dense, fully compressed,
aggregator-only) on the synthetic Reddit stand-in and reports the trade-off.
"""

from __future__ import annotations


from repro.experiments import render_aggregator_only, run_aggregator_only_ablation


def _run():
    return run_aggregator_only_ablation(
        model_name="GS-Pool",
        block_size=8,
        dataset="reddit",
        dataset_scale=0.004,
        num_features=64,
        hidden_features=64,
        epochs=5,
        fanouts=(10, 5),
        seed=0,
    )


def test_aggregator_only_compression(benchmark, save_result):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("ablation_aggregator_only", render_aggregator_only(result))

    chance = 1.0 / 41.0
    assert result.accuracy_uncompressed > chance
    # The trade-off direction the paper describes: aggregator-only keeps more
    # parameters than full compression (less storage saving) ...
    assert result.stored_parameters_aggregator_only > result.stored_parameters_full
    # ... while both compressed variants remain usable classifiers.
    assert result.accuracy_full_compression > chance * 0.8
    assert result.accuracy_aggregator_only > chance * 0.8
