"""Compiled serving fast-path benchmarks with in-repo acceptance gates.

Gates on the synthetic Reddit-like graph (default 4-shard config):

1. **Exactness** (always asserted): served predictions equal offline
   full-graph inference for all four models, under both cache policies
   (``lru`` / ``degree``) and both executors — and the compiled hot path
   agrees with the ``legacy`` (PR-3) reference prediction-for-prediction.
2. **Cold-path speedup** (always asserted, floor depends on quick mode):
   miss-heavy flush throughput of the compiled hot path >= 2x the legacy
   implementation (>= 1.2x under ``BLOCKGNN_QUICK``, where the shrunken graph
   leaves little work to optimise away).
3. **Warm-path speedup** (always asserted, same scheme): hit-heavy flush
   throughput >= 3x legacy (>= 1.5x quick) — the slab cache's single-gather
   ``take`` versus the per-row ``OrderedDict`` walk.
4. **Degree-aware retention** (deterministic, always asserted): on a Zipf
   (power-law) request stream at equal capacity, degree-weighted retention
   achieves a strictly higher hit rate than LRU.
5. **FFT workers micro-gate**: ``workers=1`` produces identical outputs and
   (under ``BLOCKGNN_STRICT_PERF``) is never materially slower than the
   default single-threaded path.

"Flush throughput" is measured at the worker level (``worker.predict`` on
routed micro-batches): that is the code this PR rewrites, and it excludes the
engine's admission/batching bookkeeping, which is unchanged and would only
dilute the ratio.  ``BLOCKGNN_QUICK=1`` shrinks the graph and streams for CI.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.compression import CompressionConfig, set_fft_workers
from repro.compression.circulant import BlockCirculantSpec, random_block_circulant
from repro.compression.spectral import block_circulant_matmul
from repro.graph import load_dataset
from repro.models import Trainer, TrainingConfig, create_model
from repro.serving import InferenceServer, ManualClock, ServingConfig

STRICT_PERF = os.environ.get("BLOCKGNN_STRICT_PERF", "1") != "0"
QUICK = os.environ.get("BLOCKGNN_QUICK", "0") == "1"

SCALE = 0.001 if QUICK else 0.006
HIDDEN = 32 if QUICK else 64
EPOCHS = 1 if QUICK else 2
NUM_SHARDS = 4
BATCH_SIZE = 32
#: The warm gate measures high-load flush throughput: under sustained traffic
#: the micro-batcher coalesces up to max_batch_size requests per flush, and
#: that is the regime where per-row cache cost dominates (and where the
#: legacy per-row OrderedDict walk hurts most).
WARM_BATCH = 256
REPEATS = 3 if QUICK else 5

# Speedup floors over the legacy (PR-3) hot path.  Asserted in *every* run —
# including CI's quick mode — so a regression below the floor fails the
# bench-smoke job; the quick floors are set low enough to be robust on noisy
# shared runners while still catching a real fast-path regression.
COLD_FLOOR = 1.2 if QUICK else 2.0
WARM_FLOOR = 1.3 if QUICK else 3.0

MODELS = ["GCN", "GS-Pool", "G-GCN", "GAT"]


@pytest.fixture(scope="module")
def served_setup():
    """A trained block-circulant GCN on the Reddit-like graph."""
    graph = load_dataset("reddit", scale=SCALE, seed=0, num_features=HIDDEN)
    model = create_model(
        "GCN",
        in_features=graph.num_features,
        hidden_features=HIDDEN,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=8),
        seed=0,
    )
    Trainer(model, graph, TrainingConfig(epochs=EPOCHS, fanouts=(10, 5), seed=0)).fit()
    model.eval()  # flush measurements run the inference path, as the engine pins it
    return graph, model


@pytest.fixture(scope="module")
def model_zoo(served_setup):
    """All four (untrained) model variants for the exactness grid."""
    graph, _ = served_setup
    return {
        name: create_model(
            name,
            in_features=graph.num_features,
            hidden_features=HIDDEN,
            num_classes=graph.num_classes,
            seed=0,
        )
        for name in MODELS
    }


def _server(model, graph, hot_path="compiled", cache=4096, policy="lru",
            executor="serial", shards=NUM_SHARDS, clock=None):
    return InferenceServer(
        model,
        graph,
        ServingConfig(
            num_shards=shards,
            max_batch_size=BATCH_SIZE,
            max_delay=0.002,
            cache_capacity=cache,
            cache_policy=policy,
            hot_path=hot_path,
            executor=executor,
            seed=0,
        ),
        clock=clock,
    )


def _flush_batches(server, nodes, batch_size):
    """Route ``nodes`` to their owning shard and chunk into micro-batches."""
    owner = server._owner[nodes]
    batches = []
    for shard_id, group in enumerate(server._replicas):
        shard_nodes = nodes[owner == shard_id]
        for start in range(0, len(shard_nodes), batch_size):
            batches.append((group[0], shard_nodes[start: start + batch_size]))
    return batches


def _flush_throughput(server, nodes, batch_size=BATCH_SIZE):
    """Total seconds + per-flush latencies of serving ``nodes`` flush by flush."""
    latencies = []
    predictions = []
    for worker, batch in _flush_batches(server, nodes, batch_size):
        start = time.perf_counter()
        predictions.append(worker.predict(batch))
        latencies.append(time.perf_counter() - start)
    return float(np.sum(latencies)), np.asarray(latencies), np.concatenate(predictions)


@pytest.mark.parametrize("name", MODELS)
@pytest.mark.parametrize("policy", ["lru", "degree"])
@pytest.mark.parametrize("executor", ["serial", "concurrent"])
def test_hotpath_predictions_bitwise_equal(served_setup, model_zoo, name, policy, executor):
    """Gate: compiled path == full-graph inference == legacy path, everywhere."""
    graph, _ = served_setup
    model = model_zoo[name]
    requests = np.random.default_rng(1).choice(
        graph.num_nodes, size=4 * BATCH_SIZE * NUM_SHARDS, replace=True
    )
    reference = model.full_forward(graph).data[requests].argmax(axis=-1)
    with _server(model, graph, "compiled", policy=policy, executor=executor) as server:
        compiled = server.predict(requests)
        warm = server.predict(requests)  # cached rows must not change an answer
    assert np.array_equal(compiled, reference)
    assert np.array_equal(warm, reference)
    with _server(model, graph, "legacy", executor=executor) as server:
        legacy = server.predict(requests)
    assert np.array_equal(legacy, compiled)


def test_hotpath_cold_speedup_gate(served_setup, save_result):
    """Gate: miss-heavy flush throughput >= COLD_FLOOR x the PR-3 path.

    A cold pass cannot be repeated on one server (the first pass warms the
    caches), so each repeat rebuilds the server and the best pass per hot
    path is compared — the standard way to shave scheduler noise off a
    wall-clock ratio.
    """
    graph, model = served_setup
    stream = np.random.default_rng(2).permutation(graph.num_nodes)

    results = {}
    for hot_path in ("legacy", "compiled"):
        best = None
        for _ in range(REPEATS):
            server = _server(model, graph, hot_path, clock=ManualClock())
            seconds, latencies, predictions = _flush_throughput(server, stream)
            if best is None or seconds < best[0]:
                best = (seconds, latencies, predictions)
            server.shutdown()
        results[hot_path] = best

    assert np.array_equal(results["legacy"][2], results["compiled"][2])
    speedup = results["legacy"][0] / results["compiled"][0]
    legacy_lat, compiled_lat = results["legacy"][1], results["compiled"][1]
    save_result(
        "serving_hotpath_cold",
        f"cold (miss-heavy) flush throughput, GCN n=8, {NUM_SHARDS} shards, "
        f"batch {BATCH_SIZE} on {graph.summary()}\n"
        f"  legacy  : {results['legacy'][0] * 1e3:8.1f} ms "
        f"({len(stream) / results['legacy'][0]:7.0f} req/s, "
        f"flush p50 {np.percentile(legacy_lat, 50) * 1e3:.3f} ms)\n"
        f"  compiled: {results['compiled'][0] * 1e3:8.1f} ms "
        f"({len(stream) / results['compiled'][0]:7.0f} req/s, "
        f"flush p50 {np.percentile(compiled_lat, 50) * 1e3:.3f} ms)\n"
        f"  speedup : {speedup:.2f}x (floor {COLD_FLOOR:.1f}x)",
        speedup_cold=speedup,
        floor=COLD_FLOOR,
        legacy_req_per_s=len(stream) / results["legacy"][0],
        compiled_req_per_s=len(stream) / results["compiled"][0],
        compiled_p50_ms=float(np.percentile(compiled_lat, 50) * 1e3),
        compiled_p95_ms=float(np.percentile(compiled_lat, 95) * 1e3),
        compiled_p99_ms=float(np.percentile(compiled_lat, 99) * 1e3),
    )
    assert speedup >= COLD_FLOOR, (
        f"compiled cold path only {speedup:.2f}x over legacy (floor {COLD_FLOOR}x)"
    )


def test_hotpath_warm_speedup_gate(served_setup, save_result):
    """Gate: hit-heavy flush throughput >= WARM_FLOOR x the PR-3 path.

    Measured at ``WARM_BATCH``-sized flushes — the shape sustained traffic
    produces once the micro-batcher coalesces — where the per-row cache cost
    is the flush, not the fixed per-call bookkeeping both paths share.
    """
    graph, model = served_setup
    stream = np.random.default_rng(3).permutation(graph.num_nodes)

    results = {}
    for hot_path in ("legacy", "compiled"):
        server = _server(model, graph, hot_path, cache=16384, clock=ManualClock())
        _flush_throughput(server, stream, WARM_BATCH)  # cold pass fills every cache
        server.reset_stats()  # keep cache contents; count only the warm passes
        best = None
        for _ in range(REPEATS):
            seconds, latencies, predictions = _flush_throughput(server, stream, WARM_BATCH)
            if best is None or seconds < best[0]:
                best = (seconds, latencies, predictions)
        results[hot_path] = best
        assert server.stats().cache_hit_rate == 1.0  # every warm lookup must hit
        server.shutdown()

    assert np.array_equal(results["legacy"][2], results["compiled"][2])
    speedup = results["legacy"][0] / results["compiled"][0]
    legacy_lat, compiled_lat = results["legacy"][1], results["compiled"][1]
    save_result(
        "serving_hotpath_warm",
        f"warm (hit-heavy) flush throughput, GCN n=8, {NUM_SHARDS} shards, "
        f"batch {WARM_BATCH} on {graph.summary()}\n"
        f"  legacy  : {results['legacy'][0] * 1e3:8.2f} ms "
        f"({len(stream) / results['legacy'][0]:7.0f} req/s, "
        f"flush p50 {np.percentile(legacy_lat, 50) * 1e3:.3f} ms)\n"
        f"  compiled: {results['compiled'][0] * 1e3:8.2f} ms "
        f"({len(stream) / results['compiled'][0]:7.0f} req/s, "
        f"flush p50 {np.percentile(compiled_lat, 50) * 1e3:.3f} ms)\n"
        f"  speedup : {speedup:.2f}x (floor {WARM_FLOOR:.1f}x)",
        speedup_warm=speedup,
        floor=WARM_FLOOR,
        legacy_req_per_s=len(stream) / results["legacy"][0],
        compiled_req_per_s=len(stream) / results["compiled"][0],
        compiled_p50_ms=float(np.percentile(compiled_lat, 50) * 1e3),
        compiled_p95_ms=float(np.percentile(compiled_lat, 95) * 1e3),
        compiled_p99_ms=float(np.percentile(compiled_lat, 99) * 1e3),
    )
    assert speedup >= WARM_FLOOR, (
        f"compiled warm path only {speedup:.2f}x over legacy (floor {WARM_FLOOR}x)"
    )


def test_degree_retention_beats_lru_on_zipf_stream(served_setup, save_result):
    """Gate: degree-aware retention > LRU hit rate on power-law traffic.

    The stream is Zipf over nodes ranked by degree — the GNNIE assumption
    that popular serving targets are the hubs — with a long tail of cold
    nodes that acts as a continuous scan.  At equal (scarce) capacity LRU
    lets the tail evict the hubs' embeddings; degree pinning does not.
    """
    graph, model = served_setup
    rng = np.random.default_rng(4)
    by_degree = np.argsort(-graph.degrees(), kind="stable")
    weights = 1.0 / np.arange(1, graph.num_nodes + 1) ** 1.1
    stream = by_degree[
        rng.choice(graph.num_nodes, size=6 * graph.num_nodes, replace=True, p=weights / weights.sum())
    ]
    capacity = max(graph.num_nodes // 16, 8)

    hit_rates = {}
    for policy in ("lru", "degree"):
        with _server(
            model, graph, "compiled", cache=capacity, policy=policy, clock=ManualClock()
        ) as server:
            server.predict(stream)
            hit_rates[policy] = server.stats().cache_hit_rate

    save_result(
        "serving_hotpath_degree_policy",
        f"Zipf(1.1) degree-ranked stream of {len(stream)} requests, "
        f"cache {capacity} entries/worker on {graph.summary()}\n"
        f"  lru    hit rate: {hit_rates['lru'] * 100:.2f}%\n"
        f"  degree hit rate: {hit_rates['degree'] * 100:.2f}%",
        lru_hit_rate=hit_rates["lru"],
        degree_hit_rate=hit_rates["degree"],
        capacity=capacity,
    )
    assert hit_rates["degree"] > hit_rates["lru"], (
        f"degree-aware retention ({hit_rates['degree']:.3f}) did not beat "
        f"LRU ({hit_rates['lru']:.3f}) on the Zipf stream"
    )


def test_fft_workers_identical_and_not_slower_at_one(save_result):
    """Micro-gate: scipy.fft workers=1 changes nothing (outputs or speed)."""
    rng = np.random.default_rng(5)
    spec = BlockCirculantSpec(out_features=256, in_features=256, block_size=16)
    weights = random_block_circulant(spec, rng)
    x = rng.normal(size=(512, spec.in_features))

    def timed(repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            out = block_circulant_matmul(x, weights, spec, use_rfft=True)
            best = min(best, time.perf_counter() - start)
        return best, out

    try:
        set_fft_workers(None)
        default_seconds, default_out = timed()
        set_fft_workers(1)
        one_seconds, one_out = timed()
    finally:
        set_fft_workers(None)

    assert np.array_equal(default_out, one_out)
    ratio = one_seconds / default_seconds
    save_result(
        "serving_hotpath_fft_workers",
        f"block-circulant matmul (512 x {spec.in_features}, n={spec.block_size}) "
        f"rFFT path\n"
        f"  workers default: {default_seconds * 1e3:.3f} ms\n"
        f"  workers=1      : {one_seconds * 1e3:.3f} ms ({ratio:.2f}x)",
        workers1_over_default=ratio,
    )
    if STRICT_PERF:
        assert ratio <= 1.25, f"workers=1 measurably slower than default ({ratio:.2f}x)"
