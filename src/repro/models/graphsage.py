"""GraphSAGE with the max-pooling aggregator ("GS-Pool") — Table I, row 2.

Aggregation: ``a_v = max_u ReLU(W_pool h_u + b)`` over the sampled
neighbours — the per-neighbour weight matrix is what makes GS-Pool the most
expensive model in Table II (1.9e12 FLOPs/layer on Reddit).  Combination:
``ReLU(W^k [a_v || h_v])``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..compression.compress import CompressionConfig
from ..graph.sampling import SampledBlock
from ..tensor.tensor import Tensor, concatenate
from .base import (
    GNNLayer,
    GNNModel,
    apply_linear,
    emit_restricted,
    register_model,
    segment_reduce,
    stage_scope,
)

__all__ = ["GraphSAGEPoolLayer", "GraphSAGEPool"]


class GraphSAGEPoolLayer(GNNLayer):
    """One GS-Pool layer: per-neighbour FC + max pooling, then concat + FC."""

    has_aggregation_weights = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        compression: CompressionConfig,
        pool_features: Optional[int] = None,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(in_features, out_features, compression)
        # Pool into the output (hidden) dimension by default, as in GraphSAGE.
        self.pool_features = pool_features if pool_features is not None else out_features
        self.pool_fc = compression.linear(in_features, self.pool_features, phase="aggregation", rng=rng)
        self.pool_fc.phase = "aggregation"
        self.combine_fc = compression.linear(
            self.pool_features + in_features, out_features, phase="combination", rng=rng
        )
        self.combine_fc.phase = "combination"
        self.activation = activation

    def forward(self, h: Tensor, block: SampledBlock) -> Tensor:
        h_self = h.index_select(block.self_index)                                   # (D, F)
        h_neigh = h.index_select(block.neighbor_index.reshape(-1))
        h_neigh = h_neigh.reshape(block.num_dst, block.fanout, self.in_features)     # (D, S, F)
        pooled = apply_linear(self.pool_fc, h_neigh).relu()                          # (D, S, P)
        aggregated = pooled.max(axis=1)                                              # (D, P)
        combined = concatenate([aggregated, h_self], axis=1)                          # (D, P + F)
        out = apply_linear(self.combine_fc, combined)
        return out.relu() if self.activation else out

    def forward_full(self, h: Tensor, graph) -> Tensor:
        # Project every node once, then take the neighbourhood max with a CSR
        # segment reduction — each node's pooled representation is shared by
        # all of its neighbours instead of being recomputed per sampled block.
        projected = apply_linear(self.pool_fc, h).relu().data                        # (N, P)
        pooled, nonempty = segment_reduce(projected[graph.indices], graph.indptr, np.maximum)
        # Isolated nodes mirror the sampler's self-loop fallback.
        pooled[~nonempty] = projected[~nonempty]
        combined = np.concatenate([pooled, h.data], axis=1)                          # (N, P + F)
        out = apply_linear(self.combine_fc, Tensor(combined))
        return out.relu() if self.activation else out

    def forward_restricted(self, h: Tensor, restriction, timer=None, out=None) -> Tensor:
        with stage_scope(timer, "aggregation"):
            # Project the restriction's column set once (every pooled
            # neighbour is in it), then max-reduce along the sliced CSR rows.
            projected = apply_linear(self.pool_fc, h).relu().data                    # (C, P)
            pooled, nonempty = segment_reduce(
                projected[restriction.col_positions], restriction.indptr, np.maximum
            )
            row_positions = restriction.row_positions
            pooled[~nonempty] = projected[row_positions[~nonempty]]
            combined = np.concatenate([pooled, h.data[row_positions]], axis=1)       # (R, P + F)
        with stage_scope(timer, "combination"):
            result = apply_linear(self.combine_fc, Tensor(combined))
            return emit_restricted(result.relu() if self.activation else result, out)


@register_model("gs_pool")
class GraphSAGEPool(GNNModel):
    """K-layer GraphSAGE with max-pooling aggregators."""

    name = "GS-Pool"

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        compression: Optional[CompressionConfig] = None,
        dropout: float = 0.0,
        seed: Optional[int] = None,
        pool_features: Optional[int] = None,
    ) -> None:
        config = compression if compression is not None else CompressionConfig(block_size=1)
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        layers: List[GraphSAGEPoolLayer] = []
        for index in range(num_layers):
            layers.append(
                GraphSAGEPoolLayer(
                    dims[index],
                    dims[index + 1],
                    config,
                    pool_features=pool_features,
                    activation=index < num_layers - 1,
                    rng=rng,
                )
            )
        super().__init__(layers, dropout=dropout, seed=seed)
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.num_classes = num_classes
        self.compression = config
