"""The four GNN variants evaluated by the paper (Table I) and their trainer."""

from .base import (
    GNNLayer,
    GNNModel,
    apply_linear,
    available_models,
    create_model,
    register_model,
)
from .gat import GAT, GATHead, GATLayer
from .gcn import GCN, GCNLayer
from .ggcn import GGCN, GGCNLayer
from .graphsage import GraphSAGEPool, GraphSAGEPoolLayer
from .trainer import Trainer, TrainingConfig, TrainingHistory, evaluate_accuracy

__all__ = [
    "GNNLayer",
    "GNNModel",
    "apply_linear",
    "create_model",
    "register_model",
    "available_models",
    "GCN",
    "GCNLayer",
    "GraphSAGEPool",
    "GraphSAGEPoolLayer",
    "GGCN",
    "GGCNLayer",
    "GAT",
    "GATHead",
    "GATLayer",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "evaluate_accuracy",
]
