"""Mini-batch training / evaluation loop for the GNN model zoo.

Reproduces the training setup of Section III-B: GraphSAGE-style neighbour
sampling (S1 = 25, S2 = 10 in the paper; configurable here), Adam, softmax
cross-entropy on the seed nodes, and accuracy evaluation on a held-out split.
The same trainer handles dense and block-circulant models, which is what the
Table III accuracy study sweeps over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..graph.graph import Graph
from ..graph.sampling import NeighborSampler, minibatch_iterator
from ..nn.optim import Adam, Optimizer
from ..tensor import functional as F
from ..tensor.tensor import no_grad
from .base import GNNModel

__all__ = [
    "TrainingConfig",
    "TrainingHistory",
    "Trainer",
    "evaluate_accuracy",
    "InferenceComparison",
    "compare_inference_modes",
]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of a node-classification training run.

    ``eval_mode`` selects how validation/test accuracy is computed:
    ``"sampled"`` replays the training-time neighbour sampling per seed batch;
    ``"full"`` runs full-graph layer-wise inference
    (:meth:`repro.models.base.GNNModel.full_forward`), which computes every
    intermediate representation exactly once and is both deterministic and
    much faster on graphs that fit in memory.
    """

    epochs: int = 5
    batch_size: int = 64
    learning_rate: float = 0.01
    weight_decay: float = 0.0
    fanouts: Sequence[int] = (10, 5)
    seed: int = 0
    eval_mode: str = "sampled"

    def __post_init__(self) -> None:
        if self.eval_mode not in ("sampled", "full"):
            raise ValueError(f"eval_mode must be 'sampled' or 'full', got {self.eval_mode!r}")


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy curves recorded by :class:`Trainer`."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)

    @property
    def best_val_accuracy(self) -> float:
        return max(self.val_accuracy) if self.val_accuracy else float("nan")

    @property
    def final_train_loss(self) -> float:
        return self.train_loss[-1] if self.train_loss else float("nan")


def evaluate_accuracy(
    model: GNNModel,
    graph: Graph,
    nodes: Sequence[int],
    fanouts: Optional[Sequence[int]] = None,
    batch_size: int = 256,
    seed: int = 0,
    mode: str = "sampled",
) -> float:
    """Inference accuracy of ``model`` on ``nodes``.

    ``mode="sampled"`` replays GraphSAGE-style neighbour sampling per seed
    batch (``fanouts`` required).  ``mode="full"`` propagates **all** node
    representations one layer at a time (:meth:`GNNModel.full_forward`), so
    shared neighbourhoods are computed once instead of once per batch.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(nodes) == 0:
        return float("nan")
    was_training = model.training
    if mode == "full":
        model.eval()
        try:
            logits = model.full_forward(graph)
        finally:
            model.train(was_training)
        predictions = logits.data[nodes].argmax(axis=-1)
        return float((predictions == graph.labels[nodes]).mean())
    if mode != "sampled":
        raise ValueError(f"mode must be 'sampled' or 'full', got {mode!r}")
    if fanouts is None:
        raise ValueError("fanouts are required for sampled evaluation")
    sampler = NeighborSampler(graph, fanouts, seed=seed)
    model.eval()
    correct = 0
    try:
        with no_grad():
            for batch in minibatch_iterator(sampler, nodes, batch_size, shuffle=False):
                logits = model.forward(batch, graph=graph)
                predictions = logits.data.argmax(axis=-1)
                correct += int((predictions == batch.labels(graph)).sum())
    finally:
        model.train(was_training)
    return correct / len(nodes)


@dataclass(frozen=True)
class InferenceComparison:
    """Accuracy and wall-clock of sampled vs. full-graph inference."""

    sampled_accuracy: float
    full_accuracy: float
    sampled_seconds: float
    full_seconds: float

    @property
    def speedup(self) -> float:
        return self.sampled_seconds / max(self.full_seconds, 1e-12)

    @property
    def accuracy_difference(self) -> float:
        return abs(self.sampled_accuracy - self.full_accuracy)


def compare_inference_modes(
    model: GNNModel,
    graph: Graph,
    fanouts: Sequence[int],
    nodes: Optional[Sequence[int]] = None,
    batch_size: int = 256,
    seed: int = 0,
    repeats: int = 1,
) -> InferenceComparison:
    """Time :func:`evaluate_accuracy` in both modes on the same node set.

    ``nodes`` defaults to the graph's test split; ``repeats`` takes the best
    of several timed runs (the accuracies themselves are deterministic given
    ``seed``).  Shared by the ``eval-bench`` CLI command, the examples and
    the kernel benchmarks.
    """
    if nodes is None:
        _, _, nodes = graph.split_nodes()

    def timed(evaluate) -> tuple:
        best = float("inf")
        accuracy = float("nan")
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            accuracy = evaluate()
            best = min(best, time.perf_counter() - start)
        return accuracy, best

    sampled, sampled_seconds = timed(
        lambda: evaluate_accuracy(model, graph, nodes, fanouts, batch_size=batch_size, seed=seed)
    )
    full, full_seconds = timed(lambda: evaluate_accuracy(model, graph, nodes, mode="full"))
    return InferenceComparison(
        sampled_accuracy=sampled,
        full_accuracy=full,
        sampled_seconds=sampled_seconds,
        full_seconds=full_seconds,
    )


class Trainer:
    """Trains a :class:`GNNModel` on one graph with neighbour sampling."""

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config: Optional[TrainingConfig] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config if config is not None else TrainingConfig()
        if len(self.config.fanouts) != model.num_layers:
            raise ValueError(
                f"fanouts {tuple(self.config.fanouts)} must provide one sample size per layer "
                f"({model.num_layers})"
            )
        self.optimizer = optimizer if optimizer is not None else Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        self.sampler = NeighborSampler(graph, self.config.fanouts, seed=self.config.seed)
        self.history = TrainingHistory()

    def train_epoch(self, epoch: int = 0) -> float:
        """Run one epoch over the training nodes; return the mean loss."""
        train_nodes, _, _ = self.graph.split_nodes()
        if len(train_nodes) == 0:
            raise RuntimeError("graph has no training nodes")
        losses: List[float] = []
        correct = 0
        for batch in minibatch_iterator(
            self.sampler,
            train_nodes,
            self.config.batch_size,
            shuffle=True,
            seed=self.config.seed + epoch,
        ):
            logits = self.model.forward(batch, graph=self.graph)
            labels = batch.labels(self.graph)
            loss = F.cross_entropy(logits, labels)
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()
            losses.append(loss.item())
            correct += int((logits.data.argmax(axis=-1) == labels).sum())
        mean_loss = float(np.mean(losses))
        self.history.train_loss.append(mean_loss)
        self.history.train_accuracy.append(correct / len(train_nodes))
        return mean_loss

    def fit(self, verbose: bool = False) -> TrainingHistory:
        """Train for ``config.epochs`` epochs, tracking validation accuracy."""
        _, val_nodes, _ = self.graph.split_nodes()
        for epoch in range(self.config.epochs):
            loss = self.train_epoch(epoch)
            val_acc = evaluate_accuracy(
                self.model,
                self.graph,
                val_nodes,
                self.config.fanouts,
                batch_size=max(self.config.batch_size, 128),
                seed=self.config.seed,
                mode=self.config.eval_mode,
            )
            self.history.val_accuracy.append(val_acc)
            if verbose:  # pragma: no cover - console output only
                print(
                    f"epoch {epoch + 1:3d}/{self.config.epochs}  "
                    f"loss {loss:.4f}  train acc {self.history.train_accuracy[-1]:.3f}  "
                    f"val acc {val_acc:.3f}"
                )
        return self.history

    def test_accuracy(self) -> float:
        """Accuracy on the held-out test split."""
        _, _, test_nodes = self.graph.split_nodes()
        return evaluate_accuracy(
            self.model,
            self.graph,
            test_nodes,
            self.config.fanouts,
            batch_size=max(self.config.batch_size, 128),
            seed=self.config.seed,
            mode=self.config.eval_mode,
        )
