"""Graph Attention Network (Velickovic et al.) — Table I, row 4.

Aggregation: attention coefficients
``alpha_ij = softmax_j(LeakyReLU(a^T [W h_i || W h_j]))`` computed over the
sampled neighbourhood, then ``a_v = sum_j alpha_ij h_j``.  Combination:
``ELU(W^k a_v^k)``.  Multi-head attention concatenates the per-head outputs
(the paper profiles GAT with two 128-dimensional heads).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..compression.compress import CompressionConfig
from ..graph.sampling import SampledBlock
from ..nn.module import Module, Parameter
from ..tensor import functional as F
from ..tensor.tensor import Tensor, concatenate
from .base import (
    GNNLayer,
    GNNModel,
    apply_linear,
    edge_destinations,
    emit_restricted,
    register_model,
    segment_reduce,
    stage_scope,
)

__all__ = ["GATHead", "GATLayer", "GAT"]


class GATHead(Module):
    """One attention head: shared projection + additive attention + weighted sum."""

    def __init__(
        self,
        in_features: int,
        head_features: int,
        compression: CompressionConfig,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.head_features = head_features
        self.negative_slope = negative_slope
        # The shared projection W is both the attention input and the
        # combination matrix of Table I; it is eligible for compression in
        # either phase, and the paper counts it with the aggregation FLOPs.
        self.project = compression.linear(in_features, head_features, phase="aggregation", rng=generator)
        self.project.phase = "aggregation"
        scale = float(np.sqrt(2.0 / (head_features + 1)))
        self.attention_self = Parameter(generator.normal(0.0, scale, size=head_features))
        self.attention_neighbor = Parameter(generator.normal(0.0, scale, size=head_features))

    def forward(self, h_self: Tensor, h_neigh: Tensor) -> Tensor:
        """Return the attention-weighted neighbour projection ``(D, head_features)``."""
        num_dst, fanout = h_neigh.shape[0], h_neigh.shape[1]
        z_self = apply_linear(self.project, h_self)                     # (D, H)
        z_neigh = apply_linear(self.project, h_neigh)                   # (D, S, H)
        # Additive attention a^T [z_i || z_j] decomposes into two dot products.
        logit_self = (z_self * self.attention_self).sum(axis=1)         # (D,)
        logit_neigh = (z_neigh * self.attention_neighbor).sum(axis=2)   # (D, S)
        logits = (logit_neigh + logit_self.reshape(num_dst, 1)).leaky_relu(self.negative_slope)
        attention = F.softmax(logits, axis=1)                           # (D, S)
        weighted = z_neigh * attention.reshape(num_dst, fanout, 1)
        return weighted.sum(axis=1)                                     # (D, H)

    def forward_full(self, h: Tensor, graph, dst: Optional[np.ndarray] = None) -> Tensor:
        """Full-graph attention: softmax over each node's true neighbourhood.

        The shared projection and both attention dot products are computed
        once per node; the edge dimension only sees scalar logits and the
        segment-wise (numerically stabilised) softmax.  ``dst`` (the centre
        node of every CSR edge) can be passed in so multi-head layers build
        the O(E) array once instead of once per head.
        """
        z = apply_linear(self.project, h).data                          # (N, H)
        logit_self = z @ self.attention_self.data                       # (N,)
        logit_neigh = z @ self.attention_neighbor.data                  # (N,)
        src = graph.indices
        if dst is None:
            dst = edge_destinations(graph)
        logits = logit_neigh[src] + logit_self[dst]                     # (E,)
        logits = np.where(logits > 0.0, logits, self.negative_slope * logits)
        seg_max, nonempty = segment_reduce(logits[:, None], graph.indptr, np.maximum)
        exponentials = np.exp(logits - seg_max[dst, 0])
        seg_sum, _ = segment_reduce(exponentials[:, None], graph.indptr, np.add)
        attention = exponentials / seg_sum[dst, 0]                      # (E,)
        out, _ = segment_reduce(z[src] * attention[:, None], graph.indptr, np.add)
        # Isolated nodes attend to themselves (softmax over {v} is 1).
        out[~nonempty] = z[~nonempty]
        return Tensor(out)

    def forward_restricted(self, h: Tensor, restriction) -> Tensor:
        """Restricted-row attention: softmax over each row's true neighbours.

        The projection and both attention dot products cover the column set
        only; every segment reduction runs over the sliced CSR, whose per-row
        edge order matches the parent graph — same sums, same maxima.
        """
        z = apply_linear(self.project, h).data                          # (C, H)
        logit_self = z @ self.attention_self.data                       # (C,)
        logit_neigh = z @ self.attention_neighbor.data                  # (C,)
        src = restriction.col_positions
        row_positions = restriction.row_positions
        dst = restriction.edge_rows()                                   # (E,) row ordinal per edge
        logits = logit_neigh[src] + logit_self[row_positions][dst]      # (E,)
        logits = np.where(logits > 0.0, logits, self.negative_slope * logits)
        seg_max, nonempty = segment_reduce(logits[:, None], restriction.indptr, np.maximum)
        exponentials = np.exp(logits - seg_max[dst, 0])
        seg_sum, _ = segment_reduce(exponentials[:, None], restriction.indptr, np.add)
        attention = exponentials / seg_sum[dst, 0]                      # (E,)
        out, _ = segment_reduce(z[src] * attention[:, None], restriction.indptr, np.add)
        out[~nonempty] = z[row_positions[~nonempty]]
        return Tensor(out)


class GATLayer(GNNLayer):
    """One multi-head GAT layer (heads concatenated, ELU output)."""

    has_aggregation_weights = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        compression: CompressionConfig,
        num_heads: int = 2,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(in_features, out_features, compression)
        if out_features % num_heads != 0:
            raise ValueError(
                f"out_features ({out_features}) must be divisible by num_heads ({num_heads})"
            )
        self.num_heads = num_heads
        head_features = out_features // num_heads
        self.heads = [
            GATHead(in_features, head_features, compression, rng=rng) for _ in range(num_heads)
        ]
        for index, head in enumerate(self.heads):
            setattr(self, f"head_{index}", head)
        self.activation = activation

    def forward(self, h: Tensor, block: SampledBlock) -> Tensor:
        h_self = h.index_select(block.self_index)
        h_neigh = h.index_select(block.neighbor_index.reshape(-1))
        h_neigh = h_neigh.reshape(block.num_dst, block.fanout, self.in_features)
        outputs = [head(h_self, h_neigh) for head in self.heads]
        out = outputs[0] if len(outputs) == 1 else concatenate(outputs, axis=1)
        return out.elu() if self.activation else out

    def forward_full(self, h: Tensor, graph) -> Tensor:
        dst = edge_destinations(graph)
        outputs = [head.forward_full(h, graph, dst=dst) for head in self.heads]
        out = outputs[0] if len(outputs) == 1 else concatenate(outputs, axis=1)
        return out.elu() if self.activation else out

    def forward_restricted(self, h: Tensor, restriction, timer=None, out=None) -> Tensor:
        # Attention (projection included) is the aggregation phase in the
        # paper's accounting; only the head concat + ELU count as combination.
        with stage_scope(timer, "aggregation"):
            outputs = [head.forward_restricted(h, restriction) for head in self.heads]
        with stage_scope(timer, "combination"):
            result = outputs[0] if len(outputs) == 1 else concatenate(outputs, axis=1)
            return emit_restricted(result.elu() if self.activation else result, out)


@register_model("gat")
class GAT(GNNModel):
    """K-layer multi-head graph attention network."""

    name = "GAT"

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        compression: Optional[CompressionConfig] = None,
        dropout: float = 0.0,
        seed: Optional[int] = None,
        num_heads: int = 2,
    ) -> None:
        config = compression if compression is not None else CompressionConfig(block_size=1)
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        layers: List[GATLayer] = []
        for index in range(num_layers):
            is_last = index == num_layers - 1
            heads = 1 if is_last else num_heads
            layers.append(
                GATLayer(
                    dims[index],
                    dims[index + 1],
                    config,
                    num_heads=heads,
                    activation=not is_last,
                    rng=rng,
                )
            )
        super().__init__(layers, dropout=dropout, seed=seed)
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.num_classes = num_classes
        self.num_heads = num_heads
        self.compression = config
