"""Gated Graph Convolutional Network (G-GCN, Marcheggiani & Titov) — Table I, row 3.

Aggregation: per-edge sigmoid gates ``eta_u = sigma(W_H h_u + W_C h_v)``
modulate the neighbour features before summation — two weight matrices in the
aggregator, which is why G-GCN has the largest aggregation FLOP count in
Table II (3.7e12 on Reddit).  Combination: ``ReLU(W^k a_v^k)``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy.special import expit

from ..compression.compress import CompressionConfig
from ..graph.sampling import SampledBlock
from ..tensor.tensor import Tensor
from .base import (
    GNNLayer,
    GNNModel,
    apply_linear,
    edge_destinations,
    emit_restricted,
    register_model,
    segment_reduce,
    stage_scope,
)

__all__ = ["GGCNLayer", "GGCN"]


class GGCNLayer(GNNLayer):
    """One G-GCN layer: gated neighbour sum, then a dense/circulant FC."""

    has_aggregation_weights = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        compression: CompressionConfig,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(in_features, out_features, compression)
        # Gates live in the input-feature space: eta_u has one value per feature.
        self.gate_neighbor = compression.linear(in_features, in_features, phase="aggregation", rng=rng)
        self.gate_neighbor.phase = "aggregation"
        self.gate_self = compression.linear(in_features, in_features, phase="aggregation", rng=rng)
        self.gate_self.phase = "aggregation"
        self.fc = compression.linear(in_features, out_features, phase="combination", rng=rng)
        self.fc.phase = "combination"
        self.activation = activation

    def forward(self, h: Tensor, block: SampledBlock) -> Tensor:
        h_self = h.index_select(block.self_index)                                   # (D, F)
        h_neigh = h.index_select(block.neighbor_index.reshape(-1))
        h_neigh = h_neigh.reshape(block.num_dst, block.fanout, self.in_features)     # (D, S, F)
        gate_logits = apply_linear(self.gate_neighbor, h_neigh) + apply_linear(
            self.gate_self, h_self
        ).reshape(block.num_dst, 1, self.in_features)
        gates = gate_logits.sigmoid()                                                # (D, S, F)
        aggregated = (gates * h_neigh).sum(axis=1) / float(block.fanout)             # (D, F)
        out = apply_linear(self.fc, aggregated)
        return out.relu() if self.activation else out

    def forward_full(self, h: Tensor, graph) -> Tensor:
        # Both gate projections are computed once per node; the per-edge gate
        # only combines the two cached projections, so the weight matrices
        # never touch the (much larger) edge dimension.
        gate_n = apply_linear(self.gate_neighbor, h).data                            # (N, F)
        gate_s = apply_linear(self.gate_self, h).data                                # (N, F)
        features = h.data
        src = graph.indices                                                          # (E,) neighbour u per edge
        degrees = np.diff(graph.indptr)
        dst = edge_destinations(graph)                                               # (E,) centre node v
        gates = expit(gate_n[src] + gate_s[dst])                                     # (E, F)
        summed, nonempty = segment_reduce(gates * features[src], graph.indptr, np.add)
        aggregated = summed / np.maximum(degrees, 1)[:, None]
        if not nonempty.all():
            # Sampler fallback: isolated nodes gate and aggregate themselves.
            isolated = ~nonempty
            aggregated[isolated] = expit(gate_n[isolated] + gate_s[isolated]) * features[isolated]
        out = apply_linear(self.fc, Tensor(aggregated))
        return out.relu() if self.activation else out

    def forward_restricted(self, h: Tensor, restriction, timer=None, out=None) -> Tensor:
        with stage_scope(timer, "aggregation"):
            # Both gate projections over the column set only; the sliced edge
            # dimension combines the cached projections exactly as the
            # full-graph path does (same edge order, same per-row segments).
            gate_n = apply_linear(self.gate_neighbor, h).data                         # (C, F)
            gate_s = apply_linear(self.gate_self, h).data                             # (C, F)
            features = h.data
            src = restriction.col_positions                                           # (E,) neighbour u
            row_positions = restriction.row_positions
            dst = row_positions[restriction.edge_rows()]                              # (E,) centre v
            gates = expit(gate_n[src] + gate_s[dst])                                  # (E, F)
            summed, nonempty = segment_reduce(gates * features[src], restriction.indptr, np.add)
            aggregated = summed / np.maximum(restriction.row_degrees(), 1)[:, None]
            if not nonempty.all():
                isolated = ~nonempty
                own = row_positions[isolated]
                aggregated[isolated] = expit(gate_n[own] + gate_s[own]) * features[own]
        with stage_scope(timer, "combination"):
            result = apply_linear(self.fc, Tensor(aggregated))
            return emit_restricted(result.relu() if self.activation else result, out)


@register_model("ggcn")
class GGCN(GNNModel):
    """K-layer gated GCN."""

    name = "G-GCN"

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        compression: Optional[CompressionConfig] = None,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        config = compression if compression is not None else CompressionConfig(block_size=1)
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        layers: List[GGCNLayer] = []
        for index in range(num_layers):
            layers.append(
                GGCNLayer(
                    dims[index],
                    dims[index + 1],
                    config,
                    activation=index < num_layers - 1,
                    rng=rng,
                )
            )
        super().__init__(layers, dropout=dropout, seed=seed)
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.num_classes = num_classes
        self.compression = config
