"""Graph Convolutional Network (Kipf & Welling) — Table I, row 1.

Aggregation: degree-normalised sum of neighbour features (no weight matrix,
hence low arithmetic intensity in Table II).  Combination:
``ReLU(W^k a_v^k)``.  Under neighbour sampling the degree-normalised sum is
approximated by the mean over the sampled neighbourhood plus the node itself,
as in the inductive GraphSAGE-GCN formulation.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..compression.compress import CompressionConfig
from ..graph.sampling import SampledBlock
from ..tensor.tensor import Tensor
from .base import GNNLayer, GNNModel, apply_linear, emit_restricted, register_model, stage_scope

__all__ = ["GCNLayer", "GCN"]


class GCNLayer(GNNLayer):
    """One GCN layer: mean-aggregate sampled neighbours, then a dense/circulant FC."""

    has_aggregation_weights = False

    def __init__(
        self,
        in_features: int,
        out_features: int,
        compression: CompressionConfig,
        activation: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(in_features, out_features, compression)
        self.fc = compression.linear(in_features, out_features, phase="combination", rng=rng)
        self.fc.phase = "combination"
        self.activation = activation

    def forward(self, h: Tensor, block: SampledBlock) -> Tensor:
        h_self = h.index_select(block.self_index)                 # (D, F)
        h_neigh = h.index_select(block.neighbor_index.reshape(-1))
        h_neigh = h_neigh.reshape(block.num_dst, block.fanout, self.in_features)
        # Degree-normalised sum approximated by the sampled-neighbourhood mean
        # (neighbours and the node itself), cf. GraphSAGE's GCN aggregator.
        aggregated = (h_neigh.sum(axis=1) + h_self) / float(block.fanout + 1)
        out = apply_linear(self.fc, aggregated)
        return out.relu() if self.activation else out

    def forward_full(self, h: Tensor, graph) -> Tensor:
        # Full-graph limit of the sampled mean: one CSR SpMM with the
        # self-loop row-normalised operator D̂^{-1} (A + I).
        operator = graph.random_walk_adjacency(add_self_loops=True)
        aggregated = Tensor(operator @ h.data)
        out = apply_linear(self.fc, aggregated)
        return out.relu() if self.activation else out

    def prepare_full(self, graph) -> None:
        graph.random_walk_adjacency(add_self_loops=True)

    def forward_restricted(self, h: Tensor, restriction, timer=None, out=None) -> Tensor:
        with stage_scope(timer, "aggregation"):
            # Restricted SpMM: the requested rows of the frozen operator,
            # columns remapped into the batch-local index space.
            operator = restriction.operator("random_walk", add_self_loops=True)
            aggregated = Tensor(operator @ h.data)
        with stage_scope(timer, "combination"):
            result = apply_linear(self.fc, aggregated)
            return emit_restricted(result.relu() if self.activation else result, out)


@register_model("gcn")
class GCN(GNNModel):
    """K-layer GCN for node classification."""

    name = "GCN"

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_classes: int,
        num_layers: int = 2,
        compression: Optional[CompressionConfig] = None,
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        config = compression if compression is not None else CompressionConfig(block_size=1)
        rng = np.random.default_rng(seed)
        dims = [in_features] + [hidden_features] * (num_layers - 1) + [num_classes]
        layers: List[GCNLayer] = []
        for index in range(num_layers):
            layers.append(
                GCNLayer(
                    dims[index],
                    dims[index + 1],
                    config,
                    activation=index < num_layers - 1,
                    rng=rng,
                )
            )
        super().__init__(layers, dropout=dropout, seed=seed)
        self.in_features = in_features
        self.hidden_features = hidden_features
        self.num_classes = num_classes
        self.compression = config
