"""Shared infrastructure for the four GNN variants of Table I.

Every model is a stack of :class:`GNNLayer` objects operating on sampled
mini-batches (:class:`repro.graph.sampling.MiniBatch`).  A layer receives the
previous layer's node representations and a :class:`SampledBlock` describing
which rows are the targets and which rows are their sampled neighbours, and
produces the targets' new representations — the Aggregate / Combine pattern
of Equations (1)–(2) in the paper.

Layers create their weight matrices through a
:class:`repro.compression.CompressionConfig`, so a single flag switches the
whole model between dense and block-circulant weights, and between
compressing the aggregation phase, the combination phase, or both
(the Section V ablation).
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Type

import numpy as np

from ..compression.compress import CompressionConfig
from ..graph.graph import Graph
from ..graph.sampling import MiniBatch, SampledBlock
from ..nn.dropout import Dropout
from ..nn.module import Module
from ..tensor.tensor import Tensor

__all__ = [
    "GNNLayer",
    "GNNModel",
    "register_model",
    "create_model",
    "available_models",
    "apply_linear",
    "segment_reduce",
    "edge_destinations",
    "stage_scope",
    "emit_restricted",
]


def stage_scope(timer, name: str):
    """``timer.stage(name)`` when a stage timer is supplied, else a no-op scope.

    Keeps the layers free of any dependency on the serving package: a timer
    is whatever exposes ``stage(name) -> context manager``.  The serving
    :class:`~repro.serving.StageTimer` returns a *cached* scope per stage
    name (and, when telemetry is on, mirrors each exit into a labelled
    latency histogram), so entering a scope here allocates nothing on the
    hot path.
    """
    return timer.stage(name) if timer is not None else contextlib.nullcontext()


def emit_restricted(result: Tensor, out) -> Tensor:
    """Deliver a layer's freshly computed restricted rows.

    ``out`` is either ``None`` (plain return) or an ``(buffer, positions)``
    pair: the caller's assembly buffer for the layer's full needed set, whose
    *other* rows already hold pre-gathered cache and halo hits.  The computed
    rows are scattered into ``buffer[positions]`` here — inside the layer's
    timed scope — so the caller assembles the layer output without a second
    pass.  The computed rows are returned either way (the serving worker also
    feeds them to the embedding cache and the halo tier).
    """
    if out is not None:
        buffer, positions = out
        buffer[positions] = result.data
    return result


def apply_linear(layer: Module, x: Tensor) -> Tensor:
    """Apply a (possibly block-circulant) linear layer to an N-D tensor.

    The circulant kernel operates on ``(batch, features)`` inputs, so inputs
    with extra leading dimensions (e.g. ``(num_dst, fanout, features)``
    neighbour tensors) are flattened and restored around the call.
    """
    if x.ndim <= 2:
        return layer(x)
    leading = x.shape[:-1]
    flat = x.reshape(int(np.prod(leading)), x.shape[-1])
    out = layer(flat)
    return out.reshape(*leading, out.shape[-1])


def segment_reduce(values: np.ndarray, indptr: np.ndarray, ufunc: np.ufunc):
    """Reduce per-edge ``values`` into per-node rows along CSR segments.

    ``values`` is ``(num_edges, ...)`` in CSR edge order; segment ``i`` spans
    ``indptr[i]:indptr[i + 1]``.  Returns ``(out, nonempty)`` where ``out`` is
    ``(num_nodes, ...)`` and ``nonempty`` marks nodes with at least one edge —
    empty segments are left as zeros and must be filled by the caller (the
    models mirror the sampler's self-loop fallback for isolated nodes).

    Built on ``ufunc.reduceat``: empty segments are *filtered out first*
    because ``reduceat`` mis-handles zero-width slices; the remaining starts
    still tile ``[0, num_edges)`` exactly, so one vectorised call covers every
    connected node.
    """
    indptr = np.asarray(indptr)
    lengths = np.diff(indptr)
    nonempty = lengths > 0
    out = np.zeros((len(lengths),) + values.shape[1:], dtype=np.float64)
    if nonempty.any():
        starts = indptr[:-1][nonempty].astype(np.intp)
        out[nonempty] = ufunc.reduceat(values, starts, axis=0)
    return out, nonempty


def edge_destinations(graph: Graph) -> np.ndarray:
    """Centre node ``v`` of every CSR edge ``(v, u)``, in edge order.

    The ``(num_edges,)`` companion of ``graph.indices`` (which holds the
    neighbours ``u``): per-edge gathers in the full-graph layers index
    node-level arrays with it before a :func:`segment_reduce`.  Memoised on
    the graph (alongside its propagation operators) and returned read-only,
    since the adjacency structure is immutable.
    """
    key = ("edge_destinations",)
    if key not in graph._operator_cache:
        dst = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
        dst.flags.writeable = False
        graph._operator_cache[key] = dst
    return graph._operator_cache[key]


class GNNLayer(Module):
    """One Aggregate + Combine layer.

    Sub-classes implement :meth:`forward` taking the previous representations
    ``h`` (``(num_src, in_features)``) and the :class:`SampledBlock` of this
    layer, and returning ``(num_dst, out_features)``.

    Sub-classes additionally implement :meth:`forward_full`, the *full-graph*
    variant used by layer-wise inference: it takes the representations of
    **all** nodes and the :class:`~repro.graph.graph.Graph`, aggregates over
    every true neighbour (CSR SpMM / segment reductions instead of sampled
    fancy indexing) and returns all nodes' new representations.

    :meth:`forward_restricted` is the serving fast-path variant: it computes
    the same outputs as :meth:`forward_full`, but only for the rows of a
    :class:`~repro.graph.restriction.Restriction`, reading inputs for the
    restriction's column set — no induced subgraph, no re-normalisation, no
    work on rows nobody asked for.  :meth:`prepare_full` warms the frozen
    graph's operator caches so the first request does not pay normalisation.
    """

    #: set by sub-classes: does this layer contain weight matrices in its aggregator?
    has_aggregation_weights: bool = False

    def __init__(self, in_features: int, out_features: int, compression: CompressionConfig) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.compression = compression

    def forward(self, h: Tensor, block: SampledBlock) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def forward_full(self, h: Tensor, graph: Graph) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError

    def forward_restricted(self, h: Tensor, restriction, timer=None, out=None) -> Tensor:  # pragma: no cover
        """Outputs of :meth:`forward_full` for ``restriction.rows`` only.

        ``h`` holds the previous representations of ``restriction.cols`` (in
        column order).  ``timer``, when given, is a
        :class:`~repro.serving.timing.StageTimer`-like object whose
        ``stage("aggregation")`` / ``stage("combination")`` context managers
        attribute the layer's time to the serving breakdown.  ``out``, when
        given, is the serving worker's ``(buffer, positions)`` assembly pair
        — the buffer's other rows hold pre-gathered cache/halo hits and the
        layer scatters its computed rows into ``buffer[positions]`` via
        :func:`emit_restricted` before returning them.
        """
        raise NotImplementedError

    def prepare_full(self, graph: Graph) -> None:
        """Precompute the frozen-graph operators this layer's inference uses.

        Called once per shard at server build ("shard operator plans"), so no
        flush ever pays adjacency normalisation.  Default: nothing to warm.
        """


class GNNModel(Module):
    """A K-layer GNN for node classification on sampled mini-batches."""

    def __init__(
        self,
        layers: List[GNNLayer],
        dropout: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not layers:
            raise ValueError("a GNN model needs at least one layer")
        self.layers = layers
        for index, layer in enumerate(layers):
            setattr(self, f"layer_{index}", layer)
        self.dropout = Dropout(dropout, seed=seed) if dropout > 0 else None

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def forward(self, batch: MiniBatch, features: Optional[np.ndarray] = None, graph: Optional[Graph] = None) -> Tensor:
        """Compute logits for the batch's seed nodes.

        ``features`` may be passed directly (raw features of
        ``batch.input_nodes()``); otherwise they are gathered from ``graph``.
        """
        if len(batch.blocks) != len(self.layers):
            raise ValueError(
                f"mini-batch has {len(batch.blocks)} blocks but the model has {len(self.layers)} layers"
            )
        if features is None:
            if graph is None:
                raise ValueError("either features or graph must be provided")
            features = batch.input_features(graph)
        h = Tensor(np.asarray(features, dtype=np.float64))
        for index, (layer, block) in enumerate(zip(self.layers, batch.blocks)):
            if self.dropout is not None and index > 0:
                h = self.dropout(h)
            h = layer(h, block)
        return h

    def predict(self, batch: MiniBatch, graph: Graph) -> np.ndarray:
        """Arg-max class predictions for the batch's seed nodes (no autograd)."""
        from ..tensor.tensor import no_grad

        with no_grad():
            logits = self.forward(batch, graph=graph)
        return logits.data.argmax(axis=-1)

    def full_forward(self, graph: Graph, features: Optional[np.ndarray] = None) -> Tensor:
        """Full-graph layer-wise inference: logits for **every** node.

        Instead of building one sampled computation tree per seed batch — which
        recomputes shared neighbourhood representations over and over — each
        layer propagates all node representations at once through the true
        adjacency, so every intermediate representation is computed exactly
        once (the spectral-domain-reuse strategy of CirCNN / the
        caching-oriented inference engines surveyed in PAPERS.md).

        Inference-only: runs without autograd and skips dropout.  Returns a
        ``(num_nodes, num_classes)`` logits tensor.
        """
        from ..tensor.tensor import no_grad

        data = graph.features if features is None else features
        h = Tensor(np.asarray(data, dtype=np.float64))
        if h.shape[0] != graph.num_nodes:
            raise ValueError(
                f"features have {h.shape[0]} rows but the graph has {graph.num_nodes} nodes"
            )
        with no_grad():
            for layer in self.layers:
                h = layer.forward_full(h, graph)
        return h

    def predict_full(self, graph: Graph) -> np.ndarray:
        """Arg-max class predictions for all nodes via :meth:`full_forward`."""
        return self.full_forward(graph).data.argmax(axis=-1)


# ---------------------------------------------------------------------------
# Model registry
# ---------------------------------------------------------------------------

_MODEL_REGISTRY: Dict[str, Type["GNNModel"]] = {}

#: Canonical names used throughout the paper's tables and figures.
MODEL_ALIASES = {
    "gcn": "gcn",
    "gs-pool": "gs_pool",
    "gspool": "gs_pool",
    "gs_pool": "gs_pool",
    "graphsage": "gs_pool",
    "g-gcn": "ggcn",
    "ggcn": "ggcn",
    "gat": "gat",
}


def register_model(name: str):
    """Class decorator registering a GNN model under ``name``."""

    def decorator(cls: Type[GNNModel]) -> Type[GNNModel]:
        _MODEL_REGISTRY[name] = cls
        return cls

    return decorator


def available_models() -> List[str]:
    """Names of all registered GNN variants."""
    return sorted(_MODEL_REGISTRY)


def create_model(
    name: str,
    in_features: int,
    hidden_features: int,
    num_classes: int,
    num_layers: int = 2,
    compression: Optional[CompressionConfig] = None,
    dropout: float = 0.0,
    seed: Optional[int] = None,
    **kwargs,
) -> GNNModel:
    """Build one of the paper's GNN variants by name.

    ``name`` accepts the spellings used in the paper ("GCN", "GS-Pool",
    "G-GCN", "GAT") case-insensitively.
    """
    key = MODEL_ALIASES.get(name.lower())
    if key is None or key not in _MODEL_REGISTRY:
        raise KeyError(f"unknown model '{name}'; known: GCN, GS-Pool, G-GCN, GAT")
    config = compression if compression is not None else CompressionConfig(block_size=1)
    cls = _MODEL_REGISTRY[key]
    return cls(
        in_features=in_features,
        hidden_features=hidden_features,
        num_classes=num_classes,
        num_layers=num_layers,
        compression=config,
        dropout=dropout,
        seed=seed,
        **kwargs,
    )
