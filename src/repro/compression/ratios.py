"""Compression-ratio formulas reported in Table III of the paper.

Two headline numbers are attached to a block size ``n``:

* **SR (Storage Reduction)** — only the first row/column of each ``n x n``
  block is stored, so storage shrinks by a factor of ``n``.
* **TCR (Theoretical Computation Reduction)** — an ``O(n^2)`` block mat-vec is
  replaced by ``O(n log n)`` FFT work, giving ``n / log2(n)``.  This matches
  the paper's Table III values: 4.0x (n=16), 6.4x (n=32), 10.7x (n=64),
  18.3x (n=128), and 1.0x for the uncompressed ``n = 1`` case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from .circulant import BlockCirculantSpec

__all__ = [
    "storage_reduction",
    "theoretical_computation_reduction",
    "CompressionSummary",
    "summarize_block_sizes",
    "layer_storage_reduction",
    "layer_computation_reduction",
]


def storage_reduction(block_size: int) -> float:
    """Storage reduction SR = n (1.0 for the uncompressed n=1 case)."""
    if block_size < 1:
        raise ValueError("block size must be >= 1")
    return float(block_size)


def theoretical_computation_reduction(block_size: int) -> float:
    """Theoretical computation reduction TCR = n / log2(n) (1.0 when n <= 2)."""
    if block_size < 1:
        raise ValueError("block size must be >= 1")
    if block_size == 1:
        return 1.0
    return float(block_size / np.log2(block_size))


def layer_storage_reduction(spec: BlockCirculantSpec) -> float:
    """Exact storage reduction of one layer, accounting for zero padding."""
    return spec.dense_parameters / spec.circulant_parameters


def layer_computation_reduction(spec: BlockCirculantSpec, use_rfft: bool = False) -> float:
    """Exact FLOP reduction of one layer's mat-vec, accounting for padding."""
    from .spectral import block_circulant_operation_count, dense_operation_count

    dense = dense_operation_count(spec.out_features, spec.in_features)
    compressed = block_circulant_operation_count(spec, use_rfft=use_rfft)
    return dense / compressed


@dataclass(frozen=True)
class CompressionSummary:
    """One row of Table III (ratios only; accuracy comes from training runs)."""

    block_size: int
    theoretical_computation_reduction: float
    storage_reduction: float


def summarize_block_sizes(block_sizes: Iterable[int]) -> List[CompressionSummary]:
    """Build the TCR / SR columns of Table III for the given block sizes."""
    return [
        CompressionSummary(
            block_size=n,
            theoretical_computation_reduction=theoretical_computation_reduction(n),
            storage_reduction=storage_reduction(n),
        )
        for n in block_sizes
    ]
