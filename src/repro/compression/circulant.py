"""Block-circulant matrix construction, expansion and projection.

A block-circulant weight matrix ``W`` of shape ``(N, M)`` is partitioned into
``p x q`` circulant blocks of size ``n x n`` with ``p = ceil(N / n)`` and
``q = ceil(M / n)`` (zero padding is used when ``N`` or ``M`` is not divisible
by ``n``).  Each block is fully described by a single length-``n`` defining
vector, so the whole matrix is stored as a ``(p, q, n)`` array.

Convention
----------
We use the *first-column* convention: a circulant block built from defining
vector ``w`` is ``C[r, c] = w[(r - c) mod n]``, so that ``C @ h`` equals the
circular convolution ``IFFT(FFT(w) * FFT(h))`` — exactly the compute path in
Figure 2 / Algorithm 1 of the paper.  (The paper's figure draws the
transposed, first-row indexing; because the defining vectors are *learned*,
the two conventions parameterise the same family of matrices and are
interchangeable.  ``circulant_from_first_row`` is provided for completeness.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "BlockCirculantSpec",
    "circulant_from_first_column",
    "circulant_from_first_row",
    "expand_block_circulant",
    "project_to_block_circulant",
    "random_block_circulant",
    "pad_to_multiple",
    "num_blocks",
]


@dataclass(frozen=True)
class BlockCirculantSpec:
    """Shape bookkeeping for a block-circulant matrix.

    Attributes
    ----------
    out_features, in_features:
        Logical (unpadded) dimensions ``N`` and ``M`` of the weight matrix.
    block_size:
        Circulant block size ``n``.
    """

    out_features: int
    in_features: int
    block_size: int

    def __post_init__(self) -> None:
        if self.out_features <= 0 or self.in_features <= 0:
            raise ValueError("matrix dimensions must be positive")
        if self.block_size <= 0:
            raise ValueError("block size must be positive")

    @property
    def p(self) -> int:
        """Number of block rows (``ceil(N / n)``)."""
        return -(-self.out_features // self.block_size)

    @property
    def q(self) -> int:
        """Number of block columns (``ceil(M / n)``)."""
        return -(-self.in_features // self.block_size)

    @property
    def padded_out(self) -> int:
        return self.p * self.block_size

    @property
    def padded_in(self) -> int:
        return self.q * self.block_size

    @property
    def dense_parameters(self) -> int:
        """Parameter count of the equivalent uncompressed matrix."""
        return self.out_features * self.in_features

    @property
    def circulant_parameters(self) -> int:
        """Parameter count of the block-circulant representation."""
        return self.p * self.q * self.block_size

    def weight_shape(self) -> Tuple[int, int, int]:
        """Shape of the defining-vector array ``(p, q, n)``."""
        return (self.p, self.q, self.block_size)


def num_blocks(dimension: int, block_size: int) -> int:
    """Number of blocks needed to cover ``dimension`` with ``block_size`` blocks."""
    if dimension <= 0 or block_size <= 0:
        raise ValueError("dimension and block size must be positive")
    return -(-dimension // block_size)


def pad_to_multiple(array: np.ndarray, block_size: int, axis: int = -1) -> np.ndarray:
    """Zero-pad ``array`` along ``axis`` so its length is a multiple of ``block_size``."""
    length = array.shape[axis]
    target = num_blocks(length, block_size) * block_size
    if target == length:
        return array
    pad_width = [(0, 0)] * array.ndim
    pad_width[axis] = (0, target - length)
    return np.pad(array, pad_width)


def circulant_from_first_column(column: np.ndarray) -> np.ndarray:
    """Build the ``n x n`` circulant matrix whose first column is ``column``.

    ``C[r, c] = column[(r - c) mod n]``; multiplying by ``C`` performs circular
    convolution with ``column``.
    """
    column = np.asarray(column)
    n = column.shape[-1]
    rows = np.arange(n)[:, None]
    cols = np.arange(n)[None, :]
    return column[..., (rows - cols) % n]


def circulant_from_first_row(row: np.ndarray) -> np.ndarray:
    """Build the ``n x n`` circulant matrix whose first row is ``row``.

    This is the indexing drawn in Figure 2 of the paper; it is the transpose
    of :func:`circulant_from_first_column` applied to the same vector.
    """
    return circulant_from_first_column(np.asarray(row)).swapaxes(-1, -2)


def expand_block_circulant(weights: np.ndarray, spec: BlockCirculantSpec) -> np.ndarray:
    """Expand defining vectors ``(p, q, n)`` into the dense ``(N, M)`` matrix.

    The expansion is exact (including zero-padding removal), so
    ``expand_block_circulant(w) @ x`` is the dense reference for the FFT-based
    kernels in :mod:`repro.compression.spectral`.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != spec.weight_shape():
        raise ValueError(
            f"weights shape {weights.shape} does not match spec {spec.weight_shape()}"
        )
    blocks = circulant_from_first_column(weights)  # (p, q, n, n)
    dense = blocks.transpose(0, 2, 1, 3).reshape(spec.padded_out, spec.padded_in)
    return dense[: spec.out_features, : spec.in_features]


def project_to_block_circulant(matrix: np.ndarray, block_size: int) -> Tuple[np.ndarray, BlockCirculantSpec]:
    """Project a dense matrix onto the nearest block-circulant matrix.

    For each ``n x n`` block the least-squares-optimal circulant approximation
    averages the entries along each circulant diagonal.  This is how an
    existing dense model is converted into the compressed representation (and
    how the block-circulant constraint is enforced during training when using
    projection-based training rather than direct circulant parameterisation).

    Returns the ``(p, q, n)`` defining vectors and the associated spec.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D weight matrix")
    out_features, in_features = matrix.shape
    spec = BlockCirculantSpec(out_features, in_features, block_size)
    n = spec.block_size
    padded = np.zeros((spec.padded_out, spec.padded_in), dtype=np.float64)
    padded[:out_features, :in_features] = matrix
    blocks = padded.reshape(spec.p, n, spec.q, n).transpose(0, 2, 1, 3)  # (p, q, n, n)

    rows = np.arange(n)[:, None]
    cols = np.arange(n)[None, :]
    diag_index = (rows - cols) % n  # entry (r, c) belongs to defining index (r - c) mod n

    weights = np.zeros((spec.p, spec.q, n), dtype=np.float64)
    counts = np.zeros(n, dtype=np.float64)
    np.add.at(counts, diag_index.reshape(-1), 1.0)
    for index in range(n):
        mask = diag_index == index
        weights[:, :, index] = blocks[:, :, mask].sum(axis=-1) / counts[index]
    return weights, spec


def random_block_circulant(
    spec: BlockCirculantSpec,
    rng: np.random.Generator,
    scale: float | None = None,
) -> np.ndarray:
    """Sample random defining vectors with a fan-in-aware scale.

    The variance matches Glorot-style initialisation of the *equivalent dense
    matrix*: each dense entry of the expanded matrix is one of the defining
    values, so the defining vectors themselves are drawn with the same
    standard deviation a dense layer of shape ``(N, M)`` would use.
    """
    if scale is None:
        scale = float(np.sqrt(2.0 / (spec.in_features + spec.out_features)))
    return rng.normal(0.0, scale, size=spec.weight_shape())
