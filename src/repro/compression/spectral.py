"""FFT-based kernels for block-circulant matrix multiplication.

This module contains:

* :func:`block_circulant_matvec` / :func:`block_circulant_matmul` —
  NumPy reference kernels implementing Algorithm 1 of the paper, in both the
  original *spatial-accumulation* form of CirCNN (one IFFT per block) and the
  optimised *spectral-accumulation* form used by BlockGNN (accumulate in the
  frequency domain, ``p`` IFFTs total).
* :func:`block_circulant_matmul_rfft` — the real-valued FFT variant discussed
  in Section V of the paper.
* :func:`spectral_weights` — pre-computation of ``FFT(W)`` (the ``W_hat``
  stored in the accelerator's Weight Buffer).
* :func:`circulant_linear` — the autograd primitive used by
  ``repro.nn.BlockCirculantLinear``; its backward pass is derived
  analytically in the frequency domain.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

try:  # scipy's pocketfft front-end is measurably faster than numpy's for the
    # batched short transforms these kernels are built from; fall back to
    # numpy when scipy is unavailable (identical results either way).
    from scipy import fft as _fftlib

    _SUPPORTS_WORKERS = True
except ImportError:  # pragma: no cover - scipy is a hard dep of repro.graph
    from numpy import fft as _fftlib

    _SUPPORTS_WORKERS = False

from ..tensor.tensor import Tensor, ensure_tensor
from .circulant import BlockCirculantSpec, pad_to_multiple

__all__ = [
    "rfft_bins",
    "set_fft_workers",
    "get_fft_workers",
    "spectral_weights",
    "block_circulant_matvec",
    "block_circulant_matmul",
    "block_circulant_matvec_spatial",
    "block_circulant_matmul_rfft",
    "circulant_linear",
    "fft_operation_count",
    "dense_operation_count",
    "block_circulant_operation_count",
]


# ---------------------------------------------------------------------------
# Transform-backend configuration
# ---------------------------------------------------------------------------

#: Thread count handed to scipy.fft's ``workers=`` for the batched transforms
#: below.  ``None`` keeps scipy's single-threaded default — bit-identical,
#: deterministic, and what every test assumes.  Opt in per process via
#: :func:`set_fft_workers` or the ``BLOCKGNN_FFT_WORKERS`` environment
#: variable (serving: ``ServingConfig(fft_workers=...)``).  pocketfft splits
#: the *batch* axis across threads, so the per-transform results are
#: unchanged; the knob still defaults off so test timings stay comparable.
_FFT_WORKERS: Optional[int] = None


def set_fft_workers(workers: Optional[int]) -> None:
    """Set the process-wide scipy.fft ``workers=`` count (``None`` = default).

    Ignored (with no error) when the numpy fallback backend is active, which
    has no ``workers`` parameter.
    """
    global _FFT_WORKERS
    if workers is not None and workers < 1:
        raise ValueError("fft workers must be >= 1 (or None for the backend default)")
    _FFT_WORKERS = int(workers) if workers is not None else None


def get_fft_workers() -> Optional[int]:
    """The currently configured ``workers=`` count (``None`` = default)."""
    return _FFT_WORKERS


def _fft_kwargs() -> dict:
    if _FFT_WORKERS is not None and _SUPPORTS_WORKERS:
        return {"workers": _FFT_WORKERS}
    return {}


def _workers_from_env() -> Optional[int]:
    """Parse ``BLOCKGNN_FFT_WORKERS`` leniently: unset/empty/0/garbage = off.

    An environment variable must never be able to break ``import repro`` —
    the knob is opt-in, so anything that does not parse to a positive
    integer simply leaves the default in place.
    """
    raw = os.environ.get("BLOCKGNN_FFT_WORKERS", "").strip()
    try:
        workers = int(raw)
    except ValueError:
        return None
    return workers if workers >= 1 else None


if _workers_from_env() is not None:
    set_fft_workers(_workers_from_env())


# ---------------------------------------------------------------------------
# Pre-computation and reference kernels (pure NumPy, no autograd)
# ---------------------------------------------------------------------------


def rfft_bins(block_size: int) -> int:
    """Number of spectral bins of a real FFT over length-``block_size`` vectors."""
    return block_size // 2 + 1


def spectral_weights(weights: np.ndarray, use_rfft: bool = False) -> np.ndarray:
    """Pre-compute the spectral-domain weights ``FFT(W_ij)``.

    The accelerator stores these in the Weight Buffer so that only the feature
    FFTs need to be computed on-the-fly (Section III-A).  With ``use_rfft``
    only the ``n // 2 + 1`` non-redundant bins of the real-input transform are
    kept (Section V, "Use RFFT for Higher Speedup") — the defining vectors are
    real, so the remaining bins are conjugate mirrors.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 3:
        raise ValueError("expected defining vectors of shape (p, q, n)")
    if use_rfft:
        return _fftlib.rfft(weights, axis=-1, **_fft_kwargs())
    return _fftlib.fft(weights, axis=-1, **_fft_kwargs())


def _resolve_spectral(
    weights: Optional[np.ndarray],
    spec: BlockCirculantSpec,
    spectral: Optional[np.ndarray],
    use_rfft: bool,
) -> tuple:
    """Return ``(w_hat, use_rfft)``, computing ``FFT(W)`` if not supplied.

    A supplied ``spectral`` array is authoritative about the transform domain:
    ``(p, q, n)`` entries are complex-FFT spectra and ``(p, q, n // 2 + 1)``
    entries are rFFT spectra.  (For ``n <= 2`` the two coincide numerically,
    so the ambiguity is harmless.)
    """
    n = spec.block_size
    if spectral is not None:
        w_hat = np.asarray(spectral)
        if w_hat.shape[:2] != (spec.p, spec.q):
            raise ValueError(
                f"spectral weights shape {w_hat.shape} does not match spec blocks {(spec.p, spec.q)}"
            )
        if w_hat.shape[-1] == rfft_bins(n):
            return w_hat, True
        if w_hat.shape[-1] == n:
            if use_rfft:
                raise ValueError(
                    f"use_rfft=True but the supplied spectral weights are full "
                    f"{n}-bin complex-FFT spectra; pass "
                    f"spectral_weights(..., use_rfft=True) instead"
                )
            return w_hat, False
        raise ValueError(
            f"spectral weights have {w_hat.shape[-1]} bins; expected {n} (FFT) "
            f"or {rfft_bins(n)} (rFFT)"
        )
    if weights is None:
        raise ValueError("weights may only be None when precomputed spectral weights are supplied")
    return spectral_weights(weights, use_rfft=use_rfft), use_rfft


def _prepare_input(x: np.ndarray, spec: BlockCirculantSpec) -> np.ndarray:
    """Pad and reshape a batch of feature vectors to ``(batch, q, n)``."""
    x = np.asarray(x, dtype=np.float64)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[None, :]
    if x.shape[-1] != spec.in_features:
        raise ValueError(
            f"input feature dimension {x.shape[-1]} does not match spec ({spec.in_features})"
        )
    x = pad_to_multiple(x, spec.block_size, axis=-1)
    x = x.reshape(x.shape[0], spec.q, spec.block_size)
    return x


def block_circulant_matmul(
    x: np.ndarray,
    weights: Optional[np.ndarray],
    spec: BlockCirculantSpec,
    spectral: Optional[np.ndarray] = None,
    use_rfft: bool = False,
) -> np.ndarray:
    """Multiply a batch of vectors by a block-circulant matrix via FFT.

    Implements Algorithm 1 with *spectral-domain accumulation*: the per-block
    products are summed in the frequency domain and only ``p`` IFFTs are
    applied per vector (the optimisation the paper derives from the linearity
    of the IFFT).

    Parameters
    ----------
    x:
        ``(batch, M)`` or ``(M,)`` real features.
    weights:
        ``(p, q, n)`` defining vectors (first columns of each block).  May be
        ``None`` when ``spectral`` is supplied.
    spec:
        Shape bookkeeping for the matrix.
    spectral:
        Optional pre-computed ``FFT(weights)`` (see :func:`spectral_weights`),
        either complex-FFT (``(p, q, n)``) or rFFT (``(p, q, n // 2 + 1)``)
        spectra — e.g. the ``(version, W_hat)`` cache of
        :class:`repro.nn.BlockCirculantLinear` or the accelerator's Weight
        Buffer contents.  The transform domain is inferred from the bin count.
    use_rfft:
        Compute with real-input transforms over ``n // 2 + 1`` bins
        (Section V).  Ignored when ``spectral`` already fixes the domain.

    Returns
    -------
    ``(batch, N)`` (or ``(N,)`` for a single vector) real outputs.
    """
    squeeze = np.asarray(x).ndim == 1
    blocks = _prepare_input(x, spec)
    w_hat, use_rfft = _resolve_spectral(weights, spec, spectral, use_rfft)
    if use_rfft:
        x_hat = _fftlib.rfft(blocks, axis=-1, **_fft_kwargs())
    else:
        x_hat = _fftlib.fft(blocks, axis=-1, **_fft_kwargs())
    # Accumulate over the q input blocks directly in the spectral domain.
    out_hat = np.einsum("pqn,bqn->bpn", w_hat, x_hat, optimize=True)
    if use_rfft:
        out = _fftlib.irfft(out_hat, n=spec.block_size, axis=-1, **_fft_kwargs())
    else:
        out = np.real(_fftlib.ifft(out_hat, axis=-1, **_fft_kwargs()))
    out = out.reshape(out.shape[0], spec.padded_out)[:, : spec.out_features]
    return out[0] if squeeze else out


def block_circulant_matvec(
    x: np.ndarray,
    weights: Optional[np.ndarray],
    spec: BlockCirculantSpec,
    spectral: Optional[np.ndarray] = None,
    use_rfft: bool = False,
) -> np.ndarray:
    """Single-vector convenience wrapper around :func:`block_circulant_matmul`."""
    return block_circulant_matmul(np.asarray(x), weights, spec, spectral=spectral, use_rfft=use_rfft)


def block_circulant_matvec_spatial(
    x: np.ndarray,
    weights: np.ndarray,
    spec: BlockCirculantSpec,
) -> np.ndarray:
    """The original CirCNN compute flow: one IFFT per block, accumulate spatially.

    Mathematically identical to :func:`block_circulant_matmul` (the paper's
    observation that ``sum_i IFFT(v_i) == IFFT(sum_i v_i)``); kept as an
    executable reference for the equivalence tests and for counting the
    ``p * q`` vs ``p`` IFFT savings.
    """
    squeeze = np.asarray(x).ndim == 1
    blocks = _prepare_input(x, spec)
    w_hat = spectral_weights(weights)
    x_hat = _fftlib.fft(blocks, axis=-1, **_fft_kwargs())
    batch = blocks.shape[0]
    out = np.empty((batch, spec.p, spec.block_size), dtype=np.float64)
    for i in range(spec.p):
        # One (batched) IFFT per (i, j) block, vectorised over the q axis:
        # still p * q transforms per vector, preserving the kernel's role as
        # the p*q-vs-p IFFT accounting reference.
        products = w_hat[i][None, :, :] * x_hat  # (batch, q, n)
        out[:, i, :] = np.real(_fftlib.ifft(products, axis=-1, **_fft_kwargs())).sum(axis=1)
    out = out.reshape(batch, spec.padded_out)[:, : spec.out_features]
    return out[0] if squeeze else out


def block_circulant_matmul_rfft(
    x: np.ndarray,
    weights: np.ndarray,
    spec: BlockCirculantSpec,
) -> np.ndarray:
    """Real-valued FFT variant (Section V, "Use RFFT for Higher Speedup").

    GNN features are real, so only ``n/2 + 1`` spectral bins need to be
    computed and multiplied.  Produces outputs identical to the complex-FFT
    kernel while roughly halving the spectral-domain work.  Equivalent to
    :func:`block_circulant_matmul` with ``use_rfft=True``; kept as a named
    entry point for the Section V ablation.
    """
    return block_circulant_matmul(x, weights, spec, use_rfft=True)


# ---------------------------------------------------------------------------
# Autograd primitive
# ---------------------------------------------------------------------------


def circulant_linear(
    x: Tensor,
    weights: Tensor,
    spec: BlockCirculantSpec,
    use_rfft: bool = True,
    spectral: Optional[np.ndarray] = None,
) -> Tensor:
    """Differentiable block-circulant multiplication ``x @ W^T`` (batch x N).

    Forward:  ``Y_hat[b, i] = sum_j W_hat[i, j] * X_hat[b, j]``, ``y = IFFT(Y_hat)``.

    Backward (derived from the adjoint of circular convolution, using that the
    transpose of a circulant matrix is circular *correlation*):

    * ``dL/dX_hat[b, j] = sum_i conj(W_hat[i, j]) * G_hat[b, i]``
    * ``dL/dW_hat[i, j] = sum_b conj(X_hat[b, j]) * G_hat[b, i]``

    followed by an inverse transform (all spatial-domain quantities are real).

    By default the whole primitive — forward *and* both analytic gradients —
    runs on real-input transforms (``np.fft.rfft`` / ``irfft``) over the
    ``n // 2 + 1`` non-redundant bins, the Section V "Use RFFT for Higher
    Speedup" optimisation.  This is exact: every full spectrum involved
    (``W_hat``, ``X_hat``, ``G_hat`` and their bin-wise products) is Hermitian
    because the underlying signals are real, so the dropped bins carry no
    information.  Pass ``use_rfft=False`` to fall back to the complex FFT.

    ``spectral`` optionally supplies a pre-computed ``FFT(W)`` in the matching
    domain (the per-version cache of :class:`repro.nn.BlockCirculantLinear`);
    the same spectrum is reused by the backward pass, so with a warm cache a
    training step performs no weight transforms at all outside
    ``optimizer.step()``'s cache invalidation.
    """
    x = ensure_tensor(x)
    weights = ensure_tensor(weights)
    if weights.shape != spec.weight_shape():
        raise ValueError(
            f"weights shape {weights.shape} does not match spec {spec.weight_shape()}"
        )

    x_data = x.data
    squeeze = x_data.ndim == 1
    if squeeze:
        x_data = x_data[None, :]
    if x_data.shape[-1] != spec.in_features:
        raise ValueError(
            f"input feature dimension {x_data.shape[-1]} does not match spec ({spec.in_features})"
        )
    batch = x_data.shape[0]
    n = spec.block_size

    def forward_fft(values: np.ndarray, axis: int = -1) -> np.ndarray:
        if use_rfft:
            return _fftlib.rfft(values, axis=axis, **_fft_kwargs())
        return _fftlib.fft(values, axis=axis, **_fft_kwargs())

    def inverse_fft(spectrum: np.ndarray) -> np.ndarray:
        if use_rfft:
            return _fftlib.irfft(spectrum, n=n, axis=-1, **_fft_kwargs())
        return np.real(_fftlib.ifft(spectrum, axis=-1, **_fft_kwargs()))

    if spectral is not None:
        w_hat = np.asarray(spectral)
        expected_bins = rfft_bins(n) if use_rfft else n
        if w_hat.shape != (spec.p, spec.q, expected_bins):
            raise ValueError(
                f"precomputed spectral weights shape {w_hat.shape} does not match "
                f"{(spec.p, spec.q, expected_bins)} (use_rfft={use_rfft})"
            )
    else:
        w_hat = forward_fft(weights.data, axis=-1)

    padded = pad_to_multiple(x_data, n, axis=-1).reshape(batch, spec.q, n)
    x_hat = forward_fft(padded, axis=-1)
    out_hat = np.einsum("pqn,bqn->bpn", w_hat, x_hat, optimize=True)
    out = inverse_fft(out_hat).reshape(batch, spec.padded_out)
    out = out[:, : spec.out_features]
    if squeeze:
        out = out[0]

    def backward(grad: np.ndarray) -> None:
        grad_arr = np.asarray(grad, dtype=np.float64)
        if squeeze:
            grad_arr = grad_arr[None, :]
        padded_grad = np.zeros((batch, spec.padded_out), dtype=np.float64)
        padded_grad[:, : spec.out_features] = grad_arr
        g_hat = forward_fft(padded_grad.reshape(batch, spec.p, n), axis=-1)
        if x.requires_grad:
            gx_hat = np.einsum("pqn,bpn->bqn", np.conj(w_hat), g_hat, optimize=True)
            gx = inverse_fft(gx_hat).reshape(batch, spec.padded_in)
            gx = gx[:, : spec.in_features]
            x._accumulate(gx[0] if squeeze else gx)
        if weights.requires_grad:
            gw_hat = np.einsum("bqn,bpn->pqn", np.conj(x_hat), g_hat, optimize=True)
            weights._accumulate(inverse_fft(gw_hat))

    return Tensor._make(out, (x, weights), backward)


# ---------------------------------------------------------------------------
# Operation counting (used by Table II / Table III analyses)
# ---------------------------------------------------------------------------


def fft_operation_count(n: int) -> float:
    """Real-arithmetic operation count of one length-``n`` complex FFT.

    Uses the textbook radix-2 estimate ``5 n log2(n)`` real operations
    (complex butterflies cost one complex multiply + two complex adds).
    """
    if n <= 1:
        return 0.0
    return 5.0 * n * np.log2(n)


def dense_operation_count(out_features: int, in_features: int) -> float:
    """Multiply-accumulate operation count of a dense mat-vec (2 * N * M FLOPs)."""
    return 2.0 * out_features * in_features


def block_circulant_operation_count(spec: BlockCirculantSpec, use_rfft: bool = False) -> float:
    """FLOPs of one compressed mat-vec using Algorithm 1.

    ``q`` input FFTs + ``p * q`` spectral element-wise complex MACs + ``p``
    IFFTs.  With RFFT only ``n/2 + 1`` bins are processed in the MAC stage and
    the transforms cost roughly half as much.
    """
    n = spec.block_size
    transform = fft_operation_count(n)
    bins = n // 2 + 1 if use_rfft else n
    if use_rfft:
        transform *= 0.5
    mac = 8.0 * bins  # complex multiply (6) + complex add (2) per bin
    return spec.q * transform + spec.p * spec.q * mac + spec.p * transform
