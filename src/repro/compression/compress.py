"""Model-level compression API.

The paper applies block-circulant compression to the weight matrices of a
GNN's aggregation and combination phases.  Section V additionally observes
that compressing *only* the aggregators keeps the accuracy drop below 0.5%.
:class:`CompressionConfig` captures exactly that choice, and
:func:`compress_module` / :func:`compress_model` convert trained dense models
layer-by-layer using the circulant projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..nn.linear import BlockCirculantLinear, Linear
from ..nn.module import Module
from .ratios import storage_reduction, theoretical_computation_reduction

__all__ = [
    "CompressionConfig",
    "CompressionReport",
    "compress_module",
    "compress_model",
    "model_compression_report",
]


@dataclass(frozen=True)
class CompressionConfig:
    """How a GNN model should be compressed.

    Attributes
    ----------
    block_size:
        Circulant block size ``n``.  ``1`` means uncompressed (dense layers).
    compress_aggregation:
        Compress the weight matrices used inside aggregators (GS-Pool's
        pooling matrix, G-GCN's gate matrices, GAT's shared projection).
    compress_combination:
        Compress the combination (fully-connected update) matrices.
    use_rfft:
        Use the real-valued FFT kernels (Section V ablation); numerically
        identical, only the operation count differs.
    """

    block_size: int = 1
    compress_aggregation: bool = True
    compress_combination: bool = True
    use_rfft: bool = False

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block size must be >= 1")

    @property
    def enabled(self) -> bool:
        """Whether any compression is applied at all."""
        return self.block_size > 1 and (self.compress_aggregation or self.compress_combination)

    def applies_to(self, phase: str) -> bool:
        """Whether a layer belonging to ``phase`` ('aggregation'/'combination') is compressed."""
        if self.block_size <= 1:
            return False
        if phase == "aggregation":
            return self.compress_aggregation
        if phase == "combination":
            return self.compress_combination
        raise ValueError(f"unknown phase '{phase}'")

    def linear(self, in_features: int, out_features: int, phase: str, bias: bool = True, rng=None):
        """Create a dense or block-circulant layer according to this config."""
        if self.applies_to(phase):
            return BlockCirculantLinear(in_features, out_features, self.block_size, bias=bias, rng=rng)
        return Linear(in_features, out_features, bias=bias, rng=rng)

    @property
    def theoretical_computation_reduction(self) -> float:
        return theoretical_computation_reduction(self.block_size)

    @property
    def storage_reduction(self) -> float:
        return storage_reduction(self.block_size)


@dataclass
class CompressionReport:
    """Summary of converting a model: per-layer and aggregate parameter counts."""

    block_size: int
    dense_parameters: int
    compressed_parameters: int
    converted_layers: List[str] = field(default_factory=list)
    skipped_layers: List[str] = field(default_factory=list)

    @property
    def storage_reduction(self) -> float:
        if self.compressed_parameters == 0:
            return 1.0
        return self.dense_parameters / self.compressed_parameters


def _iter_linear_children(module: Module) -> Iterable[Tuple[str, Module, str, Linear]]:
    """Yield ``(path, parent, attribute, layer)`` for every dense Linear in the tree."""
    for path, owner in module.named_modules():
        for attribute, child in list(owner._modules.items()):
            if isinstance(child, Linear) and not isinstance(child, BlockCirculantLinear):
                full = f"{path}.{attribute}" if path else attribute
                yield full, owner, attribute, child


def compress_module(
    module: Module,
    block_size: int,
    skip: Optional[Iterable[str]] = None,
) -> CompressionReport:
    """Replace every dense :class:`Linear` inside ``module`` with a projected circulant layer.

    Conversion swaps layer objects in place on their parent modules, so any
    optimiser built before the conversion still references the old dense
    parameters — rebuild optimisers (or :class:`repro.models.Trainer`
    instances) after compressing if you intend to fine-tune.

    Parameters
    ----------
    module:
        Model to convert in place.
    block_size:
        Circulant block size ``n``; ``1`` leaves the model untouched.
    skip:
        Layer paths (as reported by ``named_modules``) to leave dense, e.g. a
        final classifier head.
    """
    skip_set = set(skip or ())
    report = CompressionReport(block_size=block_size, dense_parameters=0, compressed_parameters=0)
    for path, owner, attribute, layer in _iter_linear_children(module):
        dense_params = layer.weight.size + (layer.bias.size if layer.bias is not None else 0)
        if block_size <= 1 or path in skip_set:
            report.skipped_layers.append(path)
            report.dense_parameters += dense_params
            report.compressed_parameters += dense_params
            continue
        compressed = BlockCirculantLinear.from_dense(layer, block_size)
        setattr(owner, attribute, compressed)
        report.converted_layers.append(path)
        report.dense_parameters += dense_params
        report.compressed_parameters += compressed.weight.size + (
            compressed.bias.size if compressed.bias is not None else 0
        )
    return report


def compress_model(model: Module, config: CompressionConfig) -> CompressionReport:
    """Compress a GNN model according to ``config``.

    Models from :mod:`repro.models` tag their layers with a ``phase``
    attribute (``"aggregation"`` or ``"combination"``); layers whose phase is
    excluded by the config are skipped.  Models without phase tags are treated
    as combination-only (the GCN case).
    """
    skip: List[str] = []
    for path, module in model.named_modules():
        phase = getattr(module, "phase", None)
        if isinstance(module, Linear) and phase is not None and not config.applies_to(phase):
            skip.append(path)
    if not config.enabled:
        return compress_module(model, 1)
    return compress_module(model, config.block_size, skip=skip)


def model_compression_report(model: Module) -> Dict[str, int]:
    """Count dense vs. circulant parameters of an already-built model."""
    dense = 0
    circulant = 0
    for _, module in model.named_modules():
        if isinstance(module, BlockCirculantLinear):
            circulant += module.weight.size
            dense += module.spec.dense_parameters
        elif isinstance(module, Linear):
            circulant += module.weight.size
            dense += module.weight.size
    return {"dense_equivalent": dense, "stored": circulant}
