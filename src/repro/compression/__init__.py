"""Block-circulant weight-matrix compression — the core contribution of BlockGNN."""

from .circulant import (
    BlockCirculantSpec,
    circulant_from_first_column,
    circulant_from_first_row,
    expand_block_circulant,
    num_blocks,
    pad_to_multiple,
    project_to_block_circulant,
    random_block_circulant,
)
from .compress import (
    CompressionConfig,
    CompressionReport,
    compress_model,
    compress_module,
    model_compression_report,
)
from .ratios import (
    CompressionSummary,
    layer_computation_reduction,
    layer_storage_reduction,
    storage_reduction,
    summarize_block_sizes,
    theoretical_computation_reduction,
)
from .spectral import (
    block_circulant_matmul,
    block_circulant_matmul_rfft,
    block_circulant_matvec,
    block_circulant_matvec_spatial,
    block_circulant_operation_count,
    circulant_linear,
    dense_operation_count,
    fft_operation_count,
    spectral_weights,
)

__all__ = [
    "BlockCirculantSpec",
    "circulant_from_first_column",
    "circulant_from_first_row",
    "expand_block_circulant",
    "project_to_block_circulant",
    "random_block_circulant",
    "pad_to_multiple",
    "num_blocks",
    "spectral_weights",
    "block_circulant_matmul",
    "block_circulant_matvec",
    "block_circulant_matvec_spatial",
    "block_circulant_matmul_rfft",
    "circulant_linear",
    "fft_operation_count",
    "dense_operation_count",
    "block_circulant_operation_count",
    "CompressionConfig",
    "CompressionReport",
    "compress_module",
    "compress_model",
    "model_compression_report",
    "storage_reduction",
    "theoretical_computation_reduction",
    "layer_storage_reduction",
    "layer_computation_reduction",
    "CompressionSummary",
    "summarize_block_sizes",
]
