"""CirCore — the three-stage pipelined block-circulant compute core (Fig. 4).

Stage 1: ``x`` FFT channels transform feature sub-vectors into the spectral
domain.  Stage 2: an ``r x c`` weight-stationary systolic array performs the
element-wise complex MACs against the pre-loaded spectral weights,
accumulating over input blocks directly in the spectral domain.  Stage 3:
``y`` IFFT channels transform the ``p`` accumulated sub-vectors back.

The class provides both views used throughout the repository:

* **functional** — :meth:`matvec` executes the datapath on real data and is
  bit-wise (up to float tolerance) equivalent to
  :func:`repro.compression.spectral.block_circulant_matmul`, which the test
  suite asserts;
* **analytical** — :meth:`cycles_for_vectors` evaluates Equations 3–5 plus the
  pipeline-fill overhead and reports the bottleneck stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..compression.circulant import BlockCirculantSpec, pad_to_multiple
from ..compression.spectral import spectral_weights
from .config import CirCoreConfig, HardwareConstants, ZC706
from .fft_unit import FFTUnit, IFFTUnit
from .systolic import SystolicArray

__all__ = ["CirCore"]


@dataclass
class CirCore:
    """The pipelined FFT -> spectral-MAC -> IFFT core."""

    config: CirCoreConfig
    constants: HardwareConstants = ZC706
    fft_unit: FFTUnit = field(default=None)      # type: ignore[assignment]
    systolic: SystolicArray = field(default=None)  # type: ignore[assignment]
    ifft_unit: FFTUnit = field(default=None)     # type: ignore[assignment]
    _spec: Optional[BlockCirculantSpec] = field(default=None, init=False, repr=False)
    _use_rfft: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        n = self.config.block_size
        if self.fft_unit is None:
            self.fft_unit = FFTUnit(self.config.fft_channels, n, self.constants)
        if self.ifft_unit is None:
            self.ifft_unit = IFFTUnit(self.config.ifft_channels, n, self.constants)
        if self.systolic is None:
            self.systolic = SystolicArray(
                rows=self.config.systolic_rows,
                cols=self.config.systolic_cols,
                pe_parallelism=self.config.pe_parallelism,
                block_size=n,
                constants=self.constants,
            )

    # -- weight loading ---------------------------------------------------------

    def load_weights(
        self, weights: np.ndarray, spec: BlockCirculantSpec, use_rfft: bool = False
    ) -> None:
        """Pre-compute ``FFT(W)`` and park it in the systolic array (weight-stationary)."""
        if spec.block_size != self.config.block_size:
            raise ValueError(
                f"weight block size {spec.block_size} does not match the core ({self.config.block_size})"
            )
        self._spec = spec
        self._use_rfft = use_rfft
        self.systolic.load_weights(spectral_weights(weights, use_rfft=use_rfft))

    def load_spectral_weights(self, w_hat: np.ndarray, spec: BlockCirculantSpec) -> None:
        """Load already-transformed spectral weights (as stored in the Weight Buffer).

        The transform domain is inferred from the bin count: ``n`` bins run
        the complex datapath, ``n // 2 + 1`` bins switch every stage to the
        rFFT mode of Section V.  This is how the accelerator shares the
        per-version spectral cache of :class:`repro.nn.BlockCirculantLinear`
        without re-transforming anything.
        """
        if spec.block_size != self.config.block_size:
            raise ValueError("weight block size mismatch")
        w_hat = np.asarray(w_hat)
        self._spec = spec
        self._use_rfft = w_hat.shape[-1] != spec.block_size
        self.systolic.load_weights(w_hat)

    @property
    def spec(self) -> BlockCirculantSpec:
        if self._spec is None:
            raise RuntimeError("no weights loaded")
        return self._spec

    # -- functional datapath -------------------------------------------------------

    def matvec(self, features: np.ndarray) -> np.ndarray:
        """Run a batch of feature vectors through the three pipeline stages.

        ``features`` is ``(batch, in_features)`` (or a single vector); the
        result is ``(batch, out_features)``.  Numerically equivalent to the
        software kernel of Algorithm 1.
        """
        spec = self.spec
        features = np.asarray(features, dtype=np.float64)
        squeeze = features.ndim == 1
        if squeeze:
            features = features[None, :]
        if features.shape[-1] != spec.in_features:
            raise ValueError(
                f"feature dimension {features.shape[-1]} does not match the loaded weights "
                f"({spec.in_features})"
            )
        n = spec.block_size
        padded = pad_to_multiple(features, n, axis=-1).reshape(features.shape[0], spec.q, n)
        spectral_inputs = self.fft_unit.process(padded, real=self._use_rfft)
        spectral_outputs = self.systolic.process(spectral_inputs)
        if self._use_rfft:
            spatial = self.ifft_unit.process(spectral_outputs, real=True)
        else:
            spatial = np.real(self.ifft_unit.process(spectral_outputs))
        outputs = spatial.reshape(features.shape[0], spec.padded_out)[:, : spec.out_features]
        return outputs[0] if squeeze else outputs

    # -- analytical timing -------------------------------------------------------------

    def stage_cycles(self, num_vectors: int, spec: Optional[BlockCirculantSpec] = None) -> Dict[str, int]:
        """Per-stage cycles for ``num_vectors`` feature vectors (Eqs. 3–5)."""
        spec = spec if spec is not None else self.spec
        fft = self.fft_unit.cycles_for(num_vectors * spec.q)
        mac = self.systolic.cycles_for(num_vectors, p=spec.p, q=spec.q)
        ifft = self.ifft_unit.cycles_for(num_vectors * spec.p)
        return {"fft": fft, "mac": mac, "ifft": ifft}

    def cycles_for_vectors(self, num_vectors: int, spec: Optional[BlockCirculantSpec] = None) -> int:
        """Pipelined cycles: bottleneck stage plus the fill latency of the other stages."""
        stages = self.stage_cycles(num_vectors, spec)
        spec = spec if spec is not None else self.spec
        bottleneck = max(stages.values())
        # Pipeline fill: one transform through the FFT stage and one systolic pass.
        fill = self.fft_unit.cycles_per_transform + self.systolic.cycles_for(1, p=spec.p, q=spec.q)
        return bottleneck + fill

    def bottleneck_stage(self, num_vectors: int, spec: Optional[BlockCirculantSpec] = None) -> str:
        stages = self.stage_cycles(num_vectors, spec)
        return max(stages, key=stages.get)

    @property
    def dsp_cost(self) -> int:
        return self.fft_unit.dsp_cost + self.ifft_unit.dsp_cost + self.systolic.dsp_cost

    def reset_stats(self) -> None:
        self.fft_unit.reset_stats()
        self.ifft_unit.reset_stats()
        self.systolic.reset_stats()
