"""The Vector Processing Unit (VPU).

Section III-C: an ``m``-lane SIMD unit, each lane processing 16 real-valued
elements per cycle.  It provides the non-linear functions (ReLU, Sigmoid,
Exp), vector-vector addition/multiplication, max/sum reductions across
neighbour vectors (GCN / GS-Pool aggregation), and bias addition.

Every functional method also charges the corresponding cycles
(Eq. 6: ``ceil(elements / (m * 16))``) so the functional and analytical views
stay consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .config import HardwareConstants, ZC706

__all__ = ["VectorProcessingUnit"]


@dataclass
class VectorProcessingUnit:
    """An ``m``-lane SIMD-16 vector unit."""

    lanes: int = 1
    constants: HardwareConstants = ZC706
    elements_processed: int = field(default=0, init=False)
    busy_cycles: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.lanes <= 0:
            raise ValueError("lane count must be positive")

    @property
    def width(self) -> int:
        """Real-valued elements processed per cycle."""
        return self.lanes * self.constants.vpu_simd_width

    def cycles_for(self, elements: float) -> int:
        """Equation 6: cycles to stream ``elements`` element-wise operations."""
        if elements <= 0:
            return 0
        return math.ceil(elements / self.width)

    def _charge(self, elements: int) -> None:
        self.elements_processed += elements
        self.busy_cycles += self.cycles_for(elements)

    # -- element-wise functions -----------------------------------------------------

    def relu(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self._charge(values.size)
        return np.maximum(values, 0.0)

    def sigmoid(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self._charge(values.size)
        return 1.0 / (1.0 + np.exp(-values))

    def exp(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self._charge(values.size)
        return np.exp(values)

    def elu(self, values: np.ndarray, alpha: float = 1.0) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        self._charge(values.size)
        return np.where(values > 0.0, values, alpha * (np.exp(values) - 1.0))

    def add(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        result = left + right
        self._charge(result.size)
        return result

    def multiply(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        left = np.asarray(left, dtype=np.float64)
        right = np.asarray(right, dtype=np.float64)
        result = left * right
        self._charge(result.size)
        return result

    def add_bias(self, values: np.ndarray, bias: np.ndarray) -> np.ndarray:
        """Bias addition — the VPU's responsibility per Section III-C."""
        return self.add(values, np.broadcast_to(bias, np.asarray(values).shape))

    # -- reductions across neighbour vectors -----------------------------------------

    def max_pool(self, vectors: np.ndarray, axis: int = 0) -> np.ndarray:
        """Element-wise max across ``axis`` (GS-Pool aggregation)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        self._charge(vectors.size)
        return vectors.max(axis=axis)

    def sum_reduce(self, vectors: np.ndarray, axis: int = 0) -> np.ndarray:
        """Element-wise sum across ``axis`` (GCN / G-GCN aggregation)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        self._charge(vectors.size)
        return vectors.sum(axis=axis)

    def scale_accumulate(self, vectors: np.ndarray, scales: np.ndarray, axis: int = 0) -> np.ndarray:
        """Weighted sum ``sum_i scales[i] * vectors[i]`` (GCN normalisation, GAT attention)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        scales = np.asarray(scales, dtype=np.float64)
        shape = [1] * vectors.ndim
        shape[axis] = -1
        weighted = vectors * scales.reshape(shape)
        self._charge(2 * vectors.size)
        return weighted.sum(axis=axis)

    def reset_stats(self) -> None:
        self.elements_processed = 0
        self.busy_cycles = 0

    @property
    def dsp_cost(self) -> int:
        """DSPs consumed (``m * eta``)."""
        return self.constants.vpu_dsps(self.lanes)
