"""Multi-channel FFT / IFFT units (the first and third CirCore pipeline stages).

The functional behaviour is an n-point (inverse) DFT per sub-vector; the
timing behaviour follows the paper's calibration: each channel needs
``alpha(n)`` cycles per transform (484 cycles for n = 128 with the Xilinx FFT
IP) and transforms are distributed round-robin over the available channels,
exploiting intra-vector parallelism first (Section III-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .config import HardwareConstants, ZC706

__all__ = ["FFTUnit", "IFFTUnit"]


@dataclass
class FFTUnit:
    """An ``x``-channel FFT unit operating on length-``n`` sub-vectors."""

    channels: int
    block_size: int
    constants: HardwareConstants = ZC706
    inverse: bool = False
    #: running statistics, reset with :meth:`reset_stats`
    transforms_processed: int = field(default=0, init=False)
    busy_cycles: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.channels <= 0:
            raise ValueError("channel count must be positive")
        if self.block_size <= 0:
            raise ValueError("block size must be positive")

    @property
    def cycles_per_transform(self) -> int:
        """``alpha(n)`` — latency of one transform on one channel."""
        return self.constants.fft_cycles(self.block_size)

    def cycles_for(self, num_transforms: int) -> int:
        """Cycles to push ``num_transforms`` transforms through the channels.

        Matches Eq. 3 / Eq. 5: ``alpha(n) * ceil(num_transforms / channels)``.
        """
        if num_transforms <= 0:
            return 0
        return self.cycles_per_transform * math.ceil(num_transforms / self.channels)

    def process(self, sub_vectors: np.ndarray, real: bool = False) -> np.ndarray:
        """Transform sub-vectors; returns spectra (or real signals when inverting).

        With ``real=False`` (default) this is the complex n-point (I)DFT on
        ``(..., n)`` inputs.  With ``real=True`` the unit runs in the rFFT mode
        of Section V: forward transforms consume real ``(..., n)`` inputs and
        emit the ``n // 2 + 1`` non-redundant bins; inverse transforms consume
        ``(..., n // 2 + 1)`` Hermitian half-spectra and emit real ``(..., n)``
        signals.  The cycle model is unchanged — the same Xilinx FFT IP
        processes half-spectra, the saving shows up as half the bin traffic
        through the systolic stage.

        Also accumulates the cycle/transform statistics so that the functional
        simulation and the analytical model can be cross-checked.
        """
        sub_vectors = np.asarray(sub_vectors)
        expected = self.block_size // 2 + 1 if (real and self.inverse) else self.block_size
        if sub_vectors.shape[-1] != expected:
            raise ValueError(
                f"sub-vector length {sub_vectors.shape[-1]} does not match the expected "
                f"{expected} (block size {self.block_size}, real={real}, inverse={self.inverse})"
            )
        count = int(np.prod(sub_vectors.shape[:-1])) if sub_vectors.ndim > 1 else 1
        self.transforms_processed += count
        self.busy_cycles += self.cycles_for(count)
        if self.inverse:
            if real:
                return np.fft.irfft(sub_vectors, n=self.block_size, axis=-1)
            return np.fft.ifft(sub_vectors, axis=-1)
        if real:
            return np.fft.rfft(sub_vectors, axis=-1)
        return np.fft.fft(sub_vectors, axis=-1)

    def reset_stats(self) -> None:
        self.transforms_processed = 0
        self.busy_cycles = 0

    @property
    def dsp_cost(self) -> int:
        """DSPs consumed by all channels (``beta(n) * channels``)."""
        return self.constants.fft_dsps(self.block_size) * self.channels


def IFFTUnit(channels: int, block_size: int, constants: HardwareConstants = ZC706) -> FFTUnit:
    """Convenience constructor for the inverse-transform stage (same core, different twiddles)."""
    return FFTUnit(channels=channels, block_size=block_size, constants=constants, inverse=True)
