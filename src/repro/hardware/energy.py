"""Energy-efficiency model (Section IV-D, Figure 7).

The paper measures the BlockGNN-opt prototype at about 4.6 W and estimates the
Xeon Gold 5220 at 125 W, then compares the platforms with the
Nodes-per-Joule metric: how many node representations each platform updates
per joule of energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "BLOCKGNN_POWER_WATTS",
    "CPU_POWER_WATTS",
    "EnergyResult",
    "nodes_per_joule",
    "energy_joules",
    "compare_energy",
]

#: Measured power of the BlockGNN-opt FPGA prototype (Section IV-D).
BLOCKGNN_POWER_WATTS = 4.6
#: Estimated power of the Xeon Gold 5220 CPU baseline (Section IV-D).
CPU_POWER_WATTS = 125.0


def energy_joules(latency_seconds: float, power_watts: float) -> float:
    """Energy consumed by a run: ``E = P * t``."""
    if latency_seconds < 0 or power_watts < 0:
        raise ValueError("latency and power must be non-negative")
    return latency_seconds * power_watts


def nodes_per_joule(num_nodes: int, latency_seconds: float, power_watts: float) -> float:
    """The paper's energy-efficiency metric (Figure 7)."""
    energy = energy_joules(latency_seconds, power_watts)
    if energy == 0:
        return float("inf")
    return num_nodes / energy


@dataclass(frozen=True)
class EnergyResult:
    """Energy-efficiency of one platform on one task."""

    platform: str
    num_nodes: int
    latency_seconds: float
    power_watts: float

    @property
    def energy_joules(self) -> float:
        return energy_joules(self.latency_seconds, self.power_watts)

    @property
    def nodes_per_joule(self) -> float:
        return nodes_per_joule(self.num_nodes, self.latency_seconds, self.power_watts)


def compare_energy(blockgnn: EnergyResult, baseline: EnergyResult) -> Dict[str, float]:
    """Energy-saving factor of BlockGNN over a baseline (the Figure 7 ratios)."""
    if blockgnn.num_nodes != baseline.num_nodes:
        raise ValueError("energy comparison requires the same number of processed nodes")
    return {
        "blockgnn_nodes_per_joule": blockgnn.nodes_per_joule,
        "baseline_nodes_per_joule": baseline.nodes_per_joule,
        "energy_reduction": blockgnn.nodes_per_joule / baseline.nodes_per_joule,
    }
