"""The BlockGNN accelerator (Figure 3).

The accelerator follows the vertex-centric workflow of the paper: the host
CPU samples a batch of neighbour nodes and pushes their features plus control
commands; the accelerator runs the aggregation/combination compute on its
CirCore + VPU, reading spectral weights from the Weight Buffer and staging
features in the double-buffered Node Feature Buffer; updated features flow
back to host DRAM.

Two complementary views are provided:

* a **functional simulator** that executes compressed layers on real data
  (used by the equivalence tests and the ``accelerator_simulation`` example);
* an **analytical estimator** that evaluates the Section III-D performance
  model for full-scale workloads (used by the Figure 6/7 benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..compression.circulant import BlockCirculantSpec
from ..nn.linear import BlockCirculantLinear
from ..nn.module import Module
from .buffers import GlobalBuffer
from .circore import CirCore
from .config import CirCoreConfig, HardwareConstants, ZC706
from .vpu import VectorProcessingUnit

__all__ = ["CommandType", "Command", "BlockGNNAccelerator"]


class CommandType(Enum):
    """Control commands issued by the host CPU (Figure 3's Cmd. FIFO)."""

    LOAD_WEIGHTS = auto()
    LOAD_FEATURES = auto()
    AGGREGATE = auto()
    COMBINE = auto()
    STORE_FEATURES = auto()


@dataclass(frozen=True)
class Command:
    """One entry of the command FIFO."""

    kind: CommandType
    operand: str = ""


@dataclass
class _StoredLayer:
    """A compressed layer resident in the Weight Buffer."""

    name: str
    spec: BlockCirculantSpec
    spectral: np.ndarray
    bias: Optional[np.ndarray]
    activation: Optional[str]


class BlockGNNAccelerator:
    """Functional + analytical model of the BlockGNN accelerator."""

    def __init__(
        self,
        config: CirCoreConfig,
        constants: HardwareConstants = ZC706,
    ) -> None:
        self.config = config
        self.constants = constants
        self.circore = CirCore(config, constants)
        self.vpu = VectorProcessingUnit(lanes=config.vpu_lanes, constants=constants)
        self.buffers = GlobalBuffer(constants)
        self.command_log: List[Command] = []
        self._layers: Dict[str, _StoredLayer] = {}

    # -- weight management -------------------------------------------------------

    def load_layer(
        self,
        name: str,
        layer: BlockCirculantLinear,
        activation: Optional[str] = None,
    ) -> None:
        """Park a compressed layer's spectral weights ``FFT(W)`` in the WB.

        The spectra come from the layer's own per-version cache
        (:meth:`repro.nn.BlockCirculantLinear.spectral`), so the software
        training path and the accelerator datapath share one transform per
        weight update — by default the ``n // 2 + 1``-bin rFFT half-spectra of
        Section V, which also halves Weight Buffer occupancy.
        """
        if layer.block_size != self.config.block_size:
            raise ValueError(
                f"layer block size {layer.block_size} does not match the accelerator "
                f"({self.config.block_size})"
            )
        w_hat = layer.spectral()
        self.buffers.weight_buffer.store(name, w_hat)
        bias = layer.bias.data.copy() if layer.bias is not None else None
        self._layers[name] = _StoredLayer(name, layer.spec, w_hat, bias, activation)
        self.command_log.append(Command(CommandType.LOAD_WEIGHTS, name))

    def load_model(self, model: Module, activation: str = "relu") -> List[str]:
        """Load every compressed layer of ``model`` into the Weight Buffer.

        Returns the stored layer names in model order.  Dense layers are
        skipped (they would run on the host in a mixed deployment).
        """
        stored: List[str] = []
        for path, module in model.named_modules():
            if isinstance(module, BlockCirculantLinear):
                self.load_layer(path, module, activation=activation)
                stored.append(path)
        return stored

    def stored_layers(self) -> List[str]:
        return list(self._layers)

    # -- functional execution --------------------------------------------------------

    def execute_linear(self, name: str, features: np.ndarray, apply_activation: bool = False) -> np.ndarray:
        """Run one stored compressed layer on a batch of feature vectors.

        The datapath is: NFB load -> FFT channels -> systolic spectral MAC ->
        IFFT channels -> VPU bias add (and optional activation) -> NFB store.
        """
        if name not in self._layers:
            raise KeyError(f"layer '{name}' is not loaded; call load_layer() first")
        stored = self._layers[name]
        features = np.asarray(features, dtype=np.float64)
        batch = features[None, :] if features.ndim == 1 else features

        self.command_log.append(Command(CommandType.LOAD_FEATURES, name))
        self.buffers.feature_buffer.load_batch(batch)

        self.circore.load_spectral_weights(stored.spectral, stored.spec)
        outputs = self.circore.matvec(batch)
        if stored.bias is not None:
            outputs = self.vpu.add_bias(outputs, stored.bias)
        if apply_activation and stored.activation == "relu":
            outputs = self.vpu.relu(outputs)
        elif apply_activation and stored.activation == "elu":
            outputs = self.vpu.elu(outputs)

        self.buffers.feature_buffer.store_batch(outputs)
        self.command_log.append(Command(CommandType.STORE_FEATURES, name))
        return outputs[0] if features.ndim == 1 else outputs

    def execute_sequence(self, features: np.ndarray, names: Optional[Sequence[str]] = None) -> np.ndarray:
        """Chain stored layers (with their activations) over a feature batch."""
        names = list(names) if names is not None else self.stored_layers()
        current = np.asarray(features, dtype=np.float64)
        for index, name in enumerate(names):
            apply_activation = index < len(names) - 1
            current = self.execute_linear(name, current, apply_activation=apply_activation)
        return current

    # -- GS-Pool style aggregation (max pooling over sampled neighbours) ----------------

    def aggregate_max_pool(self, name: str, neighbor_features: np.ndarray) -> np.ndarray:
        """Pooling aggregation: FC every neighbour through CirCore, ReLU + max on the VPU.

        ``neighbor_features`` has shape ``(num_nodes, fanout, in_features)``;
        the result has shape ``(num_nodes, pool_features)``.
        """
        neighbor_features = np.asarray(neighbor_features, dtype=np.float64)
        if neighbor_features.ndim != 3:
            raise ValueError("neighbor_features must be (num_nodes, fanout, in_features)")
        num_nodes, fanout, in_features = neighbor_features.shape
        self.command_log.append(Command(CommandType.AGGREGATE, name))
        flat = neighbor_features.reshape(num_nodes * fanout, in_features)
        projected = self.execute_linear(name, flat)
        projected = self.vpu.relu(projected)
        pooled = self.vpu.max_pool(projected.reshape(num_nodes, fanout, -1), axis=1)
        return pooled

    # -- analytical estimation ------------------------------------------------------------

    def estimate_latency(self, workload, phases: Sequence[str] = ("aggregation", "combination")):
        """Evaluate the Section III-D performance model for ``workload``.

        Returns a :class:`repro.perfmodel.PerformanceEstimate`.  Imported
        lazily to keep the hardware package importable on its own.
        """
        from ..perfmodel.model import estimate_performance

        return estimate_performance(workload, self.config, self.constants, phases)

    def estimate_resources(self):
        """Evaluate the Equation 8 resource model for this configuration."""
        from ..perfmodel.resources import estimate_resources

        return estimate_resources(self.config, self.constants)

    # -- statistics -------------------------------------------------------------------------

    def utilization_report(self) -> Dict[str, float]:
        """Busy-cycle and buffer statistics accumulated by the functional units."""
        return {
            "fft_busy_cycles": float(self.circore.fft_unit.busy_cycles),
            "mac_busy_cycles": float(self.circore.systolic.busy_cycles),
            "ifft_busy_cycles": float(self.circore.ifft_unit.busy_cycles),
            "vpu_busy_cycles": float(self.vpu.busy_cycles),
            "weight_buffer_utilization": self.buffers.weight_buffer.utilization,
            "feature_traffic_bytes": float(self.buffers.feature_buffer.total_traffic_bytes),
        }

    def reset_stats(self) -> None:
        self.circore.reset_stats()
        self.vpu.reset_stats()
        self.buffers.feature_buffer.reset_stats()
        self.command_log.clear()
