"""Hardware configuration and calibrated FPGA cost coefficients.

The prototype in the paper is implemented on a Xilinx ZC706 (XC7Z045) at
100 MHz with 32-bit fixed-point arithmetic.  Section IV-B publishes the cost
coefficients the performance & resource model needs:

* ``alpha(128) = 484`` cycles per 128-point FFT/IFFT per channel,
* ``beta = 18`` DSP48 slices per FFT/IFFT channel,
* ``gamma(l) = 16 * l`` DSPs per systolic PE (``l`` complex MACs per cycle),
* ``eta = 64`` DSPs per SIMD-16 VPU lane,
* 900 DSP slices, 1090 BRAM18K, 437 200 FFs, 218 600 LUTs on the device,
* 256 KB Weight Buffer, 512 KB Node Feature Buffer.

These published values are used verbatim.  Costs that the paper does not
publish (FF/LUT/BRAM per component, FFT latency at other block sizes) are
modelled with simple linear/analytic extrapolations and are clearly marked as
calibrated; they only affect the Table VI utilisation reproduction, not the
latency or energy results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict

__all__ = [
    "CirCoreConfig",
    "HardwareConstants",
    "ZC706",
    "BLOCKGNN_BASE",
    "HYGCN_FPGA_CONFIG",
]


@dataclass(frozen=True)
class CirCoreConfig:
    """The tunable hardware parameters of the BlockGNN accelerator.

    Matches the notation of Section III-C/D: ``x`` FFT channels, ``y`` IFFT
    channels, an ``r x c`` systolic array whose PEs each perform ``l``
    element-wise complex MACs per cycle, and ``m`` SIMD-16 VPU lanes.
    """

    fft_channels: int        # x
    ifft_channels: int       # y
    systolic_rows: int       # r
    systolic_cols: int       # c
    pe_parallelism: int = 1  # l
    vpu_lanes: int = 1       # m
    block_size: int = 128    # n
    frequency_hz: float = 100e6

    def __post_init__(self) -> None:
        for name in ("fft_channels", "ifft_channels", "systolic_rows", "systolic_cols",
                     "pe_parallelism", "vpu_lanes", "block_size"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def x(self) -> int:
        return self.fft_channels

    @property
    def y(self) -> int:
        return self.ifft_channels

    @property
    def r(self) -> int:
        return self.systolic_rows

    @property
    def c(self) -> int:
        return self.systolic_cols

    @property
    def l(self) -> int:  # noqa: E743 - matches the paper's symbol
        return self.pe_parallelism

    @property
    def m(self) -> int:
        return self.vpu_lanes

    @property
    def num_pes(self) -> int:
        return self.systolic_rows * self.systolic_cols

    def with_block_size(self, block_size: int) -> "CirCoreConfig":
        return replace(self, block_size=block_size)

    def describe(self) -> Dict[str, int]:
        """Parameter dictionary in the paper's ``x, y, r, c, l, m`` order."""
        return {
            "x": self.fft_channels,
            "y": self.ifft_channels,
            "r": self.systolic_rows,
            "c": self.systolic_cols,
            "l": self.pe_parallelism,
            "m": self.vpu_lanes,
        }


@dataclass(frozen=True)
class HardwareConstants:
    """FPGA device budget and calibrated per-component costs."""

    # Device budget (ZC706 / XC7Z045).
    total_dsp: int = 900
    total_bram18k: int = 1090
    total_ff: int = 437_200
    total_lut: int = 218_600

    # Published coefficients (Section IV-B).
    fft_cycles_n128: int = 484        # alpha(128)
    fft_dsp_per_channel: int = 18     # beta
    dsp_per_pe_lane: int = 16         # gamma(l) = 16 * l
    dsp_per_vpu_lane: int = 64        # eta
    vpu_simd_width: int = 16

    # On-chip buffer sizes (Section IV-B), in bytes.
    weight_buffer_bytes: int = 256 * 1024
    feature_buffer_bytes: int = 512 * 1024
    bytes_per_value: int = 4

    # Calibrated (unpublished) resource costs — affect Table VI only.
    bram_per_fft_channel: int = 3
    bram_base: int = 20
    ff_base: int = 30_000
    ff_per_fft_channel: int = 2_500
    ff_per_pe_lane: int = 800
    ff_per_vpu_lane: int = 3_000
    lut_base: int = 20_000
    lut_per_fft_channel: int = 1_500
    lut_per_pe_lane: int = 600
    lut_per_vpu_lane: int = 2_500

    # DRAM interface (host <-> accelerator), used only for sanity checks:
    dram_bandwidth_bytes_per_s: float = 12.8e9  # ZC706 DDR3-1600 x64

    def fft_cycles(self, block_size: int) -> int:
        """Latency ``alpha(n)`` of one ``n``-point FFT/IFFT per channel.

        The paper measures 484 cycles for ``n = 128`` with the Xilinx FFT IP.
        Other block sizes are extrapolated with the ``n log2 n`` scaling of a
        pipelined radix-2 core (marked as calibration, the evaluation always
        uses ``n = 128``).
        """
        if block_size <= 1:
            return 1
        reference = 128 * math.log2(128)
        scale = block_size * math.log2(block_size) / reference
        return max(1, int(round(self.fft_cycles_n128 * scale)))

    def fft_dsps(self, block_size: int) -> int:
        """DSP cost ``beta(n)`` of one FFT/IFFT channel (18 at ``n = 128``)."""
        del block_size  # the Xilinx core's DSP usage is dominated by butterflies/stage
        return self.fft_dsp_per_channel

    def pe_dsps(self, pe_parallelism: int) -> int:
        """DSP cost ``gamma(l)`` of one systolic PE (16 DSPs per complex MAC lane)."""
        return self.dsp_per_pe_lane * pe_parallelism

    def vpu_dsps(self, lanes: int) -> int:
        """DSP cost of an ``m``-lane SIMD-16 VPU (``eta = 64`` DSPs per lane)."""
        return self.dsp_per_vpu_lane * lanes


#: Device constants for the evaluation platform.
ZC706 = HardwareConstants()

#: The fixed configuration used by the BlockGNN-base comparison point
#: (Section IV-B): 16 FFT/IFFT channels, a 4x4 systolic array, l = m = 1.
BLOCKGNN_BASE = CirCoreConfig(
    fft_channels=16,
    ifft_channels=16,
    systolic_rows=4,
    systolic_cols=4,
    pe_parallelism=1,
    vpu_lanes=1,
    block_size=128,
)

#: The HyGCN comparison point re-scaled to the same FPGA (Section IV-A):
#: a 6-lane SIMD-16 vector unit for aggregation and a 4x32 systolic array
#: for combination, at the same 100 MHz.
HYGCN_FPGA_CONFIG = {
    "vpu_lanes": 6,
    "vpu_simd_width": 16,
    "systolic_rows": 4,
    "systolic_cols": 32,
    "frequency_hz": 100e6,
}
