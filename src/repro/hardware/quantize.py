"""Fixed-point quantisation (the prototype's 32-bit fixed-point arithmetic).

The ZC706 prototype computes with 32-bit fixed-point values (Section IV-B);
the FFT latency and DSP coefficients used throughout the performance model
were measured at that precision.  This module provides the quantisation used
to study the numerical effect of that choice on the block-circulant datapath:

* :class:`FixedPointFormat` — a signed Qm.f format with saturation;
* :func:`quantize` — round-to-nearest quantisation of arrays;
* :func:`quantization_error` — error statistics for a tensor;
* :func:`quantize_layer_weights` — in-place quantisation of a model's weights;
* :func:`evaluate_quantized_matvec` — end-to-end output error of the
  compressed mat-vec when weights and activations are quantised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..compression.circulant import BlockCirculantSpec
from ..compression.spectral import block_circulant_matmul
from ..nn.module import Module
from ..nn.linear import BlockCirculantLinear, Linear

__all__ = [
    "FixedPointFormat",
    "Q32_16",
    "Q16_8",
    "quantize",
    "quantization_error",
    "quantize_layer_weights",
    "evaluate_quantized_matvec",
]


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``total_bits`` bits, ``frac_bits`` fractional."""

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits <= 1:
            raise ValueError("need at least 2 bits (sign + magnitude)")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError("fractional bits must fit inside the word")

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.total_bits - 1)) * self.scale

    def describe(self) -> str:
        return f"Q{self.total_bits - self.frac_bits}.{self.frac_bits}"


#: The prototype's 32-bit fixed-point format (16 integer / 16 fractional bits).
Q32_16 = FixedPointFormat(32, 16)
#: A 16-bit format useful for studying more aggressive quantisation.
Q16_8 = FixedPointFormat(16, 8)


def quantize(values: np.ndarray, fmt: FixedPointFormat = Q32_16) -> np.ndarray:
    """Round-to-nearest fixed-point quantisation with saturation."""
    values = np.asarray(values, dtype=np.float64)
    quantised = np.round(values / fmt.scale) * fmt.scale
    return np.clip(quantised, fmt.min_value, fmt.max_value)


def quantization_error(values: np.ndarray, fmt: FixedPointFormat = Q32_16) -> Dict[str, float]:
    """Absolute and relative error statistics introduced by quantising ``values``."""
    values = np.asarray(values, dtype=np.float64)
    error = np.abs(values - quantize(values, fmt))
    denominator = max(float(np.abs(values).max()), np.finfo(np.float64).tiny)
    return {
        "max_abs_error": float(error.max()) if error.size else 0.0,
        "mean_abs_error": float(error.mean()) if error.size else 0.0,
        "max_relative_error": float(error.max() / denominator),
    }


def quantize_layer_weights(model: Module, fmt: FixedPointFormat = Q32_16) -> Dict[str, float]:
    """Quantise every Linear / BlockCirculantLinear weight in place.

    Returns the per-layer maximum absolute quantisation error, which is what a
    deployment flow checks before committing to a fixed-point format.
    """
    errors: Dict[str, float] = {}
    for path, module in model.named_modules():
        if isinstance(module, (Linear, BlockCirculantLinear)):
            original = module.weight.data.copy()
            module.weight.data[...] = quantize(original, fmt)
            module.weight.bump_version()
            errors[path or module.__class__.__name__] = float(
                np.abs(original - module.weight.data).max()
            )
            if module.bias is not None:
                module.bias.data[...] = quantize(module.bias.data, fmt)
                module.bias.bump_version()
    return errors


def evaluate_quantized_matvec(
    weights: np.ndarray,
    spec: BlockCirculantSpec,
    features: np.ndarray,
    fmt: FixedPointFormat = Q32_16,
) -> Dict[str, float]:
    """Output error of the compressed mat-vec under weight+activation quantisation.

    This is the software-level counterpart of running the CirCore datapath in
    fixed point: quantise the defining vectors and the input features, run the
    FFT kernel in double precision (the FFT core keeps wider intermediates),
    and compare against the unquantised result.
    """
    reference = block_circulant_matmul(features, weights, spec)
    quantized = block_circulant_matmul(quantize(features, fmt), quantize(weights, fmt), spec)
    error = np.abs(reference - quantized)
    denominator = max(float(np.abs(reference).max()), np.finfo(np.float64).tiny)
    return {
        "max_abs_error": float(error.max()),
        "mean_abs_error": float(error.mean()),
        "max_relative_error": float(error.max() / denominator),
    }
