"""Weight-stationary systolic array for spectral-domain MACs (CirCore stage 2).

Functional behaviour: given the pre-loaded spectral weights ``W_hat`` of shape
``(p, q, n)`` and a batch of spectral feature sub-vectors ``X_hat`` of shape
``(vectors, q, n)``, produce the accumulated spectral outputs
``Y_hat[v, i] = sum_j W_hat[i, j] * X_hat[v, j]`` — exactly the inner loop of
Algorithm 1 before the IFFT.

Timing behaviour: the ``r x c`` PE array processes ``r`` input sub-vectors and
``c`` output sub-vectors per pass, with each PE performing ``l`` element-wise
complex MACs per cycle, giving the paper's
``ceil(q/r) * ceil(p/c) * ceil(n/l)`` cycles per feature vector (Eq. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .config import HardwareConstants, ZC706

__all__ = ["SystolicArray"]


@dataclass
class SystolicArray:
    """An ``r x c`` weight-stationary systolic array with SIMD-``l`` PEs."""

    rows: int
    cols: int
    pe_parallelism: int = 1
    block_size: int = 128
    constants: HardwareConstants = ZC706
    _weights: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    macs_processed: int = field(default=0, init=False)
    busy_cycles: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0 or self.pe_parallelism <= 0:
            raise ValueError("array dimensions and PE parallelism must be positive")

    # -- weight loading -----------------------------------------------------------

    def load_weights(self, spectral_weights: np.ndarray) -> None:
        """Pre-load the spectral weights (weight-stationary dataflow).

        Accepts either complex-FFT spectra (``(p, q, n)``) or the
        ``(p, q, n // 2 + 1)``-bin rFFT half-spectra of Section V — the MAC
        stage is agnostic, it simply multiplies whatever bins flow through.
        """
        spectral_weights = np.asarray(spectral_weights)
        if spectral_weights.ndim != 3 or spectral_weights.shape[-1] not in (
            self.block_size,
            self.block_size // 2 + 1,
        ):
            raise ValueError(
                "spectral weights must have shape (p, q, n) or (p, q, n // 2 + 1)"
            )
        self._weights = spectral_weights

    @property
    def weights_loaded(self) -> bool:
        return self._weights is not None

    # -- timing ----------------------------------------------------------------------

    def cycles_for(self, num_vectors: int, p: Optional[int] = None, q: Optional[int] = None) -> int:
        """Equation 4 for ``num_vectors`` feature vectors against a ``p x q`` block grid."""
        if num_vectors <= 0:
            return 0
        if p is None or q is None:
            if self._weights is None:
                raise RuntimeError("weights must be loaded (or p/q given) to estimate cycles")
            p = self._weights.shape[0]
            q = self._weights.shape[1]
        per_vector = (
            math.ceil(q / self.rows)
            * math.ceil(p / self.cols)
            * math.ceil(self.block_size / self.pe_parallelism)
        )
        return num_vectors * per_vector

    # -- functional simulation ----------------------------------------------------------

    def process(self, spectral_inputs: np.ndarray) -> np.ndarray:
        """Multiply-accumulate spectral inputs against the loaded weights.

        ``spectral_inputs`` has shape ``(vectors, q, n)``; the result has shape
        ``(vectors, p, n)``.
        """
        if self._weights is None:
            raise RuntimeError("load_weights() must be called before process()")
        spectral_inputs = np.asarray(spectral_inputs)
        if spectral_inputs.ndim == 2:
            spectral_inputs = spectral_inputs[None, ...]
        p, q, bins = self._weights.shape
        if spectral_inputs.shape[1] != q or spectral_inputs.shape[2] != bins:
            raise ValueError(
                f"spectral input shape {spectral_inputs.shape} incompatible with weights {(p, q, bins)}"
            )
        outputs = np.einsum("pqn,vqn->vpn", self._weights, spectral_inputs)
        vectors = spectral_inputs.shape[0]
        self.macs_processed += vectors * p * q * bins
        self.busy_cycles += self.cycles_for(vectors, p, q)
        return outputs

    def reset_stats(self) -> None:
        self.macs_processed = 0
        self.busy_cycles = 0

    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def dsp_cost(self) -> int:
        """DSPs consumed by the array (``r * c * gamma(l)``)."""
        return self.num_pes * self.constants.pe_dsps(self.pe_parallelism)
