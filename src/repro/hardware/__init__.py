"""Hardware models: the BlockGNN accelerator, its components and the baselines."""

from .accelerator import BlockGNNAccelerator, Command, CommandType
from .buffers import BufferOverflowError, GlobalBuffer, NodeFeatureBuffer, WeightBuffer
from .circore import CirCore
from .config import BLOCKGNN_BASE, HYGCN_FPGA_CONFIG, ZC706, CirCoreConfig, HardwareConstants
from .cpu import XEON_GOLD_5220, CPUConfig, CPUEstimate, CPURooflineModel
from .energy import (
    BLOCKGNN_POWER_WATTS,
    CPU_POWER_WATTS,
    EnergyResult,
    compare_energy,
    energy_joules,
    nodes_per_joule,
)
from .fft_unit import FFTUnit, IFFTUnit
from .hygcn import HyGCNConfig, HyGCNEstimate, HyGCNModel
from .quantize import (
    Q16_8,
    Q32_16,
    FixedPointFormat,
    evaluate_quantized_matvec,
    quantization_error,
    quantize,
    quantize_layer_weights,
)
from .systolic import SystolicArray
from .vpu import VectorProcessingUnit

__all__ = [
    "CirCoreConfig",
    "HardwareConstants",
    "ZC706",
    "BLOCKGNN_BASE",
    "HYGCN_FPGA_CONFIG",
    "FFTUnit",
    "IFFTUnit",
    "SystolicArray",
    "VectorProcessingUnit",
    "WeightBuffer",
    "NodeFeatureBuffer",
    "GlobalBuffer",
    "BufferOverflowError",
    "CirCore",
    "BlockGNNAccelerator",
    "Command",
    "CommandType",
    "HyGCNModel",
    "HyGCNConfig",
    "HyGCNEstimate",
    "CPURooflineModel",
    "CPUConfig",
    "CPUEstimate",
    "XEON_GOLD_5220",
    "EnergyResult",
    "nodes_per_joule",
    "energy_joules",
    "compare_energy",
    "BLOCKGNN_POWER_WATTS",
    "CPU_POWER_WATTS",
    "FixedPointFormat",
    "Q32_16",
    "Q16_8",
    "quantize",
    "quantization_error",
    "quantize_layer_weights",
    "evaluate_quantized_matvec",
]
