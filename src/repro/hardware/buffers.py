"""On-chip Global Buffer: Weight Buffer (WB) and Node Feature Buffer (NFB).

Section III-C: the global buffer is partitioned into a 256 KB Weight Buffer
holding the pre-computed spectral weights ``W_hat`` of every layer, and a
512 KB Node Feature Buffer that double-buffers (ping-pong) input/updated
features so DRAM transfers overlap with compute.  This module models
capacities, occupancy and traffic, and raises when a model or batch does not
fit — the same check the prototype's designers had to satisfy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .config import HardwareConstants, ZC706

__all__ = ["BufferOverflowError", "WeightBuffer", "NodeFeatureBuffer", "GlobalBuffer"]


class BufferOverflowError(RuntimeError):
    """Raised when data does not fit into an on-chip buffer."""


@dataclass
class WeightBuffer:
    """Holds the spectral weights of all layers (read-only during inference)."""

    capacity_bytes: int = ZC706.weight_buffer_bytes
    bytes_per_value: int = ZC706.bytes_per_value
    _entries: Dict[str, np.ndarray] = field(default_factory=dict, init=False, repr=False)

    def store(self, name: str, spectral_weights: np.ndarray) -> None:
        """Store one matrix's spectral weights (complex values count twice)."""
        spectral_weights = np.asarray(spectral_weights)
        new_bytes = self._nbytes(spectral_weights)
        if self.used_bytes - self._entry_bytes(name) + new_bytes > self.capacity_bytes:
            raise BufferOverflowError(
                f"weight buffer overflow: storing '{name}' needs {new_bytes} bytes, "
                f"only {self.capacity_bytes - self.used_bytes} free"
            )
        self._entries[name] = spectral_weights

    def load(self, name: str) -> np.ndarray:
        if name not in self._entries:
            raise KeyError(f"weight '{name}' not present in the weight buffer")
        return self._entries[name]

    def _nbytes(self, array: np.ndarray) -> int:
        complex_factor = 2 if np.iscomplexobj(array) else 1
        return int(array.size) * self.bytes_per_value * complex_factor

    def _entry_bytes(self, name: str) -> int:
        return self._nbytes(self._entries[name]) if name in self._entries else 0

    @property
    def used_bytes(self) -> int:
        return sum(self._nbytes(array) for array in self._entries.values())

    @property
    def utilization(self) -> float:
        return self.used_bytes / self.capacity_bytes

    def clear(self) -> None:
        self._entries.clear()


@dataclass
class NodeFeatureBuffer:
    """Double-buffered feature store for one processing batch."""

    capacity_bytes: int = ZC706.feature_buffer_bytes
    bytes_per_value: int = ZC706.bytes_per_value
    bytes_loaded: int = field(default=0, init=False)
    bytes_stored: int = field(default=0, init=False)
    _current: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    @property
    def bank_bytes(self) -> int:
        """Capacity of one ping-pong bank (half the buffer)."""
        return self.capacity_bytes // 2

    def max_nodes_per_batch(self, feature_dim: int) -> int:
        """How many node feature vectors fit into one bank."""
        per_node = feature_dim * self.bytes_per_value
        return max(self.bank_bytes // per_node, 1)

    def load_batch(self, features: np.ndarray) -> np.ndarray:
        """Load a batch of node features from DRAM into the active bank."""
        features = np.asarray(features, dtype=np.float64)
        nbytes = features.size * self.bytes_per_value
        if nbytes > self.bank_bytes:
            raise BufferOverflowError(
                f"feature batch of {nbytes} bytes exceeds the {self.bank_bytes}-byte NFB bank"
            )
        self.bytes_loaded += nbytes
        self._current = features
        return features

    def store_batch(self, features: np.ndarray) -> None:
        """Write updated features back towards DRAM (counts traffic only)."""
        features = np.asarray(features)
        self.bytes_stored += features.size * self.bytes_per_value

    @property
    def total_traffic_bytes(self) -> int:
        return self.bytes_loaded + self.bytes_stored

    def reset_stats(self) -> None:
        self.bytes_loaded = 0
        self.bytes_stored = 0
        self._current = None


@dataclass
class GlobalBuffer:
    """The partitioned global buffer of the BlockGNN accelerator."""

    constants: HardwareConstants = ZC706
    weight_buffer: WeightBuffer = field(default=None)  # type: ignore[assignment]
    feature_buffer: NodeFeatureBuffer = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.weight_buffer is None:
            self.weight_buffer = WeightBuffer(
                capacity_bytes=self.constants.weight_buffer_bytes,
                bytes_per_value=self.constants.bytes_per_value,
            )
        if self.feature_buffer is None:
            self.feature_buffer = NodeFeatureBuffer(
                capacity_bytes=self.constants.feature_buffer_bytes,
                bytes_per_value=self.constants.bytes_per_value,
            )

    def summary(self) -> Dict[str, float]:
        return {
            "weight_buffer_used_bytes": self.weight_buffer.used_bytes,
            "weight_buffer_utilization": self.weight_buffer.utilization,
            "feature_traffic_bytes": self.feature_buffer.total_traffic_bytes,
        }
