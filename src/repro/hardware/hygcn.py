"""HyGCN baseline accelerator model (Section IV-A, comparison point 4).

HyGCN (Yan et al., HPCA'20) is a two-engine accelerator: a SIMD aggregation
engine and a systolic combination engine, processing the two GNN phases in a
pipelined fashion.  The paper re-scales it to the same ZC706 FPGA as
BlockGNN: a 6-lane SIMD-16 vector unit and a 4 x 32 systolic array at
100 MHz, running the *uncompressed* GNN models.

Mapping assumption (documented, since the original HyGCN only targets GCN):
element-wise/reduction work executes on the SIMD engine; weight-matrix
products execute on the systolic engine, *assisted* by any SIMD lanes that are
not busy with element-wise work (HyGCN's two engines cooperate and overlap,
so the baseline gets the benefit of its full multiplier budget — a charitable
assumption that keeps the comparison conservative for BlockGNN).  A layer's
cycles are the maximum of the two engines' residual work.  The end-to-end
latency additionally respects the platform's DRAM bandwidth roofline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..workloads.spec import GNNWorkload, LayerWorkload
from .config import HYGCN_FPGA_CONFIG

__all__ = ["HyGCNConfig", "HyGCNEstimate", "HyGCNModel"]


@dataclass(frozen=True)
class HyGCNConfig:
    """The FPGA-scaled HyGCN configuration used for comparison."""

    vpu_lanes: int = HYGCN_FPGA_CONFIG["vpu_lanes"]
    vpu_simd_width: int = HYGCN_FPGA_CONFIG["vpu_simd_width"]
    systolic_rows: int = HYGCN_FPGA_CONFIG["systolic_rows"]
    systolic_cols: int = HYGCN_FPGA_CONFIG["systolic_cols"]
    frequency_hz: float = HYGCN_FPGA_CONFIG["frequency_hz"]

    @property
    def simd_width(self) -> int:
        """Real-valued elements the aggregation engine processes per cycle."""
        return self.vpu_lanes * self.vpu_simd_width

    @property
    def macs_per_cycle(self) -> int:
        """MACs the combination engine performs per cycle."""
        return self.systolic_rows * self.systolic_cols


@dataclass(frozen=True)
class HyGCNEstimate:
    """Cycle/latency estimate of a workload on the HyGCN baseline."""

    workload_model: str
    dataset: str
    config: HyGCNConfig
    cycles_per_node: float
    num_nodes: int
    per_layer: Tuple[Dict[str, float], ...]
    dram_bytes: float = 0.0
    dram_bandwidth: float = 12.8e9

    @property
    def total_cycles(self) -> float:
        return self.cycles_per_node * self.num_nodes

    @property
    def compute_seconds(self) -> float:
        return self.total_cycles / self.config.frequency_hz

    @property
    def memory_seconds(self) -> float:
        if self.dram_bandwidth <= 0:
            return 0.0
        return self.dram_bytes / self.dram_bandwidth

    @property
    def latency_seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def throughput_nodes_per_second(self) -> float:
        latency = self.latency_seconds
        return self.num_nodes / latency if latency > 0 else float("inf")


class HyGCNModel:
    """Analytical latency model of the FPGA-scaled HyGCN baseline."""

    def __init__(self, config: HyGCNConfig | None = None) -> None:
        self.config = config if config is not None else HyGCNConfig()

    def _layer_cycles(self, layer: LayerWorkload) -> Dict[str, float]:
        macs = 0.0
        for op in layer.matvecs:
            macs += op.out_features * op.in_features * op.count_per_node
        vector_elements = sum(op.elements_per_node for op in layer.vector_ops)
        simd_cycles = math.ceil(vector_elements / self.config.simd_width) if vector_elements else 0.0
        # Cooperative mapping: the systolic engine works on the matvecs for the
        # whole layer; SIMD lanes join in once their element-wise work is done.
        combined_rate = self.config.macs_per_cycle + self.config.simd_width
        systolic_only_rate = self.config.macs_per_cycle
        # Solve for the makespan T: SIMD is busy with vector work for
        # ``simd_cycles``; during that time the systolic engine retires
        # ``systolic_only_rate * simd_cycles`` MACs, the remainder is retired at
        # the combined rate.
        macs_during_simd = systolic_only_rate * simd_cycles
        if macs <= macs_during_simd:
            cycles = max(macs / systolic_only_rate if systolic_only_rate else 0.0, float(simd_cycles))
        else:
            cycles = simd_cycles + (macs - macs_during_simd) / combined_rate
        return {
            "systolic": macs / systolic_only_rate if systolic_only_rate else 0.0,
            "simd": float(simd_cycles),
            "cycles": float(cycles),
        }

    def estimate(self, workload: GNNWorkload, num_nodes: int | None = None) -> HyGCNEstimate:
        """Estimate cycles/latency of the *uncompressed* ``workload`` on HyGCN."""
        per_layer = tuple(self._layer_cycles(layer) for layer in workload.layers)
        cycles_per_node = sum(entry["cycles"] for entry in per_layer)
        nodes = num_nodes if num_nodes is not None else workload.num_nodes
        scale = nodes / workload.num_nodes if workload.num_nodes else 1.0
        traffic = (workload.total_bytes("aggregation") + workload.total_bytes("combination")) * scale
        return HyGCNEstimate(
            workload_model=workload.model,
            dataset=workload.dataset,
            config=self.config,
            cycles_per_node=cycles_per_node,
            num_nodes=nodes,
            per_layer=per_layer,
            dram_bytes=traffic,
        )
