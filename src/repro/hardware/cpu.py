"""Intel Xeon Gold 5220 CPU baseline (Section IV-A, comparison point 3).

The paper's CPU baseline runs the uncompressed GNN models in the
TensorFlow-based GraphSAGE framework on a Xeon Gold 5220 server (125 W).
We model it with a roofline: execution time per phase is the maximum of the
compute time (peak FLOP/s scaled by an achievable-efficiency factor) and the
memory time (feature traffic over the sustained DRAM bandwidth).

The peak numbers come from the CPU's public specification (18 cores, 2.2 GHz,
one AVX-512 FMA unit -> 32 FP32 FLOPs/cycle/core; 6 DDR4-2666 channels).  The
``efficiency`` factor is a calibration constant: framework-level GNN
inference with Python/TensorFlow overheads and gather-heavy aggregation
achieves a few percent of peak, which is what places the CPU between
BlockGNN-opt and HyGCN as in Figure 6.  The factor is exposed so users can
explore other operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..workloads.spec import GNNWorkload, Phase

__all__ = ["CPUConfig", "CPUEstimate", "CPURooflineModel", "XEON_GOLD_5220"]


@dataclass(frozen=True)
class CPUConfig:
    """Roofline parameters of a CPU platform."""

    name: str
    cores: int
    frequency_hz: float
    flops_per_cycle_per_core: float
    memory_bandwidth_bytes_per_s: float
    efficiency: float
    power_watts: float

    @property
    def peak_flops(self) -> float:
        return self.cores * self.frequency_hz * self.flops_per_cycle_per_core

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.efficiency


#: Intel Xeon Gold 5220: 18 cores @ 2.2 GHz, single AVX-512 FMA pipe,
#: 6-channel DDR4-2666, 125 W TDP.  ``efficiency`` calibrated for
#: TensorFlow-GraphSAGE-style GNN inference (see module docstring).
XEON_GOLD_5220 = CPUConfig(
    name="Intel Xeon Gold 5220",
    cores=18,
    frequency_hz=2.2e9,
    flops_per_cycle_per_core=32.0,
    memory_bandwidth_bytes_per_s=128e9,
    efficiency=0.06,
    power_watts=125.0,
)


@dataclass(frozen=True)
class CPUEstimate:
    """Latency estimate of a workload on the CPU baseline."""

    workload_model: str
    dataset: str
    config: CPUConfig
    latency_seconds: float
    num_nodes: int
    per_phase_seconds: Dict[str, float]

    @property
    def throughput_nodes_per_second(self) -> float:
        return self.num_nodes / self.latency_seconds if self.latency_seconds > 0 else float("inf")


class CPURooflineModel:
    """Roofline latency model of uncompressed GNN inference on a CPU."""

    def __init__(self, config: CPUConfig = XEON_GOLD_5220) -> None:
        self.config = config

    def _phase_seconds(self, workload: GNNWorkload, phase: Phase) -> float:
        flops = workload.total_flops(phase)
        traffic = workload.total_bytes(phase)
        compute_time = flops / self.config.effective_flops if flops else 0.0
        memory_time = traffic / self.config.memory_bandwidth_bytes_per_s if traffic else 0.0
        return max(compute_time, memory_time)

    def estimate(self, workload: GNNWorkload, num_nodes: int | None = None) -> CPUEstimate:
        per_phase = {
            "aggregation": self._phase_seconds(workload, "aggregation"),
            "combination": self._phase_seconds(workload, "combination"),
        }
        return CPUEstimate(
            workload_model=workload.model,
            dataset=workload.dataset,
            config=self.config,
            latency_seconds=sum(per_phase.values()),
            num_nodes=num_nodes if num_nodes is not None else workload.num_nodes,
            per_phase_seconds=per_phase,
        )
