"""A mergeable metrics registry: thread-safe counters, gauges, log histograms.

Design constraints (they all come from the serving plane's roadmap):

* **Fixed-size state.**  ``LogHistogram`` holds a fixed array of log-spaced
  bucket counts plus a running sum, so p50/p95/p99/p99.9 come from
  O(buckets) work and memory no matter how many observations were recorded —
  unlike ``np.percentile`` over an unbounded latency list, which is O(n)
  memory and O(n log n) per snapshot.
* **Mergeable by addition.**  Counters, gauge sums and histogram bucket
  counts of two registries (two workers, two processes, two shared-memory
  segments) combine element-wise: ``registry.merge(other)`` adds every
  sample, and a snapshot of the merged registry equals the snapshot of one
  registry that saw both streams.  This is the contract the multi-process
  serving plane (ROADMAP item 1) will ship per-process registries over.
* **Cheap on the hot path.**  A counter increment is one lock + one add;
  batched histogram observation (``observe_many``) is one vectorised
  ``searchsorted`` + ``bincount`` per flush, not one Python call per request.
* **Label-addressed.**  Every metric is a *family* (name, help, kind, label
  names); ``family.labels("0", "completed")`` resolves a child — per-shard /
  per-replica / per-stage series share one family and export together.

``NullRegistry`` (and its null metric objects) keeps every call site valid
while compiling telemetry out: the serving engine built with
``telemetry="off"`` runs the exact PR-6 hot path with only no-op calls left
behind — the baseline the overhead gates in
``benchmarks/bench_serving_telemetry.py`` measure against.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullMetric",
    "NullFamily",
    "NullRegistry",
    "default_latency_buckets",
]

KINDS = ("counter", "gauge", "histogram")


def default_latency_buckets(
    lo: float = 1e-7, hi: float = 1e2, per_decade: int = 9
) -> np.ndarray:
    """Log-spaced bucket edges for second-valued latencies.

    The default spans 100 ns .. 100 s with nine buckets per decade, so a
    quantile read from bucket edges is within one bucket's relative width
    (``10**(1/9) ~ 1.29x``) of the exact order statistic — tight enough to
    tell p99 regressions apart, small enough (82 int64 counts) to snapshot
    and merge for free.
    """
    if not 0 < lo < hi:
        raise ValueError("bucket range needs 0 < lo < hi")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    decades = math.log10(hi / lo)
    n = max(int(round(decades * per_decade)), 1)
    exponents = np.arange(n + 1, dtype=np.float64) / per_decade
    return lo * np.power(10.0, exponents)


class Counter:
    """A monotonically increasing count (one labelled child of a family)."""

    kind = "counter"
    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self.value += amount

    def get(self) -> int:
        return self.value

    def merge_from(self, other: "Counter") -> None:
        with self._lock:
            self.value += other.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def snapshot(self):
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, breaker state, ...)."""

    kind = "gauge"
    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def get(self) -> float:
        return self.value

    def merge_from(self, other: "Gauge") -> None:
        # Gauges merge by addition too: per-process queue depths, cache
        # occupancies and mirrored totals sum to the fleet-wide value.
        with self._lock:
            self.value += other.value

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0

    def snapshot(self):
        return self.value


class LogHistogram:
    """Fixed log-spaced buckets: O(buckets) state, quantiles, exact merges.

    ``edges`` are the bucket upper bounds (ascending).  Bucket 0 counts
    observations ``<= edges[0]`` (underflow), bucket ``i`` counts
    ``edges[i-1] < v <= edges[i]``, and the final bucket counts overflow
    ``> edges[-1]`` — so ``counts`` has ``len(edges) + 1`` entries and two
    histograms over the same edges merge by adding their count arrays.
    """

    kind = "histogram"
    __slots__ = ("_lock", "edges", "_edge_list", "counts", "sum", "count")

    def __init__(self, edges: Optional[np.ndarray] = None) -> None:
        self._lock = threading.Lock()
        self.edges = (
            np.asarray(edges, dtype=np.float64)
            if edges is not None
            else default_latency_buckets()
        )
        if self.edges.ndim != 1 or len(self.edges) < 1:
            raise ValueError("histogram edges must be a non-empty 1-D array")
        if np.any(np.diff(self.edges) <= 0):
            raise ValueError("histogram edges must be strictly increasing")
        # Plain-list mirror of the edges: bisect on a list is ~10x cheaper
        # than a scalar np.searchsorted, and observe() sits on the hot path
        # (every stage-scope exit feeds a histogram).
        self._edge_list = self.edges.tolist()
        self.counts = np.zeros(len(self.edges) + 1, dtype=np.int64)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self._edge_list, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def observe_many(self, values) -> None:
        """Vectorised batch observation (one searchsorted + bincount)."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        indices = np.searchsorted(self.edges, values, side="left")
        binned = np.bincount(indices, minlength=len(self.counts))
        with self._lock:
            self.counts += binned
            self.sum += float(values.sum())
            self.count += int(values.size)

    # -- reads -----------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-th percentile (``q`` in [0, 100]).

        Returns the geometric midpoint of the bucket holding the target rank
        — within one bucket's relative width of the exact order statistic.
        ``nan`` when nothing was observed.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be within [0, 100]")
        with self._lock:
            total = self.count
            if total == 0:
                return float("nan")
            target = max(int(math.ceil(q / 100.0 * total)), 1)
            cumulative = np.cumsum(self.counts)
            bucket = int(np.searchsorted(cumulative, target, side="left"))
        if bucket == 0:
            return float(self.edges[0])
        if bucket >= len(self.edges):
            return float(self.edges[-1])
        return float(math.sqrt(self.edges[bucket - 1] * self.edges[bucket]))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def merge_from(self, other: "LogHistogram") -> None:
        if len(other.counts) != len(self.counts) or not np.array_equal(
            other.edges, self.edges
        ):
            raise ValueError("cannot merge histograms with different bucket edges")
        with self._lock:
            self.counts += other.counts
            self.sum += other.sum
            self.count += other.count

    def reset(self) -> None:
        with self._lock:
            self.counts[:] = 0
            self.sum = 0.0
            self.count = 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": int(self.count),
                "sum": float(self.sum),
                "edges": self.edges.tolist(),
                "counts": self.counts.tolist(),
            }


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": LogHistogram}


class MetricFamily:
    """One named metric with a fixed label schema and per-label-value children."""

    __slots__ = ("name", "help", "kind", "label_names", "_children", "_lock", "_edges")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Sequence[str] = (),
        edges: Optional[np.ndarray] = None,
    ) -> None:
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        self.name = name
        self.help = help
        self.kind = kind
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()
        self._edges = edges

    def labels(self, *values: str, **named: str):
        """Resolve (creating on first use) the child for one label combination.

        Accepts the label values positionally or by name; an unlabelled
        family resolves its single anonymous child with no arguments.
        """
        if named:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(str(named[name]) for name in self.label_names)
            except KeyError as missing:
                raise ValueError(f"missing label {missing} for {self.name}") from None
            if len(named) != len(self.label_names):
                raise ValueError(f"unexpected labels for {self.name}: {sorted(named)}")
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, got {values!r}"
            )
        child = self._children.get(values)
        if child is None:
            with self._lock:
                child = self._children.get(values)
                if child is None:
                    if self.kind == "histogram":
                        child = LogHistogram(self._edges)
                    else:
                        child = _METRIC_TYPES[self.kind]()
                    self._children[values] = child
        return child

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        """``(label_values, child)`` pairs in insertion order."""
        with self._lock:
            return list(self._children.items())

    def total(self) -> float:
        """Sum of all children's values (counters/gauges only)."""
        if self.kind == "histogram":
            raise TypeError("histogram families have no scalar total")
        return sum(child.value for _, child in self.samples())

    def reset(self) -> None:
        for _, child in self.samples():
            child.reset()

    def merge_from(self, other: "MetricFamily") -> None:
        for label_values, child in other.samples():
            self.labels(*label_values).merge_from(child)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "samples": [
                {"labels": list(values), "value": child.snapshot()}
                for values, child in self.samples()
            ],
        }


class MetricsRegistry:
    """A named collection of metric families; the unit of export and merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, MetricFamily] = {}

    # -- registration ------------------------------------------------------------

    def _register(
        self,
        name: str,
        help: str,
        kind: str,
        label_names: Sequence[str],
        edges: Optional[np.ndarray] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help, kind, label_names, edges=edges)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
                f"{family.label_names}, not {kind}{tuple(label_names)}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "counter", labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> MetricFamily:
        return self._register(name, help, "gauge", labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        edges: Optional[np.ndarray] = None,
    ) -> MetricFamily:
        return self._register(name, help, "histogram", labels, edges=edges)

    # -- reads / plumbing --------------------------------------------------------

    def collect(self) -> List[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> Optional[MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-serialisable view of every family's every sample."""
        return {family.name: family.snapshot() for family in self.collect()}

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s samples into this registry by addition (in place).

        Families missing here are created with ``other``'s schema, so merging
        per-process registries into a fresh one reproduces the union.
        Returns ``self`` for chaining.
        """
        for family in other.collect():
            edges = None
            if family.kind == "histogram":
                for _, child in family.samples():
                    edges = child.edges
                    break
                if edges is None:
                    edges = family._edges
            mine = self._register(
                family.name, family.help, family.kind, family.label_names, edges=edges
            )
            mine.merge_from(family)
        return self

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        """Fold a :meth:`snapshot`-shaped dict into this registry by addition.

        The wire-format twin of :meth:`merge` for registries that live in
        another *process*: a worker ships ``registry.snapshot()`` (a plain
        JSON-safe dict) over its control channel, then resets, and the parent
        folds the delta in here — same addition semantics, no pickled locks.
        Returns ``self`` for chaining.
        """
        for name, family_snap in snapshot.items():
            kind = family_snap["kind"]
            samples = family_snap.get("samples", ())
            edges = None
            if kind == "histogram":
                for sample in samples:
                    edges = np.asarray(sample["value"]["edges"], dtype=np.float64)
                    break
            mine = self._register(
                name,
                family_snap.get("help", ""),
                kind,
                tuple(family_snap.get("labels", ())),
                edges=edges,
            )
            for sample in samples:
                child = mine.labels(*sample["labels"])
                value = sample["value"]
                if kind == "histogram":
                    other = LogHistogram(np.asarray(value["edges"], dtype=np.float64))
                    other.counts[:] = np.asarray(value["counts"], dtype=np.int64)
                    other.sum = float(value["sum"])
                    other.count = int(value["count"])
                    child.merge_from(other)
                elif kind == "counter":
                    child.inc(int(value))
                else:  # gauge
                    child.inc(float(value))
        return self

    def reset(self) -> None:
        """Zero every sample (bucket counts, sums, values); keep the schema."""
        for family in self.collect():
            family.reset()


# ---------------------------------------------------------------------------
# Null objects: telemetry compiled out, call sites untouched.
# ---------------------------------------------------------------------------


class NullMetric:
    """Accepts every metric call and does nothing (shared singleton)."""

    __slots__ = ()
    kind = "null"
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def get(self) -> int:
        return 0

    def quantile(self, q: float) -> float:
        return float("nan")

    def reset(self) -> None:
        pass

    def snapshot(self):
        return 0


NULL_METRIC = NullMetric()


class NullFamily:
    """A family whose every child is the shared :data:`NULL_METRIC`."""

    __slots__ = ()
    kind = "null"
    label_names = ()

    def labels(self, *values: str, **named: str) -> NullMetric:
        return NULL_METRIC

    def samples(self) -> List[Tuple[Tuple[str, ...], object]]:
        return []

    def total(self) -> float:
        return 0.0

    def reset(self) -> None:
        pass


NULL_FAMILY = NullFamily()


class NullRegistry:
    """Registers nothing, exports nothing; every family is the null family."""

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> NullFamily:
        return NULL_FAMILY

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> NullFamily:
        return NULL_FAMILY

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        edges: Optional[np.ndarray] = None,
    ) -> NullFamily:
        return NULL_FAMILY

    def collect(self) -> List[MetricFamily]:
        return []

    def get(self, name: str) -> None:
        return None

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}

    def merge(self, other) -> "NullRegistry":
        return self

    def merge_snapshot(self, snapshot) -> "NullRegistry":
        return self

    def reset(self) -> None:
        pass
