"""Per-request tracing: the span story behind every terminal state.

The aggregate counters say *how many* requests expired or failed over; the
tracer says *why this one did*.  Every :class:`~repro.serving.InferenceRequest`
gets a root span from ``submit`` to its terminal state, annotated with its
queue wait (dequeue time) and linked — through the batch it flushed in — to
**attempt records**: one per dispatch attempt of the batch, carrying the
replica id, the circuit-breaker state at dispatch, the injected-fault kind
(if any), the backoff the retry path slept, and a per-stage time breakdown of
successful attempts.  Attempts are recorded at *batch* granularity, exactly
the granularity at which the engine consults the fault plan and the
:class:`~repro.serving.health.HealthTracker` — so failed attempt records and
the tracker's per-replica failure counts match one for one.

Memory is bounded: finished traces and attempt records live in ring buffers
of ``capacity`` entries (oldest dropped first, ``dropped_*`` counters say how
many).  When tracing is off the engine holds ``tracer = None`` and every call
site is a single ``is not None`` check — O(1), no allocation, no lock.

Records are plain dicts (not dataclasses): they are built on the serving hot
path, exported as JSON, and merged into Chrome trace events — a dict is the
cheapest thing that does all three.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional, Sequence

__all__ = ["RequestTracer"]


class RequestTracer:
    """Bounded ring of request root spans + batch-level attempt records."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("trace capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._active: Dict[int, dict] = {}
        self._finished: deque = deque(maxlen=self.capacity)
        self._attempts: deque = deque(maxlen=self.capacity)
        self.dropped_traces = 0
        self.dropped_attempts = 0

    # -- request lifecycle -------------------------------------------------------

    def on_submit(self, request_id: int, node: int, shard_id: int, now: float) -> None:
        """Open the root span (before admission — rejects are traced too).

        Lock-free: one dict store, atomic under the GIL.  Request ids are
        unique, so concurrent submitters never touch the same key, and the
        span is invisible to readers until :meth:`on_terminal` closes it.
        """
        self._active[request_id] = {
            "request_id": request_id,
            "node": node,
            "shard": shard_id,
            "submit": now,
            "dequeue": None,
            "status": None,
            "end": None,
            "worker_id": None,
            "retries": 0,
            "stale": False,
        }

    def on_dequeue(self, request_ids: Sequence[int], now: float) -> None:
        """The batch left its queue: close every member's queue-wait span.

        Lock-free: each request is owned by exactly one in-flight batch, so
        no other thread writes these traces concurrently.
        """
        active = self._active
        for request_id in request_ids:
            trace = active.get(request_id)
            if trace is not None and trace["dequeue"] is None:
                trace["dequeue"] = now

    def on_terminal(
        self,
        request_id: int,
        status: str,
        now: float,
        worker_id: Optional[int] = None,
        retries: int = 0,
        stale: bool = False,
    ) -> None:
        """Close the root span with the request's one terminal state."""
        trace = self._active.pop(request_id, None)  # atomic; exactly-once
        if trace is None:
            return  # submitted before tracing was enabled/reset
        trace["status"] = status
        trace["end"] = now
        trace["worker_id"] = worker_id
        trace["retries"] = retries
        trace["stale"] = stale
        with self._lock:  # only the ring + its drop counter need the lock
            if len(self._finished) == self._finished.maxlen:
                self.dropped_traces += 1
            self._finished.append(trace)

    # -- dispatch attempts (batch granularity) -----------------------------------

    def attempt(
        self,
        shard_id: int,
        worker_id: Optional[int],
        request_ids: Sequence[int],
        index: int,
        breaker: Optional[str],
        start: float,
    ) -> dict:
        """Open attempt ``index`` of a batch dispatch; returns the open record.

        The record is not visible in :attr:`attempts` until
        :meth:`end_attempt` closes it — a crash between the two leaves no
        half-open record behind.
        """
        return {
            "shard": shard_id,
            "worker_id": worker_id,
            "request_ids": list(request_ids),
            "attempt": index,
            "breaker": breaker,
            "start": start,
            "end": None,
            "outcome": None,
            "fault": None,
            "backoff": 0.0,
            "stages": None,
        }

    def end_attempt(
        self,
        record: dict,
        now: float,
        outcome: str,
        fault: Optional[str] = None,
        backoff: float = 0.0,
        stages: Optional[Dict[str, float]] = None,
    ) -> None:
        """Close an attempt: ``ok`` | ``error`` | ``degraded`` (+ fault kind)."""
        record["end"] = now
        record["outcome"] = outcome
        record["fault"] = fault
        record["backoff"] = backoff
        if stages:
            record["stages"] = {name: value for name, value in stages.items() if value > 0}
        with self._lock:
            if len(self._attempts) == self._attempts.maxlen:
                self.dropped_attempts += 1
            self._attempts.append(record)

    # -- reads -------------------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    def finished(self) -> List[dict]:
        """Closed root spans, oldest first (bounded by ``capacity``)."""
        with self._lock:
            return list(self._finished)

    def attempts(self) -> List[dict]:
        """Closed attempt records, oldest first (bounded by ``capacity``)."""
        with self._lock:
            return list(self._attempts)

    def failed_attempts_by_worker(self) -> Dict[int, int]:
        """``worker_id -> failed dispatch attempts`` seen by the tracer.

        Matches :class:`~repro.serving.health.HealthTracker` failure counts
        exactly (both count per batch dispatch) while the ring has not
        dropped records.
        """
        counts: Dict[int, int] = {}
        for record in self.attempts():
            if record["outcome"] == "error" and record["worker_id"] is not None:
                counts[record["worker_id"]] = counts.get(record["worker_id"], 0) + 1
        return counts

    def reset(self) -> None:
        """Drop finished rings and open spans (fresh measurement window)."""
        with self._lock:
            self._active.clear()
            self._finished.clear()
            self._attempts.clear()
            self.dropped_traces = 0
            self.dropped_attempts = 0
