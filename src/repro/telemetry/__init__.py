"""Observability plane: a mergeable metrics registry + per-request tracing.

Three pieces, each usable on its own:

* :mod:`repro.telemetry.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`LogHistogram` families in a
  :class:`MetricsRegistry`.  Histograms keep fixed log-spaced buckets, so
  p50/p95/p99/p99.9 come from O(buckets) state and two registries (two
  processes, eventually) merge by addition.
* :mod:`repro.telemetry.tracer` — a :class:`RequestTracer` recording one
  root span per request (submit → queue wait → terminal state) plus
  batch-level dispatch-attempt records (replica, breaker state, injected
  fault, backoff, stage breakdown) into bounded rings.
* :mod:`repro.telemetry.exporters` — Prometheus text exposition, JSON
  metric snapshots, and Chrome trace-event JSON off those two.

:class:`Telemetry` bundles them behind one mode switch:

``"off"``
    Null registry, no tracer: every instrumentation call site degrades to a
    no-op or an ``is not None`` check.  This is the measured baseline the
    overhead gates in ``benchmarks/bench_serving_telemetry.py`` compare
    against — note the engine's ``ServerStats`` counters read zero in this
    mode (they are views over the registry).
``"metrics"`` (default)
    Real registry, no tracer: labelled counters and histograms with no
    per-request record keeping.
``"trace"``
    Registry plus the request tracer.

``collectors`` are pull hooks: components whose counters live elsewhere
(embedding caches, halo store, plan caches, executor peaks) register a
callback that mirrors their state into registry gauges, and every export
runs the callbacks first — so a scrape always sees fresh values without the
hot path paying for gauge writes.
"""

from __future__ import annotations

import json
import pathlib
from typing import Callable, List, Optional, Union

from .exporters import chrome_trace, metrics_json, prometheus_text
from .metrics import (
    Counter,
    Gauge,
    LogHistogram,
    MetricFamily,
    MetricsRegistry,
    NullFamily,
    NullMetric,
    NullRegistry,
    default_latency_buckets,
)
from .tracer import RequestTracer

__all__ = [
    "TELEMETRY_MODES",
    "Telemetry",
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullFamily",
    "NullMetric",
    "NullRegistry",
    "RequestTracer",
    "default_latency_buckets",
    "prometheus_text",
    "metrics_json",
    "chrome_trace",
]

TELEMETRY_MODES = ("off", "metrics", "trace")


class Telemetry:
    """One handle over the registry, the tracer and the exporters."""

    def __init__(self, mode: str = "metrics", trace_capacity: int = 4096) -> None:
        if mode not in TELEMETRY_MODES:
            raise ValueError(f"telemetry mode must be one of {TELEMETRY_MODES}, got {mode!r}")
        self.mode = mode
        self.registry = NullRegistry() if mode == "off" else MetricsRegistry()
        self.tracer: Optional[RequestTracer] = (
            RequestTracer(trace_capacity) if mode == "trace" else None
        )
        self._collectors: List[Callable[[], None]] = []

    @property
    def enabled(self) -> bool:
        """Is any telemetry recorded at all?"""
        return self.mode != "off"

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    def add_collector(self, collector: Callable[[], None]) -> None:
        """Register a pull hook run before every export/snapshot."""
        self._collectors.append(collector)

    def _collect(self) -> None:
        for collector in self._collectors:
            collector()

    # -- exports -----------------------------------------------------------------

    def prometheus_text(self) -> str:
        self._collect()
        return prometheus_text(self.registry)

    def metrics_json(self, indent: Optional[int] = None) -> str:
        self._collect()
        return metrics_json(self.registry, indent=indent)

    def snapshot(self) -> dict:
        self._collect()
        return self.registry.snapshot()

    def chrome_trace(self) -> dict:
        if self.tracer is None:
            raise RuntimeError(
                'no tracer active — build the server with telemetry="trace" '
                "to record request spans"
            )
        return chrome_trace(self.tracer)

    def write_metrics(self, path: Union[str, "pathlib.Path"]) -> None:
        """Write the registry to ``path``: Prometheus text for ``.prom`` /
        ``.txt``, a JSON snapshot otherwise."""
        path = pathlib.Path(path)
        if path.suffix in (".prom", ".txt"):
            path.write_text(self.prometheus_text())
        else:
            path.write_text(self.metrics_json(indent=2))

    def write_trace(self, path: Union[str, "pathlib.Path"]) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        pathlib.Path(path).write_text(json.dumps(self.chrome_trace()))

    def reset(self) -> None:
        """Zero the registry and drop recorded spans (fresh window)."""
        self.registry.reset()
        if self.tracer is not None:
            self.tracer.reset()
