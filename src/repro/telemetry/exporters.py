"""Export surfaces: Prometheus text, JSON snapshots, Chrome trace events.

Three formats, three consumers:

* :func:`prometheus_text` — the text exposition format every Prometheus
  scraper (and ``promtool``) understands: ``# HELP`` / ``# TYPE`` headers,
  one sample line per labelled child, histograms as cumulative
  ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
* :func:`metrics_json` — the registry snapshot as one JSON document
  (bucket counts included), for offline diffing and the bench artifacts.
* :func:`chrome_trace` — the tracer's span rings as Chrome trace-event JSON
  (the ``chrome://tracing`` / Perfetto "JSON Array Format"): requests are
  complete (``"ph": "X"``) events on pid 0 with one row (tid) per shard,
  dispatch attempts are complete events on pid 1 with one row per replica,
  and metadata events name every row.  Timestamps are clock seconds scaled
  to microseconds; with a ``ManualClock`` the trace is deterministic.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["prometheus_text", "metrics_json", "chrome_trace"]


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    # Prometheus wants plain decimal or scientific notation; repr of a python
    # int/float satisfies that, but normalise the non-finite spellings.
    if isinstance(value, float):
        if value != value:
            return "NaN"
        if value == float("inf"):
            return "+Inf"
        if value == float("-inf"):
            return "-Inf"
    return repr(value)


def _label_str(names, values, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"' for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry) -> str:
    """The registry in the Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for values, child in family.samples():
            if family.kind == "histogram":
                cumulative = 0
                for edge, count in zip(child.edges, child.counts):
                    cumulative += int(count)
                    labels = _label_str(
                        family.label_names, values, extra=f'le="{_format_value(float(edge))}"'
                    )
                    lines.append(f"{family.name}_bucket{labels} {cumulative}")
                labels = _label_str(family.label_names, values, extra='le="+Inf"')
                lines.append(f"{family.name}_bucket{labels} {int(child.count)}")
                labels = _label_str(family.label_names, values)
                lines.append(f"{family.name}_sum{labels} {_format_value(float(child.sum))}")
                lines.append(f"{family.name}_count{labels} {int(child.count)}")
            else:
                labels = _label_str(family.label_names, values)
                lines.append(f"{family.name}{labels} {_format_value(child.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def metrics_json(registry, indent: Optional[int] = None) -> str:
    """The registry snapshot (``registry.snapshot()``) as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


_REQUEST_PID = 0
_WORKER_PID = 1


def _microseconds(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace(tracer) -> dict:
    """Tracer rings → Chrome trace-event JSON (load in Perfetto / chrome://tracing).

    Every closed root span becomes one complete event per request on the
    "requests" process (rows = shards), with a nested "queue_wait" child when
    the request was ever dequeued; every attempt record becomes a complete
    event on the "workers" process (rows = replicas; degraded attempts land
    on a ``degraded`` row).  Zero-duration spans are widened to one
    microsecond so viewers render them.
    """
    events: List[dict] = []
    shard_rows: Dict[int, None] = {}
    worker_rows: Dict[object, None] = {}
    for trace in tracer.finished():
        shard_rows.setdefault(trace["shard"], None)
        start = _microseconds(trace["submit"])
        duration = max(_microseconds(trace["end"] - trace["submit"]), 1.0)
        args = {
            "request_id": trace["request_id"],
            "node": trace["node"],
            "status": trace["status"],
            "retries": trace["retries"],
        }
        if trace["worker_id"] is not None:
            args["worker_id"] = trace["worker_id"]
        if trace["stale"]:
            args["stale"] = True
        events.append(
            {
                "name": f"request {trace['request_id']} [{trace['status']}]",
                "cat": "request",
                "ph": "X",
                "pid": _REQUEST_PID,
                "tid": trace["shard"],
                "ts": start,
                "dur": duration,
                "args": args,
            }
        )
        if trace["dequeue"] is not None:
            events.append(
                {
                    "name": "queue_wait",
                    "cat": "queue",
                    "ph": "X",
                    "pid": _REQUEST_PID,
                    "tid": trace["shard"],
                    "ts": start,
                    "dur": max(_microseconds(trace["dequeue"] - trace["submit"]), 1.0),
                    "args": {"request_id": trace["request_id"]},
                }
            )
    for record in tracer.attempts():
        row = record["worker_id"] if record["worker_id"] is not None else "degraded"
        worker_rows.setdefault(row, None)
        tid = row if isinstance(row, int) else 9999
        args = {
            "shard": record["shard"],
            "attempt": record["attempt"],
            "outcome": record["outcome"],
            "batch_size": len(record["request_ids"]),
            "request_ids": record["request_ids"],
        }
        if record["breaker"] is not None:
            args["breaker"] = record["breaker"]
        if record["fault"] is not None:
            args["fault"] = record["fault"]
        if record["backoff"]:
            args["backoff_s"] = record["backoff"]
        if record["stages"]:
            args["stages_s"] = record["stages"]
        events.append(
            {
                "name": f"attempt#{record['attempt']} [{record['outcome']}]",
                "cat": "dispatch",
                "ph": "X",
                "pid": _WORKER_PID,
                "tid": tid,
                "ts": _microseconds(record["start"]),
                "dur": max(_microseconds(record["end"] - record["start"]), 1.0),
                "args": args,
            }
        )
    metadata: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _REQUEST_PID,
            "tid": 0,
            "args": {"name": "requests"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": _WORKER_PID,
            "tid": 0,
            "args": {"name": "workers"},
        },
    ]
    for shard in sorted(shard_rows):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _REQUEST_PID,
                "tid": shard,
                "args": {"name": f"shard {shard}"},
            }
        )
    for row in sorted(worker_rows, key=str):
        tid = row if isinstance(row, int) else 9999
        name = f"replica {row}" if isinstance(row, int) else "degraded path"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _WORKER_PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_traces": tracer.dropped_traces,
            "dropped_attempts": tracer.dropped_attempts,
        },
    }
