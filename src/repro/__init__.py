"""BlockGNN reproduction: block-circulant GNN compression + accelerator co-design.

This package reproduces *BlockGNN: Towards Efficient GNN Acceleration Using
Block-Circulant Weight Matrices* (Zhou et al., DAC 2021) end-to-end in pure
Python/NumPy:

* ``repro.tensor`` / ``repro.nn`` — a small autograd + layer library used to
  train the GNN models (the environment has no PyTorch);
* ``repro.compression`` — block-circulant weight matrices, FFT kernels
  (Algorithm 1), compression ratios and the model-conversion API;
* ``repro.graph`` — graph data structures, synthetic stand-ins for the
  Cora/Citeseer/Pubmed/Reddit datasets, neighbour sampling and partitioning;
* ``repro.models`` — GCN, GraphSAGE-Pool, G-GCN and GAT with dense or
  block-circulant weights, plus a mini-batch trainer;
* ``repro.workloads`` / ``repro.profiling`` — analytical workload models and
  the Table II profiling study;
* ``repro.hardware`` — the CirCore pipeline, VPU, buffers, the BlockGNN
  accelerator (functional + analytical), and the HyGCN / CPU baselines;
* ``repro.perfmodel`` — the performance & resource model (Equations 3–8) and
  the design-space exploration behind Tables V/VI;
* ``repro.serving`` — the online inference engine: micro-batching,
  partition-sharded workers with halos, a versioned embedding cache and
  latency/throughput metrics;
* ``repro.experiments`` — one harness per paper table/figure, shared by the
  ``benchmarks/`` suite and the ``examples/`` scripts.
"""

from . import (
    compression,
    experiments,
    graph,
    hardware,
    models,
    nn,
    perfmodel,
    profiling,
    serving,
    tensor,
    workloads,
)

__version__ = "1.1.0"

__all__ = [
    "tensor",
    "nn",
    "compression",
    "graph",
    "models",
    "workloads",
    "profiling",
    "hardware",
    "perfmodel",
    "serving",
    "experiments",
    "__version__",
]
