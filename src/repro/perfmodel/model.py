"""The performance model of Section III-D (Equations 3–7).

Given a :class:`repro.workloads.GNNWorkload` and a
:class:`repro.hardware.config.CirCoreConfig`, estimate how many cycles the
pipelined CirCore + VPU need per target node and in total.

For every weight-matrix product of shape ``N x M`` (block size ``n``,
``p = ceil(N/n)``, ``q = ceil(M/n)``) that a layer performs ``count`` times
per node, the three CirCore stages and the VPU contribute:

* FFT stage   (Eq. 3):  ``alpha(n) * ceil(count * q / x)``
* MAC stage   (Eq. 4):  ``count * ceil(q / r) * ceil(p / c) * ceil(n / l)``
* IFFT stage  (Eq. 5):  ``alpha(n) * ceil(count * p / y)``
* VPU         (Eq. 6):  ``ceil(elements / (m * 16))`` for the element-wise work

and, because the stages are pipelined, the per-node cycles of a layer are the
*maximum* over the four stages of their summed work (the paper's
``cycle(k) = max(...)``).  The total is ``sum_k cycle(k) * |V|`` (Eq. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.config import CirCoreConfig, HardwareConstants, ZC706
from ..workloads.spec import GNNWorkload, LayerWorkload, Phase

__all__ = ["StageCycles", "LayerEstimate", "PerformanceEstimate", "stage_cycles_per_node", "estimate_performance"]

_ALL_PHASES: Tuple[Phase, ...] = ("aggregation", "combination")


@dataclass(frozen=True)
class StageCycles:
    """Per-node cycle counts of the four pipeline resources."""

    fft: float
    mac: float
    ifft: float
    vpu: float

    @property
    def bottleneck(self) -> float:
        """The pipelined per-node cycles (Eq. 'cycle(k) = max ...')."""
        return max(self.fft, self.mac, self.ifft, self.vpu)

    @property
    def bottleneck_stage(self) -> str:
        stages = {"fft": self.fft, "mac": self.mac, "ifft": self.ifft, "vpu": self.vpu}
        return max(stages, key=stages.get)

    def as_dict(self) -> Dict[str, float]:
        return {"fft": self.fft, "mac": self.mac, "ifft": self.ifft, "vpu": self.vpu}


@dataclass(frozen=True)
class LayerEstimate:
    """Cycle estimate of one GNN layer."""

    layer_index: int
    stages: StageCycles

    @property
    def cycles_per_node(self) -> float:
        return self.stages.bottleneck


@dataclass(frozen=True)
class PerformanceEstimate:
    """End-to-end cycle/latency estimate of a GNN task on BlockGNN."""

    workload_model: str
    dataset: str
    config: CirCoreConfig
    layers: Tuple[LayerEstimate, ...]
    num_nodes: int
    #: total DRAM feature traffic of the task (bytes) and the available
    #: bandwidth; node prefetching overlaps transfers with compute, so the
    #: end-to-end latency is the maximum of the compute and memory times.
    dram_bytes: float = 0.0
    dram_bandwidth: float = ZC706.dram_bandwidth_bytes_per_s

    @property
    def cycles_per_node(self) -> float:
        return sum(layer.cycles_per_node for layer in self.layers)

    @property
    def total_cycles(self) -> float:
        """Equation 7: ``sum_k cycle(k) * |V|``."""
        return self.cycles_per_node * self.num_nodes

    @property
    def compute_seconds(self) -> float:
        return self.total_cycles / self.config.frequency_hz

    @property
    def memory_seconds(self) -> float:
        if self.dram_bandwidth <= 0:
            return 0.0
        return self.dram_bytes / self.dram_bandwidth

    @property
    def latency_seconds(self) -> float:
        """Compute/memory roofline: prefetching hides the smaller of the two."""
        return max(self.compute_seconds, self.memory_seconds)

    @property
    def throughput_nodes_per_second(self) -> float:
        latency = self.latency_seconds
        return self.num_nodes / latency if latency > 0 else float("inf")

    def bottleneck_stages(self) -> List[str]:
        return [layer.stages.bottleneck_stage for layer in self.layers]

    def describe(self) -> str:
        params = self.config.describe()
        return (
            f"{self.workload_model}/{self.dataset} on x={params['x']} y={params['y']} "
            f"r={params['r']} c={params['c']} l={params['l']} m={params['m']}: "
            f"{self.total_cycles / 1e6:.1f}M cycles, {self.latency_seconds * 1e3:.2f} ms"
        )


def _matvec_stage_cycles(
    out_features: int,
    in_features: int,
    count: float,
    config: CirCoreConfig,
    constants: HardwareConstants,
) -> Tuple[float, float, float]:
    """FFT / MAC / IFFT cycles for ``count`` products of an ``N x M`` matrix per node."""
    n = config.block_size
    p = math.ceil(out_features / n)
    q = math.ceil(in_features / n)
    alpha = constants.fft_cycles(n)
    fft = alpha * math.ceil(count * q / config.fft_channels)
    mac = count * math.ceil(q / config.systolic_rows) * math.ceil(p / config.systolic_cols) * math.ceil(
        n / config.pe_parallelism
    )
    ifft = alpha * math.ceil(count * p / config.ifft_channels)
    return fft, mac, ifft


def stage_cycles_per_node(
    layer: LayerWorkload,
    config: CirCoreConfig,
    constants: HardwareConstants = ZC706,
    phases: Sequence[Phase] = _ALL_PHASES,
) -> StageCycles:
    """Equations 3–6 for one layer, summed over the selected phases."""
    fft_total = 0.0
    mac_total = 0.0
    ifft_total = 0.0
    vpu_elements = 0.0
    for op in layer.matvecs:
        if op.phase not in phases:
            continue
        fft, mac, ifft = _matvec_stage_cycles(
            op.out_features, op.in_features, op.count_per_node, config, constants
        )
        fft_total += fft
        mac_total += mac
        ifft_total += ifft
    for op in layer.vector_ops:
        if op.phase in phases:
            vpu_elements += op.elements_per_node
    vpu_width = config.vpu_lanes * constants.vpu_simd_width
    vpu_total = math.ceil(vpu_elements / vpu_width) if vpu_elements else 0.0
    return StageCycles(fft=fft_total, mac=mac_total, ifft=ifft_total, vpu=float(vpu_total))


def estimate_performance(
    workload: GNNWorkload,
    config: CirCoreConfig,
    constants: HardwareConstants = ZC706,
    phases: Sequence[Phase] = _ALL_PHASES,
    num_nodes: Optional[int] = None,
) -> PerformanceEstimate:
    """Estimate the cycles/latency of running ``workload`` on ``config``.

    ``phases`` may be restricted to ``("aggregation",)`` to reproduce the
    paper's Table V, which uses the aggregation-dominant approximation for
    GS-Pool.  ``num_nodes`` overrides the workload's node count (used when a
    graph is partitioned across compute passes).
    """
    layer_estimates = tuple(
        LayerEstimate(layer.layer_index, stage_cycles_per_node(layer, config, constants, phases))
        for layer in workload.layers
    )
    nodes = num_nodes if num_nodes is not None else workload.num_nodes
    scale = nodes / workload.num_nodes if workload.num_nodes else 1.0
    traffic = sum(workload.total_bytes(phase) for phase in phases) * scale
    return PerformanceEstimate(
        workload_model=workload.model,
        dataset=workload.dataset,
        config=config,
        layers=layer_estimates,
        num_nodes=nodes,
        dram_bytes=traffic,
        dram_bandwidth=constants.dram_bandwidth_bytes_per_s,
    )
