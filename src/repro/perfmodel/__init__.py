"""Performance & resource model and design-space exploration (Section III-D)."""

from .model import (
    LayerEstimate,
    PerformanceEstimate,
    StageCycles,
    estimate_performance,
    stage_cycles_per_node,
)
from .resources import (
    ResourceUsage,
    estimate_resources,
    fits_on_device,
    weight_buffer_bytes_required,
)
from .search import DesignPoint, SearchSpace, enumerate_design_points, search_optimal_config

__all__ = [
    "StageCycles",
    "LayerEstimate",
    "PerformanceEstimate",
    "stage_cycles_per_node",
    "estimate_performance",
    "ResourceUsage",
    "estimate_resources",
    "fits_on_device",
    "weight_buffer_bytes_required",
    "DesignPoint",
    "SearchSpace",
    "enumerate_design_points",
    "search_optimal_config",
]
