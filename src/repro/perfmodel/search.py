"""Design-space exploration (Section III-D, Table V).

For a given GNN task (model + dataset + block size), exhaustively enumerate
the hardware parameters ``x, y, r, c, l, m`` that satisfy the DSP constraint
(Equation 8) and pick the configuration minimising the estimated total cycles
(Equation 7).  The paper reports that this traversal search finishes in under
a minute on a desktop PC; the same holds here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..hardware.config import CirCoreConfig, HardwareConstants, ZC706
from ..workloads.spec import GNNWorkload, Phase
from .model import PerformanceEstimate, estimate_performance
from .resources import ResourceUsage, estimate_resources

__all__ = ["DesignPoint", "SearchSpace", "search_optimal_config", "enumerate_design_points"]

_DEFAULT_PHASES: Tuple[Phase, ...] = ("aggregation", "combination")


@dataclass(frozen=True)
class SearchSpace:
    """Bounds of the exhaustive search.

    The defaults cover the configurations the paper reports (x, y up to the
    number of channels the DSP budget allows, systolic arrays up to 16x16,
    PE parallelism 1–8, up to 4 VPU lanes).
    """

    max_systolic_rows: int = 16
    max_systolic_cols: int = 16
    pe_parallelism_choices: Sequence[int] = (1, 2, 4, 8)
    vpu_lane_choices: Sequence[int] = (1, 2, 4)
    min_channels: int = 2  # at least one FFT and one IFFT channel


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration: parameters, cycles and resources."""

    config: CirCoreConfig
    performance: PerformanceEstimate
    resources: ResourceUsage

    @property
    def total_cycles(self) -> float:
        return self.performance.total_cycles

    @property
    def latency_seconds(self) -> float:
        return self.performance.latency_seconds


def _candidate_configs(
    block_size: int,
    constants: HardwareConstants,
    space: SearchSpace,
    frequency_hz: float,
) -> Iterable[CirCoreConfig]:
    """Yield every configuration satisfying the DSP constraint (Eq. 8)."""
    beta = constants.fft_dsps(block_size)
    for lanes in space.vpu_lane_choices:
        vpu_dsp = constants.vpu_dsps(lanes)
        for parallelism in space.pe_parallelism_choices:
            gamma = constants.pe_dsps(parallelism)
            for rows in range(1, space.max_systolic_rows + 1):
                for cols in range(1, space.max_systolic_cols + 1):
                    used = rows * cols * gamma + vpu_dsp
                    remaining = constants.total_dsp - used
                    channels = remaining // beta
                    if channels < space.min_channels:
                        continue
                    for fft_channels in range(1, int(channels)):
                        ifft_channels = int(channels) - fft_channels
                        yield CirCoreConfig(
                            fft_channels=fft_channels,
                            ifft_channels=ifft_channels,
                            systolic_rows=rows,
                            systolic_cols=cols,
                            pe_parallelism=parallelism,
                            vpu_lanes=lanes,
                            block_size=block_size,
                            frequency_hz=frequency_hz,
                        )


def enumerate_design_points(
    workload: GNNWorkload,
    block_size: int = 128,
    constants: HardwareConstants = ZC706,
    space: Optional[SearchSpace] = None,
    phases: Sequence[Phase] = _DEFAULT_PHASES,
    frequency_hz: float = 100e6,
    limit: Optional[int] = None,
) -> List[DesignPoint]:
    """Evaluate (up to ``limit``) feasible design points for ``workload``."""
    space = space if space is not None else SearchSpace()
    points: List[DesignPoint] = []
    for index, config in enumerate(_candidate_configs(block_size, constants, space, frequency_hz)):
        if limit is not None and index >= limit:
            break
        resources = estimate_resources(config, constants)
        if not resources.fits():
            continue
        performance = estimate_performance(workload, config, constants, phases)
        points.append(DesignPoint(config=config, performance=performance, resources=resources))
    return points


def search_optimal_config(
    workload: GNNWorkload,
    block_size: int = 128,
    constants: HardwareConstants = ZC706,
    space: Optional[SearchSpace] = None,
    phases: Sequence[Phase] = _DEFAULT_PHASES,
    frequency_hz: float = 100e6,
) -> DesignPoint:
    """Exhaustively search for the cycle-optimal feasible configuration.

    Ties are broken towards fewer DSPs (cheaper designs), then towards more
    balanced FFT/IFFT channel splits, making the result deterministic.
    """
    space = space if space is not None else SearchSpace()
    best: Optional[DesignPoint] = None
    for config in _candidate_configs(block_size, constants, space, frequency_hz):
        resources = estimate_resources(config, constants)
        if not resources.fits():
            continue
        performance = estimate_performance(workload, config, constants, phases)
        candidate = DesignPoint(config=config, performance=performance, resources=resources)
        if best is None or _is_better(candidate, best):
            best = candidate
    if best is None:
        raise RuntimeError("no feasible configuration found for the given constraints")
    return best


def _is_better(candidate: DesignPoint, incumbent: DesignPoint) -> bool:
    if candidate.total_cycles != incumbent.total_cycles:
        return candidate.total_cycles < incumbent.total_cycles
    if candidate.resources.dsp != incumbent.resources.dsp:
        return candidate.resources.dsp < incumbent.resources.dsp
    balance = abs(candidate.config.fft_channels - candidate.config.ifft_channels)
    incumbent_balance = abs(incumbent.config.fft_channels - incumbent.config.ifft_channels)
    return balance < incumbent_balance
