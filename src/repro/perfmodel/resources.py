"""The resource model of Section III-D (Equation 8) and Table VI estimates.

The paper's hard constraint is DSP count:

    beta(n) * (x + y)  +  r * c * gamma(l)  +  m * eta  <=  #DSPs         (8)

with the published coefficients ``beta = 18``, ``gamma(l) = 16 l`` and
``eta = 64`` on the 900-DSP ZC706.  BRAM, FF and LUT are estimated with
calibrated per-component costs (see :class:`repro.hardware.config.HardwareConstants`)
so that the Table VI utilisation picture — DSPs nearly exhausted, BRAM around
40%, FF/LUT comfortably below half — can be regenerated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..hardware.config import CirCoreConfig, HardwareConstants, ZC706
from ..workloads.spec import GNNWorkload

__all__ = ["ResourceUsage", "estimate_resources", "fits_on_device", "weight_buffer_bytes_required"]


@dataclass(frozen=True)
class ResourceUsage:
    """Absolute resource usage of one accelerator configuration."""

    dsp: int
    bram18k: int
    ff: int
    lut: int
    constants: HardwareConstants = ZC706

    @property
    def dsp_utilization(self) -> float:
        return self.dsp / self.constants.total_dsp

    @property
    def bram_utilization(self) -> float:
        return self.bram18k / self.constants.total_bram18k

    @property
    def ff_utilization(self) -> float:
        return self.ff / self.constants.total_ff

    @property
    def lut_utilization(self) -> float:
        return self.lut / self.constants.total_lut

    def utilization(self) -> Dict[str, float]:
        """Fractional utilisation of the four resource types (Table VI rows)."""
        return {
            "BRAM_18K": self.bram_utilization,
            "DSP48": self.dsp_utilization,
            "FF": self.ff_utilization,
            "LUT": self.lut_utilization,
        }

    def fits(self) -> bool:
        return (
            self.dsp <= self.constants.total_dsp
            and self.bram18k <= self.constants.total_bram18k
            and self.ff <= self.constants.total_ff
            and self.lut <= self.constants.total_lut
        )


def estimate_resources(config: CirCoreConfig, constants: HardwareConstants = ZC706) -> ResourceUsage:
    """Estimate the FPGA resources consumed by ``config``.

    The DSP term is Equation 8 verbatim; BRAM counts the Weight Buffer, the
    Node Feature Buffer (ping-pong, hence x2 halves already included in its
    size) and per-channel FFT working memory; FF/LUT use the calibrated
    per-component costs.
    """
    channels = config.fft_channels + config.ifft_channels
    dsp = (
        constants.fft_dsps(config.block_size) * channels
        + config.num_pes * constants.pe_dsps(config.pe_parallelism)
        + constants.vpu_dsps(config.vpu_lanes)
    )

    bram_bytes = constants.weight_buffer_bytes + constants.feature_buffer_bytes
    bram_for_buffers = math.ceil(bram_bytes / (18 * 1024 // 8))  # 18 Kbit blocks
    bram = constants.bram_base + bram_for_buffers + constants.bram_per_fft_channel * channels

    ff = (
        constants.ff_base
        + constants.ff_per_fft_channel * channels
        + constants.ff_per_pe_lane * config.num_pes * config.pe_parallelism
        + constants.ff_per_vpu_lane * config.vpu_lanes
    )
    lut = (
        constants.lut_base
        + constants.lut_per_fft_channel * channels
        + constants.lut_per_pe_lane * config.num_pes * config.pe_parallelism
        + constants.lut_per_vpu_lane * config.vpu_lanes
    )
    return ResourceUsage(dsp=int(dsp), bram18k=int(bram), ff=int(ff), lut=int(lut), constants=constants)


def fits_on_device(config: CirCoreConfig, constants: HardwareConstants = ZC706) -> bool:
    """Equation 8 (plus the soft BRAM/FF/LUT checks): does ``config`` fit?"""
    return estimate_resources(config, constants).fits()


def weight_buffer_bytes_required(
    workload: GNNWorkload,
    block_size: int,
    constants: HardwareConstants = ZC706,
    spectral: bool = True,
) -> int:
    """Bytes of Weight Buffer needed to hold the compressed model.

    Block-circulant compression stores ``p * q * n`` values per matrix
    (``1/n`` of the dense parameters).  When the spectral weights ``FFT(W)``
    are stored (the paper pre-computes them), each value is a complex number,
    i.e. twice the storage — still comfortably below the 256 KB budget for
    every model in the evaluation.
    """
    total_values = 0
    for layer in workload.layers:
        for op in layer.matvecs:
            p = math.ceil(op.out_features / block_size)
            q = math.ceil(op.in_features / block_size)
            total_values += p * q * block_size
    per_value = constants.bytes_per_value * (2 if spectral else 1)
    return total_values * per_value
