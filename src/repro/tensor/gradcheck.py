"""Numerical gradient checking utilities.

Used by the test-suite (and available to downstream users) to validate that
every autograd primitive — including the analytically derived backward pass
of the block-circulant FFT multiplication — matches central finite
differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "gradient_check"]


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``func(*inputs).sum()`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    # Parameters key derived-state caches (e.g. cached spectral weights) on a
    # version counter; each in-place perturbation must invalidate them.
    bump = getattr(target, "bump_version", lambda: None)
    for position in range(flat.size):
        original = flat[position]
        flat[position] = original + epsilon
        bump()
        plus = float(func(*inputs).data.sum())
        flat[position] = original - epsilon
        bump()
        minus = float(func(*inputs).data.sum())
        flat[position] = original
        bump()
        grad_flat[position] = (plus - minus) / (2.0 * epsilon)
    return grad


def gradient_check(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    epsilon: float = 1e-6,
) -> bool:
    """Compare autograd gradients of ``func`` against finite differences.

    Returns ``True`` when every input that requires gradients matches within
    tolerance; raises ``AssertionError`` with a diagnostic otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = func(*inputs)
    output.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numerical_gradient(func, inputs, index, epsilon=epsilon)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = float(np.abs(actual - expected).max())
            raise AssertionError(
                f"gradient mismatch for input {index}: max abs error {worst:.3e}"
            )
    return True
