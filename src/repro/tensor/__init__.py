"""NumPy-backed autograd substrate used to train the BlockGNN models."""

from .tensor import Tensor, concatenate, ensure_tensor, is_grad_enabled, no_grad, stack, where
from . import functional
from .gradcheck import gradient_check, numerical_gradient

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "ensure_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "gradient_check",
    "numerical_gradient",
]
