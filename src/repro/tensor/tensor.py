"""A small reverse-mode automatic-differentiation engine built on NumPy.

The BlockGNN paper trains its compressed GNN models with a standard deep
learning framework.  No such framework is available in this environment, so
this module provides the substrate: a :class:`Tensor` that records the
operations applied to it and can back-propagate gradients through them.

The engine is deliberately small but complete enough for the models in
``repro.models``: broadcasting-aware elementwise arithmetic, matrix
multiplication, reductions, indexing, reshaping, concatenation, and the
non-linearities used by the four GNN variants.  The block-circulant
FFT-based multiplication is registered as a primitive in
``repro.compression.spectral`` because its backward pass is derived
analytically rather than composed from these primitives.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "ensure_tensor"]

# ---------------------------------------------------------------------------
# Autograd switch (thread-local)
# ---------------------------------------------------------------------------

# Per-thread so the concurrent serving executor's worker threads can run
# inference under ``no_grad()`` without racing a training loop (or each
# other) on a shared global flag.  Every thread starts with grad enabled.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded for autograd."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Used during inference (e.g. accuracy evaluation and the functional
    accelerator simulation) where building the autograd graph would only
    waste memory.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def ensure_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (without requiring gradients)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting expands operands during the forward pass; the
    corresponding backward pass must sum gradients over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data, dtype=np.float64)
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # -- basic introspection -------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph construction helpers ------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor, wiring it into the graph when needed."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad`` (lazily allocated)."""
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = _unbroadcast(grad, self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return Tensor._make(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(out_data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return Tensor._make(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = ensure_tensor(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return ensure_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        """Matrix multiplication with gradients for both operands.

        Supports the 2-D x 2-D, 1-D x 2-D, 2-D x 1-D and batched (N-D) cases
        that NumPy's ``@`` supports; the backward pass handles broadcasting of
        batch dimensions by summing over them.
        """
        other = ensure_tensor(other)
        out_data = self.data @ other.data
        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            a_data, b_data = a.data, b.data
            if a.requires_grad:
                if b_data.ndim == 1:
                    grad_a = np.multiply.outer(grad, b_data) if a_data.ndim > 1 else grad * b_data
                    if a_data.ndim == 1:
                        grad_a = grad * b_data
                elif a_data.ndim == 1:
                    grad_a = grad @ b_data.T
                else:
                    grad_a = grad @ np.swapaxes(b_data, -1, -2)
                a._accumulate(_unbroadcast(np.asarray(grad_a), a_data.shape))
            if b.requires_grad:
                if a_data.ndim == 1:
                    grad_b = np.multiply.outer(a_data, grad) if b_data.ndim > 1 else a_data * grad
                    if b_data.ndim == 1:
                        grad_b = a_data * grad
                elif b_data.ndim == 1:
                    grad_b = np.swapaxes(a_data, -1, -2) @ grad if a_data.ndim > 2 else a_data.T @ grad
                    grad_b = np.asarray(grad_b)
                    while grad_b.ndim > 1:
                        grad_b = grad_b.sum(axis=0)
                else:
                    grad_b = np.swapaxes(a_data, -1, -2) @ grad
                b._accumulate(_unbroadcast(np.asarray(grad_b), b_data.shape))

        return Tensor._make(out_data, (self, other), backward)

    # -- reductions -----------------------------------------------------------

    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = 1
            for ax in axes:
                count *= self.data.shape[ax]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.data.shape) / count)

        return Tensor._make(out_data, (self,), backward)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        """Maximum reduction.  Gradient flows only to the arg-max entries.

        Ties split the gradient evenly between the tied maxima, which keeps
        the gradient check exact for the max-pooling aggregator of GS-Pool.
        """
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                expanded = np.expand_dims(out_data, axis=axis)
            mask = (self.data == expanded).astype(np.float64)
            normaliser = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask / normaliser * g)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return (-self).max(axis=axis, keepdims=keepdims) * -1.0

    # -- shape manipulation ----------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.data.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    def index_select(self, indices: np.ndarray) -> "Tensor":
        """Gather rows by integer index (used for node-feature lookup)."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward)

    # -- elementwise non-linearities -------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0.0))

        return Tensor._make(out_data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        out_data = np.where(self.data > 0.0, self.data, negative_slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slope = np.where(self.data > 0.0, 1.0, negative_slope)
                self._accumulate(grad * slope)

        return Tensor._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        out_data = np.where(self.data > 0.0, self.data, alpha * (np.exp(self.data) - 1.0))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                slope = np.where(self.data > 0.0, 1.0, out_data + alpha)
                self._accumulate(grad * slope)

        return Tensor._make(out_data, (self,), backward)

    # -- convenience constructors ----------------------------------------------

    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.standard_normal(shape), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing to each input."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select: ``condition ? a : b`` (condition is not differentiated)."""
    a = ensure_tensor(a)
    b = ensure_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(np.where(condition, grad, 0.0))
        if b.requires_grad:
            b._accumulate(np.where(condition, 0.0, grad))

    return Tensor._make(out_data, (a, b), backward)
