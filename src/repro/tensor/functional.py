"""Composite and graph-oriented operations built on :class:`repro.tensor.Tensor`.

These helpers cover the numerical building blocks of the four GNN variants in
the BlockGNN paper: softmax attention (GAT), log-softmax + negative
log-likelihood for node classification, sparse adjacency propagation for
full-graph GCN, and segment reductions for edge-wise aggregation.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, ensure_tensor

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "sparse_matmul",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "dropout",
    "one_hot",
    "accuracy",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = ensure_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    rows = np.arange(len(targets))
    picked = log_probs[rows, targets]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Softmax cross-entropy between ``logits`` and integer class ``targets``."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


def sparse_matmul(adjacency: sp.spmatrix, features: Tensor) -> Tensor:
    """Multiply a *constant* sparse matrix by a dense feature tensor.

    The adjacency (or normalised Laplacian) is treated as data, not a
    parameter, so only the gradient with respect to ``features`` is produced:
    ``d(A @ X)/dX = A^T``.
    """
    features = ensure_tensor(features)
    adjacency = adjacency.tocsr()
    out_data = adjacency @ features.data
    adjacency_t = adjacency.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        if features.requires_grad:
            features._accumulate(adjacency_t @ grad)

    return Tensor._make(np.asarray(out_data), (features,), backward)


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` that share a segment id (edge-wise aggregation)."""
    values = ensure_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, values.data)

    def backward(grad: np.ndarray) -> None:
        if values.requires_grad:
            values._accumulate(grad[segment_ids])

    return Tensor._make(out_data, (values,), backward)


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows sharing a segment id; empty segments produce zeros."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(values, segment_ids, num_segments)
    shape = (num_segments,) + (1,) * (summed.ndim - 1)
    return summed / Tensor(counts.reshape(shape))


def segment_max(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Max of rows sharing a segment id; empty segments produce zeros."""
    values = ensure_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(out_data, segment_ids, values.data)
    empty = ~np.isin(np.arange(num_segments), segment_ids)
    out_data[empty] = 0.0

    def backward(grad: np.ndarray) -> None:
        if not values.requires_grad:
            return
        # Gradient flows to entries equal to their segment's maximum,
        # split evenly between ties.
        expanded_max = out_data[segment_ids]
        mask = (values.data == expanded_max).astype(np.float64)
        tie_counts = np.zeros(out_shape, dtype=np.float64)
        np.add.at(tie_counts, segment_ids, mask)
        tie_counts = np.maximum(tie_counts, 1.0)
        values._accumulate(mask / tie_counts[segment_ids] * grad[segment_ids])

    return Tensor._make(out_data, (values,), backward)


def dropout(x: Tensor, p: float, rng: Optional[np.random.Generator] = None, training: bool = True) -> Tensor:
    """Inverted dropout: zero entries with probability ``p`` during training."""
    if not training or p <= 0.0:
        return ensure_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    x = ensure_tensor(x)
    generator = rng if rng is not None else np.random.default_rng()
    mask = (generator.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """One-hot encode integer labels into a ``(N, num_classes)`` float array."""
    labels = np.asarray(labels, dtype=np.int64)
    encoded = np.zeros((len(labels), num_classes), dtype=np.float64)
    encoded[np.arange(len(labels)), labels] = 1.0
    return encoded


def accuracy(logits: Union[Tensor, np.ndarray], targets: np.ndarray) -> float:
    """Classification accuracy of arg-max predictions against integer targets."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predictions = data.argmax(axis=-1)
    targets = np.asarray(targets, dtype=np.int64)
    return float((predictions == targets).mean())
