"""Analytical profiling of GNN workloads (Table II of the paper)."""

from .flops import ModelProfile, PhaseProfile, profile_all_models, profile_model, profile_table

__all__ = ["ModelProfile", "PhaseProfile", "profile_model", "profile_all_models", "profile_table"]
