"""GNN profiling (Section II-B, Table II).

Computes total computations (FLOPs) and arithmetic intensity (FLOPs per byte)
for the aggregation and combination phases of each GNN variant on the Reddit
profiling setup.  The underlying operation inventory lives in
:mod:`repro.workloads`; this module formats it into the Table II layout and
adds the compressed-workload variant used to motivate block-circulant
compression.

Accounting note: we count a MAC as 2 FLOPs and stream 4-byte features
(see :mod:`repro.workloads.spec`).  The paper's Table II appears to count a
MAC as a single operation in the totals, so our absolute FLOP numbers are
roughly 2x the paper's; all cross-model and cross-phase *ratios* — which is
what motivates the design — are preserved.  EXPERIMENTS.md tabulates both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..compression.ratios import theoretical_computation_reduction
from ..workloads.builder import MODEL_NAMES, profiling_workload
from ..workloads.spec import GNNWorkload

__all__ = ["PhaseProfile", "ModelProfile", "profile_model", "profile_all_models", "profile_table"]


@dataclass(frozen=True)
class PhaseProfile:
    """FLOPs and arithmetic intensity of one phase of one model."""

    flops: float
    bytes: float

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes if self.bytes else float("inf")


@dataclass(frozen=True)
class ModelProfile:
    """One row of Table II."""

    model: str
    aggregation: PhaseProfile
    combination: PhaseProfile

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model,
            "aggregation_flops": self.aggregation.flops,
            "combination_flops": self.combination.flops,
            "aggregation_intensity": self.aggregation.arithmetic_intensity,
            "combination_intensity": self.combination.arithmetic_intensity,
        }


def profile_model(
    model: str,
    sample_size: int = 25,
    feature_dim: int = 512,
    workload: Optional[GNNWorkload] = None,
) -> ModelProfile:
    """Profile one GNN variant on the Table II setup (or a custom workload)."""
    task = workload if workload is not None else profiling_workload(model, sample_size, feature_dim)
    aggregation = PhaseProfile(task.total_flops("aggregation"), task.total_bytes("aggregation"))
    combination = PhaseProfile(task.total_flops("combination"), task.total_bytes("combination"))
    return ModelProfile(model=task.model, aggregation=aggregation, combination=combination)


def profile_all_models(sample_size: int = 25, feature_dim: int = 512) -> List[ModelProfile]:
    """Profile all four GNN variants (the full Table II)."""
    return [profile_model(name, sample_size, feature_dim) for name in MODEL_NAMES]


def profile_table(
    profiles: Optional[Sequence[ModelProfile]] = None,
    block_size: Optional[int] = None,
) -> str:
    """Render Table II as ASCII; optionally append compressed-FLOPs columns.

    When ``block_size`` is given, the matrix-vector FLOPs are divided by the
    theoretical computation reduction ``n / log2(n)`` to show the headroom
    block-circulant compression creates (the motivation for Section III).
    """
    rows = profiles if profiles is not None else profile_all_models()
    header = f"{'Algorithm':10s} {'Agg FLOPs':>12s} {'Comb FLOPs':>12s} {'Agg AI':>8s} {'Comb AI':>8s}"
    if block_size:
        header += f" {'Agg FLOPs(n=' + str(block_size) + ')':>20s}"
    lines = [header, "-" * len(header)]
    reduction = theoretical_computation_reduction(block_size) if block_size else 1.0
    for row in rows:
        line = (
            f"{row.model:10s} {row.aggregation.flops:12.2e} {row.combination.flops:12.2e} "
            f"{row.aggregation.arithmetic_intensity:8.1f} {row.combination.arithmetic_intensity:8.1f}"
        )
        if block_size:
            line += f" {row.aggregation.flops / reduction:20.2e}"
        lines.append(line)
    return "\n".join(lines)
