"""Command-line interface for regenerating the paper's tables and figures.

Usage (after ``pip install -e .``)::

    python -m repro.cli table2
    python -m repro.cli table3 --scale 0.004 --epochs 6
    python -m repro.cli table5
    python -m repro.cli table6
    python -m repro.cli figure6
    python -m repro.cli figure7
    python -m repro.cli ablation-rfft
    python -m repro.cli ablation-agg-only
    python -m repro.cli eval-bench --model GCN --block-size 8
    python -m repro.cli profile --model GS-Pool
    python -m repro.cli search --model GS-Pool --dataset reddit
    python -m repro.cli partition --dataset reddit --parts 4
    python -m repro.cli serve-bench --model GCN --shards 2 --requests 512

Each sub-command prints the regenerated table next to the paper's reference
numbers (where applicable).  The same code paths back the ``benchmarks/``
suite; the CLI exists so individual experiments can be re-run and tweaked
without going through pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Regenerate the BlockGNN paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table2", help="GNN profiling on Reddit (Table II)")

    table3 = subparsers.add_parser("table3", help="compression ratio vs. accuracy (Table III)")
    table3.add_argument("--scale", type=float, default=0.004, help="fraction of the Reddit graph to synthesise")
    table3.add_argument("--epochs", type=int, default=6)
    table3.add_argument("--hidden", type=int, default=64)
    table3.add_argument("--block-sizes", type=int, nargs="+", default=[1, 8, 16])
    table3.add_argument("--models", nargs="+", default=["GCN", "GS-Pool", "G-GCN", "GAT"])
    table3.add_argument(
        "--eval-mode",
        choices=["sampled", "full"],
        default="sampled",
        help="validation/test inference: per-batch neighbour sampling or full-graph layer-wise",
    )

    subparsers.add_parser("table5", help="searched optimal hardware parameters (Table V)")
    subparsers.add_parser("table6", help="FPGA resource utilisation (Table VI)")
    subparsers.add_parser("figure6", help="performance comparison (Figure 6)")
    subparsers.add_parser("figure7", help="energy-efficiency comparison (Figure 7)")
    subparsers.add_parser("ablation-rfft", help="Section V ablation: real-valued FFT")

    agg_only = subparsers.add_parser(
        "ablation-agg-only", help="Section V ablation: compress only the aggregators"
    )
    agg_only.add_argument("--scale", type=float, default=0.004)
    agg_only.add_argument("--epochs", type=int, default=5)
    agg_only.add_argument("--block-size", type=int, default=8)
    agg_only.add_argument("--eval-mode", choices=["sampled", "full"], default="sampled")

    eval_bench = subparsers.add_parser(
        "eval-bench",
        help="compare sampled vs. full-graph layer-wise inference (accuracy + wall-clock)",
    )
    eval_bench.add_argument("--model", default="GCN", help="GCN | GS-Pool | G-GCN | GAT")
    eval_bench.add_argument("--dataset", default="reddit")
    eval_bench.add_argument("--scale", type=float, default=0.004)
    eval_bench.add_argument("--epochs", type=int, default=3)
    eval_bench.add_argument("--hidden", type=int, default=64)
    eval_bench.add_argument("--block-size", type=int, default=8)
    eval_bench.add_argument("--fanouts", type=int, nargs="+", default=[25, 10])

    profile = subparsers.add_parser("profile", help="profile a single GNN model (Table II row)")
    profile.add_argument("--model", default="GS-Pool", help="GCN | GS-Pool | G-GCN | GAT")
    profile.add_argument("--sample-size", type=int, default=25)
    profile.add_argument("--feature-dim", type=int, default=512)

    search = subparsers.add_parser("search", help="design-space exploration for one task")
    search.add_argument("--model", default="GS-Pool")
    search.add_argument("--dataset", default="reddit")
    search.add_argument("--hidden", type=int, default=512)
    search.add_argument("--block-size", type=int, default=128)

    partition = subparsers.add_parser(
        "partition",
        help="partition a graph and report per-part node/edge/cut statistics",
    )
    partition.add_argument("--dataset", default="reddit")
    partition.add_argument("--scale", type=float, default=0.004)
    partition.add_argument("--parts", type=int, default=2)
    partition.add_argument("--method", choices=["bfs", "hash"], default="bfs")
    partition.add_argument("--seed", type=int, default=0)
    partition.add_argument(
        "--halo-hops",
        type=int,
        default=2,
        help="also report the halo each serving shard would hold at this depth",
    )

    serve = subparsers.add_parser(
        "serve-bench",
        help="online serving benchmark: micro-batching + sharded workers + embedding cache",
    )
    serve.add_argument("--model", default="GCN", help="GCN | GS-Pool | G-GCN | GAT")
    serve.add_argument("--dataset", default="reddit")
    serve.add_argument("--scale", type=float, default=0.002)
    serve.add_argument("--hidden", type=int, default=64)
    serve.add_argument("--block-size", type=int, default=1)
    serve.add_argument("--epochs", type=int, default=2)
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument("--replicas", type=int, default=1)
    serve.add_argument("--dispatch", choices=["round_robin", "least_loaded"], default="round_robin")
    serve.add_argument("--batch-size", type=int, default=32, help="micro-batch flush size")
    serve.add_argument("--max-delay-ms", type=float, default=2.0)
    serve.add_argument("--cache", type=int, default=4096, help="embedding-cache entries per worker")
    serve.add_argument(
        "--cache-policy",
        choices=["lru", "degree", "degree-auto"],
        default="lru",
        help="slab-cache retention: exact LRU, degree-aware hub pinning (GNNIE-style), "
        "or degree pinning with the pin budget auto-tuned online",
    )
    serve.add_argument(
        "--pin-fraction",
        type=float,
        default=0.25,
        help="fraction of the cache capacity reserved for pinned hubs "
        "(--cache-policy degree; the starting point for degree-auto)",
    )
    serve.add_argument(
        "--halo-tier",
        choices=["on", "off"],
        default="on",
        help="share computed boundary (halo) embeddings between shards so cold "
        "flushes stop recomputing each other's cut nodes",
    )
    serve.add_argument(
        "--plan-cache-size",
        type=int,
        default=32,
        help="restriction plans cached per worker (0 disables plan reuse/patching)",
    )
    serve.add_argument(
        "--hot-path",
        choices=["compiled", "legacy"],
        default="compiled",
        help="exact-mode implementation: compiled fast path or the PR-3 reference",
    )
    serve.add_argument(
        "--fft-workers",
        type=int,
        default=None,
        help="scipy.fft workers= for block-circulant transforms (default: single-threaded)",
    )
    serve.add_argument("--requests", type=int, default=512)
    serve.add_argument("--mode", choices=["exact", "sampled"], default="exact")
    serve.add_argument("--fanouts", type=int, nargs="+", default=[10, 5], help="sampled mode only")
    serve.add_argument(
        "--executor",
        choices=["serial", "concurrent", "process"],
        default="serial",
        help="flush execution: inline (deterministic), thread-pool (parallel "
        "shards), or crash-isolated worker processes over shared-memory slabs",
    )
    serve.add_argument(
        "--executor-workers",
        type=int,
        default=None,
        help="pool size for --executor concurrent/process (default: one per shard replica)",
    )
    serve.add_argument(
        "--num-processes",
        type=int,
        default=None,
        help="alias for --executor-workers with --executor process",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="bound each shard queue (default: unbounded, no admission control)",
    )
    serve.add_argument(
        "--overload-policy",
        choices=["reject", "shed_oldest", "block"],
        default="reject",
        help="what to do when a bounded queue is full",
    )
    serve.add_argument(
        "--ingress",
        choices=["sync", "thread"],
        default="sync",
        help="request intake: sync (submit flushes due batches inline) or "
        "thread (background front-door pump drives flush rounds)",
    )
    serve.add_argument(
        "--work-stealing",
        action="store_true",
        help="executor slots idling at a round barrier drain the hottest due queue",
    )
    serve.add_argument(
        "--class-mix",
        default=None,
        metavar="NAME=FRAC,...",
        help="weighted request-class mix for the measured stream, e.g. "
        "premium=0.25,standard=0.25,backfill=0.5 (default: all standard); "
        "heavier classes batch first and shed last under overload",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline; queued requests past it expire unserved",
    )
    serve.add_argument(
        "--fault-fail-rate",
        type=float,
        default=0.0,
        help="per-dispatch probability that a replica raises (fault injection)",
    )
    serve.add_argument(
        "--fault-hang-rate",
        type=float,
        default=0.0,
        help="per-dispatch probability that a replica hangs past --fault-hang-ms",
    )
    serve.add_argument(
        "--fault-slow-rate",
        type=float,
        default=0.0,
        help="per-dispatch probability that a replica answers --fault-slow-ms late",
    )
    serve.add_argument(
        "--fault-die-rate",
        type=float,
        default=0.0,
        help="per-dispatch probability that a replica dies permanently "
        "(stays dead until a supervisor rebuild revives the slot)",
    )
    serve.add_argument(
        "--fault-kill-rate",
        type=float,
        default=0.0,
        help="per-dispatch probability that the replica's worker *process* is "
        "SIGKILLed (--executor process; in-process replicas degrade to die)",
    )
    serve.add_argument("--fault-hang-ms", type=float, default=50.0)
    serve.add_argument("--fault-slow-ms", type=float, default=5.0)
    serve.add_argument(
        "--fault-workers",
        type=int,
        nargs="+",
        default=None,
        help="restrict injected faults to these worker ids (default: all replicas)",
    )
    serve.add_argument("--fault-seed", type=int, default=0, help="seed of the fault plan RNG")
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="failover budget per batch after the dispatched replica fails",
    )
    serve.add_argument(
        "--retry-backoff-ms",
        type=float,
        default=0.5,
        help="base of the capped exponential retry backoff",
    )
    serve.add_argument(
        "--degraded-policy",
        choices=["fail", "stale_ok"],
        default="fail",
        help="what a shard with zero healthy replicas serves (stale_ok: cached rows)",
    )
    serve.add_argument(
        "--supervisor",
        action="store_true",
        help="self-healing: quarantine + rebuild replicas whose breaker keeps re-opening",
    )
    serve.add_argument(
        "--supervisor-budget",
        type=int,
        default=2,
        help="breaker opens inside --supervisor-window-ms before a replica is rebuilt",
    )
    serve.add_argument(
        "--supervisor-window-ms",
        type=float,
        default=1000.0,
        help="rolling window the supervisor counts breaker opens over",
    )
    serve.add_argument(
        "--retry-budget",
        type=int,
        default=None,
        help="process-wide retry token bucket capacity (default: unbudgeted retries)",
    )
    serve.add_argument(
        "--retry-budget-refill",
        type=float,
        default=0.25,
        help="tokens refilled into the retry budget per successful dispatch",
    )
    serve.add_argument(
        "--hedge-after-ms",
        type=float,
        default=None,
        help="duplicate a stalled batch onto a healthy sibling replica once its "
        "attempt exceeds max(this, the shard's rolling p95); needs --replicas >= 2",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--telemetry",
        choices=["off", "metrics", "trace"],
        default="metrics",
        help="observability: off (no accounting), metrics (registry), trace "
        "(registry + per-request spans)",
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the measured run's Chrome trace-event JSON here "
        "(open in Perfetto / chrome://tracing; implies --telemetry trace)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the measured run's metrics here (.prom/.txt: Prometheus "
        "text exposition, anything else: JSON snapshot)",
    )
    serve.add_argument(
        "--trace-capacity",
        type=int,
        default=4096,
        help="request spans / attempt records kept in the tracer rings",
    )

    return parser


def _run_table2() -> str:
    from .experiments import render_table2

    return render_table2()


def _run_table3(args: argparse.Namespace) -> str:
    from .experiments import render_table3, run_table3

    result = run_table3(
        block_sizes=tuple(args.block_sizes),
        models=tuple(args.models),
        dataset="reddit",
        dataset_scale=args.scale,
        num_features=args.hidden,
        hidden_features=args.hidden,
        epochs=args.epochs,
        eval_mode=args.eval_mode,
    )
    return render_table3(result)


def _run_table5() -> str:
    from .experiments import render_table5, run_table5

    return render_table5(run_table5())


def _run_table6() -> str:
    from .experiments import render_table6, run_table6

    return render_table6(run_table6())


def _run_figure6() -> str:
    from .experiments import render_figure6, run_figure6

    result = run_figure6()
    summary = (
        f"\nmean BlockGNN-opt vs CPU: {result.mean_speedup_vs_cpu:.2f}x (paper 2.3x)   "
        f"mean vs HyGCN: {result.mean_speedup_vs_hygcn:.2f}x (paper 4.2x)"
    )
    return render_figure6(result) + summary


def _run_figure7() -> str:
    from .experiments import render_figure7, run_figure7

    result = run_figure7()
    summary = (
        f"\nenergy reduction: min {result.min_energy_reduction:.1f}x, "
        f"mean {result.mean_energy_reduction:.1f}x, max {result.max_energy_reduction:.1f}x "
        f"(paper 33.9x / 68.9x / 111.9x)"
    )
    return render_figure7(result) + summary


def _run_ablation_rfft() -> str:
    from .experiments import run_rfft_ablation
    from .experiments.tables import format_table

    result = run_rfft_ablation()
    return format_table(
        ["quantity", "complex FFT", "RFFT"],
        [
            ["FLOPs per mat-vec", f"{result.complex_flops:.3e}", f"{result.rfft_flops:.3e}"],
            ["estimated cycles", f"{result.complex_cycles:.3e}", f"{result.rfft_cycles:.3e}"],
            ["max output difference", "-", f"{result.max_output_difference:.2e}"],
        ],
    )


def _run_ablation_agg_only(args: argparse.Namespace) -> str:
    from .experiments import render_aggregator_only, run_aggregator_only_ablation

    result = run_aggregator_only_ablation(
        block_size=args.block_size,
        dataset_scale=args.scale,
        epochs=args.epochs,
        eval_mode=args.eval_mode,
    )
    return render_aggregator_only(result)


def _run_eval_bench(args: argparse.Namespace) -> str:
    from .compression import CompressionConfig
    from .graph import load_dataset
    from .models import Trainer, TrainingConfig, create_model
    from .models.trainer import compare_inference_modes

    graph = load_dataset(args.dataset, scale=args.scale, seed=0, num_features=args.hidden)
    model = create_model(
        args.model,
        in_features=graph.num_features,
        hidden_features=args.hidden,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=args.block_size),
        seed=0,
    )
    fanouts = tuple(args.fanouts)
    trainer = Trainer(
        model, graph, TrainingConfig(epochs=args.epochs, fanouts=fanouts, seed=0)
    )
    trainer.fit()
    comparison = compare_inference_modes(model, graph, fanouts, seed=0)
    return (
        f"{args.model} (n={args.block_size}) on {graph.summary()}\n"
        f"  sampled inference (fanouts {fanouts}): acc {comparison.sampled_accuracy:.3f} "
        f"in {comparison.sampled_seconds * 1e3:.1f} ms\n"
        f"  full-graph layer-wise inference     : acc {comparison.full_accuracy:.3f} "
        f"in {comparison.full_seconds * 1e3:.1f} ms\n"
        f"  speedup {comparison.speedup:.1f}x, accuracy difference {comparison.accuracy_difference:.4f}"
    )


def _run_profile(args: argparse.Namespace) -> str:
    from .profiling import profile_model

    profile = profile_model(args.model, sample_size=args.sample_size, feature_dim=args.feature_dim)
    return (
        f"{profile.model}: aggregation {profile.aggregation.flops:.3e} FLOPs "
        f"(AI {profile.aggregation.arithmetic_intensity:.1f}), "
        f"combination {profile.combination.flops:.3e} FLOPs "
        f"(AI {profile.combination.arithmetic_intensity:.1f})"
    )


def _run_search(args: argparse.Namespace) -> str:
    from .perfmodel import estimate_resources, search_optimal_config
    from .workloads import build_workload

    workload = build_workload(args.model, args.dataset, hidden_features=args.hidden)
    point = search_optimal_config(workload, block_size=args.block_size)
    params = ", ".join(f"{key}={value}" for key, value in point.config.describe().items())
    usage = estimate_resources(point.config).utilization()
    utilisation = ", ".join(f"{key} {value * 100:.1f}%" for key, value in usage.items())
    return (
        f"{workload.model} on {workload.dataset}: optimal {params}\n"
        f"  {point.total_cycles / 1e6:.1f}M cycles = {point.latency_seconds * 1e3:.1f} ms @ 100 MHz\n"
        f"  utilisation: {utilisation}"
    )


def _run_partition(args: argparse.Namespace) -> str:
    import numpy as np

    from .experiments.tables import format_table
    from .graph import load_dataset
    from .serving import build_shards

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    # build_shards runs the partitioner internally; derive the per-part stats
    # from the shards' core node sets instead of partitioning twice.
    shards = build_shards(graph, args.parts, args.halo_hops, method=args.method, seed=args.seed)
    parts = [shard.core_nodes for shard in shards]
    assignment = np.empty(graph.num_nodes, dtype=np.int64)
    for part_id, nodes in enumerate(parts):
        assignment[nodes] = part_id
    src = np.repeat(np.arange(graph.num_nodes), np.diff(graph.indptr))
    same = assignment[src] == assignment[graph.indices]

    rows = []
    for part_id, nodes in enumerate(parts):
        in_part = assignment[src] == part_id
        internal = int((in_part & same).sum()) // 2
        cut = int((in_part & ~same).sum())
        rows.append(
            [
                str(part_id),
                str(len(nodes)),
                str(internal),
                str(cut),
                str(shards[part_id].num_halo),
            ]
        )
    total_cut = int((~same).sum()) // 2
    table = format_table(
        ["part", "nodes", "internal edges", "cut edges", f"halo ({args.halo_hops}-hop)"], rows
    )
    return (
        f"{graph.summary()}\n"
        f"method={args.method} parts={args.parts} seed={args.seed}\n"
        f"{table}\n"
        f"total cut edges: {total_cut} "
        f"({100.0 * total_cut / max(graph.num_edges // 2, 1):.1f}% of undirected edges)"
    )


def _run_serve_bench(args: argparse.Namespace) -> str:
    import time

    import numpy as np

    from .compression import CompressionConfig
    from .graph import load_dataset
    from .models import Trainer, TrainingConfig, create_model
    from .serving import (
        FaultPlan,
        FaultSpec,
        InferenceServer,
        ServingConfig,
        estimate_shard_request_cycles,
    )

    graph = load_dataset(args.dataset, scale=args.scale, seed=args.seed, num_features=args.hidden)
    model = create_model(
        args.model,
        in_features=graph.num_features,
        hidden_features=args.hidden,
        num_classes=graph.num_classes,
        compression=CompressionConfig(block_size=args.block_size),
        seed=args.seed,
    )
    fanouts = tuple(args.fanouts)
    Trainer(model, graph, TrainingConfig(epochs=args.epochs, fanouts=fanouts, seed=args.seed)).fit()

    if args.num_processes is not None:
        args.executor_workers = args.num_processes

    rng = np.random.default_rng(args.seed)
    nodes = rng.choice(graph.num_nodes, size=args.requests, replace=True)

    # Fixed per-request class assignment (same across every server built
    # below, so the streams stay comparable).
    classes = None
    if args.class_mix is not None:
        mix = {}
        for part in args.class_mix.split(","):
            name, _, fraction = part.partition("=")
            mix[name.strip()] = float(fraction)
        total = sum(mix.values())
        names = list(mix)
        classes = rng.choice(names, size=args.requests, p=[mix[n] / total for n in names])

    def build_fault_plan():
        if (
            args.fault_fail_rate <= 0
            and args.fault_hang_rate <= 0
            and args.fault_slow_rate <= 0
            and args.fault_die_rate <= 0
            and args.fault_kill_rate <= 0
        ):
            return None
        spec = FaultSpec(
            workers=None if args.fault_workers is None else tuple(args.fault_workers),
            fail_rate=args.fault_fail_rate,
            hang_rate=args.fault_hang_rate,
            slow_rate=args.fault_slow_rate,
            die_rate=args.fault_die_rate,
            kill_rate=args.fault_kill_rate,
            hang_seconds=args.fault_hang_ms / 1e3,
            slow_seconds=args.fault_slow_ms / 1e3,
        )
        return FaultPlan(spec, seed=args.fault_seed)

    # --trace-out needs the tracer, whatever --telemetry says.
    telemetry_mode = args.telemetry
    if args.trace_out is not None and telemetry_mode != "trace":
        telemetry_mode = "trace"

    def build_server(
        batch_size: int,
        cache: int,
        executor: str,
        hot_path: str = args.hot_path,
        faulty: bool = False,
        telemetry: str = "metrics",
    ) -> InferenceServer:
        return InferenceServer(
            model,
            graph,
            ServingConfig(
                num_shards=args.shards,
                max_batch_size=batch_size,
                max_delay=args.max_delay_ms / 1e3,
                mode=args.mode,
                fanouts=fanouts if args.mode == "sampled" else None,
                cache_capacity=cache,
                cache_policy=args.cache_policy,
                cache_pin_fraction=args.pin_fraction,
                halo_tier=args.halo_tier == "on",
                plan_cache_size=args.plan_cache_size,
                hot_path=hot_path,
                fft_workers=args.fft_workers,
                num_replicas=args.replicas,
                dispatch=args.dispatch,
                executor=executor,
                executor_workers=args.executor_workers,
                max_queue_depth=args.max_queue_depth,
                overload_policy=args.overload_policy,
                default_timeout=None if args.deadline_ms is None else args.deadline_ms / 1e3,
                fault_plan=build_fault_plan() if faulty else None,
                max_retries=args.max_retries,
                retry_backoff=args.retry_backoff_ms / 1e3,
                retry_backoff_cap=max(args.retry_backoff_ms / 1e3 * 8, args.retry_backoff_ms / 1e3),
                degraded_policy=args.degraded_policy,
                supervisor=args.supervisor and faulty,
                supervisor_failure_budget=args.supervisor_budget,
                supervisor_window=args.supervisor_window_ms / 1e3,
                retry_budget=args.retry_budget if faulty else None,
                retry_budget_refill=args.retry_budget_refill,
                hedge_after=(
                    args.hedge_after_ms / 1e3
                    if args.hedge_after_ms is not None and faulty
                    else None
                ),
                ingress=args.ingress,
                work_stealing=args.work_stealing,
                telemetry=telemetry,
                trace_capacity=args.trace_capacity,
                seed=args.seed,
            ),
        )

    def timed_stream(server: InferenceServer) -> float:
        # submit() returns RequestHandle futures; .completed/.result() read
        # the terminal state once drain() has settled the stream.
        start = time.perf_counter()
        if classes is None:
            handles = server.submit_many(nodes)
        else:
            handles = [
                server.submit(node, request_class=name)
                for node, name in zip(nodes, classes)
            ]
        server.drain()
        seconds = time.perf_counter() - start
        incomplete = sum(1 for handle in handles if not handle.completed)
        if incomplete:
            print(
                f"note: {incomplete}/{len(handles)} requests rejected/shed/expired/failed "
                f"under admission control or faults"
            )
        return seconds

    # Naive baseline: one request per batch, no cache — what "no serving
    # engine" looks like.  Then the engine with micro-batching + cache.
    baseline = build_server(1, 0, args.executor)
    baseline_seconds = timed_stream(baseline)
    baseline.shutdown()

    # Only the main measured server takes the fault plan (if any): the naive
    # baseline and the executor/hot-path comparisons stay fault-free so the
    # printed ratios keep meaning "engine vs no engine", not "faults vs none".
    server = build_server(
        args.batch_size, args.cache, args.executor, faulty=True, telemetry=telemetry_mode
    )
    batched_seconds = timed_stream(server)
    cold = server.stats()

    # reset_stats opens a fresh telemetry window, so the exported metrics and
    # trace below describe the warm pass only.
    server.reset_stats()
    warm_seconds = timed_stream(server)
    warm = server.stats()

    # Per-shard measured stage cost of the warm pass (before shutdown), for
    # the predicted-vs-measured table.
    measured_per_shard = {}
    for worker in server.workers:
        seconds, served = measured_per_shard.get(worker.shard.part_id, (0.0, 0))
        measured_per_shard[worker.shard.part_id] = (
            seconds + sum(worker.timings.totals.values()),
            served + worker.nodes_served,
        )

    export_lines = []
    if args.metrics_out is not None:
        server.telemetry.write_metrics(args.metrics_out)
        export_lines.append(f"  metrics (warm pass) -> {args.metrics_out}")
    if args.trace_out is not None:
        server.telemetry.write_trace(args.trace_out)
        tracer = server.tracer
        export_lines.append(
            f"  chrome trace (warm pass) -> {args.trace_out} "
            f"({len(tracer.finished())} request spans, "
            f"{len(tracer.attempts())} attempts, "
            f"{tracer.dropped_traces} dropped)"
        )
    server.shutdown()

    # Serial vs thread-pool vs worker-process executors: replay the cold
    # stream under each (no cache, so the comparison is pure flush
    # execution).  The process plane serves only the compiled exact hot
    # path, so it drops out of the comparison under other modes.
    executor_names = ["serial", "concurrent"]
    if args.mode == "exact" and args.hot_path == "compiled":
        executor_names.append("process")
    executor_lines = []
    for executor in executor_names:
        comparison = build_server(args.batch_size, 0, executor)
        seconds = timed_stream(comparison)
        peak = comparison.stats().peak_concurrency
        comparison.shutdown()
        executor_lines.append(
            f"  {executor:10s}: {seconds * 1e3:8.1f} ms "
            f"({args.requests / seconds:7.0f} req/s, peak concurrency {peak})"
        )

    # Hot-path comparison: the compiled fast path vs the PR-3 reference
    # implementation, cold and warm caches (exact mode only).
    hotpath_lines = []
    if args.mode == "exact":
        # The process plane only serves the compiled hot path; compare the
        # hot paths on the serial executor in that case.
        hotpath_executor = "serial" if args.executor == "process" else args.executor
        for hot_path in ("legacy", "compiled"):
            comparison = build_server(args.batch_size, args.cache, hotpath_executor, hot_path=hot_path)
            cold_hp = timed_stream(comparison)
            warm_hp = timed_stream(comparison)
            comparison.shutdown()
            hotpath_lines.append(
                f"  {hot_path:8s}: cold {cold_hp * 1e3:8.1f} ms "
                f"({args.requests / cold_hp:7.0f} req/s)   "
                f"warm {warm_hp * 1e3:8.1f} ms ({args.requests / warm_hp:7.0f} req/s)"
            )

    estimates = estimate_shard_request_cycles(
        args.model,
        server.shards,
        num_classes=graph.num_classes,
        hidden_features=args.hidden,
        num_layers=model.num_layers,
        sample_sizes=fanouts,
    )
    # Predicted (perfmodel cycles on the CirCore accelerator) vs measured
    # (warm-pass stage seconds on this host) per request, per shard.  The
    # two columns run on different hardware, so the interesting signal is
    # how the *ratio across shards* tracks: a shard the model prices high
    # should also measure high.
    cycle_lines = []
    for shard, estimate in zip(server.shards, estimates):
        predicted_us = estimate.cycles_per_node / estimate.config.frequency_hz * 1e6
        seconds, served = measured_per_shard.get(shard.part_id, (0.0, 0))
        if served > 0:
            measured = f"{seconds / served * 1e6:9.1f} us/request ({served} nodes)"
        else:
            measured = "      n/a (no warm traffic)"
        cycle_lines.append(
            f"  shard {shard.part_id}: predicted {estimate.cycles_per_node:9.0f} cycles/request "
            f"({predicted_us:7.1f} us @ 100 MHz)   measured {measured}"
        )
    cycle_lines = "\n".join(cycle_lines)
    executor_comparison = "\n".join(executor_lines)
    hotpath_comparison = (
        "--- hot-path comparison (legacy = PR-3 reference) ---\n"
        + "\n".join(hotpath_lines)
        + "\n"
        if hotpath_lines
        else ""
    )
    return (
        f"{server.describe()}\n"
        f"--- cold pass ({args.requests} requests) ---\n{cold.render()}\n"
        f"--- warm pass (same requests) ---\n{warm.render()}\n"
        f"--- wall-clock ---\n"
        f"  request-at-a-time (no cache): {baseline_seconds * 1e3:.1f} ms "
        f"({args.requests / baseline_seconds:.0f} req/s)\n"
        f"  micro-batched cold          : {batched_seconds * 1e3:.1f} ms "
        f"({args.requests / batched_seconds:.0f} req/s, "
        f"{baseline_seconds / batched_seconds:.1f}x)\n"
        f"  micro-batched warm          : {warm_seconds * 1e3:.1f} ms "
        f"({args.requests / warm_seconds:.0f} req/s, "
        f"{baseline_seconds / warm_seconds:.1f}x)\n"
        f"--- executor comparison ({args.shards} shards, cold, no cache) ---\n"
        f"{executor_comparison}\n"
        f"{hotpath_comparison}"
        f"--- perfmodel: predicted vs measured cost per request ---\n{cycle_lines}"
        + ("\n--- telemetry exports ---\n" + "\n".join(export_lines) if export_lines else "")
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "table2":
        output = _run_table2()
    elif args.command == "table3":
        output = _run_table3(args)
    elif args.command == "table5":
        output = _run_table5()
    elif args.command == "table6":
        output = _run_table6()
    elif args.command == "figure6":
        output = _run_figure6()
    elif args.command == "figure7":
        output = _run_figure7()
    elif args.command == "ablation-rfft":
        output = _run_ablation_rfft()
    elif args.command == "ablation-agg-only":
        output = _run_ablation_agg_only(args)
    elif args.command == "eval-bench":
        output = _run_eval_bench(args)
    elif args.command == "profile":
        output = _run_profile(args)
    elif args.command == "search":
        output = _run_search(args)
    elif args.command == "partition":
        output = _run_partition(args)
    elif args.command == "serve-bench":
        output = _run_serve_bench(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command}")
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
