"""Build :class:`GNNWorkload` descriptions for the four GNN variants.

The operation inventory per model follows Table I:

* **GCN** — aggregation is a degree-normalised neighbour sum (no weight
  matrix, VPU-only work); combination is one FC per node.
* **GS-Pool** — aggregation applies the pooling FC to every sampled
  neighbour, then ReLU + element-wise max; combination is one FC on the
  concatenated ``[a_v || h_v]`` vector.
* **G-GCN** — aggregation applies the two gate matrices ``W_H`` / ``W_C`` per
  sampled neighbour, a sigmoid and a gated sum; combination is one FC.
* **GAT** — aggregation projects both endpoints of every sampled edge through
  the shared ``W`` for the attention logits (two projections per neighbour,
  matching the paper's Table II accounting), plus softmax and the weighted
  sum; combination is one FC.

The profiling setup of Section II-B (Reddit, sample size 25, 512-dim hidden
features, GAT with two 128-dim heads) is obtained with the defaults of
:func:`profiling_workload`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..graph.datasets import DatasetStats, dataset_stats
from .spec import GNNWorkload, LayerWorkload, MatVecOp, VectorOp

__all__ = ["build_workload", "profiling_workload", "MODEL_NAMES", "canonical_model_name"]

MODEL_NAMES = ("GCN", "GS-Pool", "G-GCN", "GAT")

_CANONICAL = {
    "gcn": "GCN",
    "gs-pool": "GS-Pool",
    "gs_pool": "GS-Pool",
    "gspool": "GS-Pool",
    "graphsage": "GS-Pool",
    "g-gcn": "G-GCN",
    "ggcn": "G-GCN",
    "gat": "GAT",
}


def canonical_model_name(name: str) -> str:
    """Map any accepted spelling to the paper's canonical model name."""
    key = name.lower()
    if key not in _CANONICAL:
        raise KeyError(f"unknown GNN model '{name}'; known: {', '.join(MODEL_NAMES)}")
    return _CANONICAL[key]


def _layer_dims(in_features: int, hidden_features: int, out_features: int, num_layers: int) -> Sequence[Tuple[int, int]]:
    dims = [in_features] + [hidden_features] * (num_layers - 1) + [out_features]
    return [(dims[k], dims[k + 1]) for k in range(num_layers)]


def _gcn_layer(index: int, sample: int, d_in: int, d_out: int) -> LayerWorkload:
    return LayerWorkload(
        layer_index=index,
        sample_size=sample,
        in_features=d_in,
        out_features=d_out,
        matvecs=(MatVecOp(d_out, d_in, 1.0, "combination", "combine_fc"),),
        vector_ops=(
            # Scale-and-accumulate of S neighbour vectors (1 multiply + 1 add per element).
            VectorOp(2.0 * sample * d_in, "aggregation", "normalised_sum"),
            VectorOp(float(d_out), "combination", "relu"),
        ),
    )


def _gs_pool_layer(index: int, sample: int, d_in: int, d_out: int, d_pool: Optional[int]) -> LayerWorkload:
    # The pooling FC projects into the hidden dimension (GraphSAGE convention,
    # and the accounting behind the paper's Table II / Table V numbers).
    pool = d_pool if d_pool is not None else d_out
    return LayerWorkload(
        layer_index=index,
        sample_size=sample,
        in_features=d_in,
        out_features=d_out,
        matvecs=(
            MatVecOp(pool, d_in, float(sample), "aggregation", "pool_fc"),
            MatVecOp(d_out, pool + d_in, 1.0, "combination", "combine_fc"),
        ),
        vector_ops=(
            VectorOp(float(sample * pool), "aggregation", "relu"),
            VectorOp(float(sample * pool), "aggregation", "max_pool"),
            VectorOp(float(d_out), "combination", "relu"),
        ),
    )


def _ggcn_layer(index: int, sample: int, d_in: int, d_out: int, gate_features: Optional[int]) -> LayerWorkload:
    gate = gate_features if gate_features is not None else d_out
    return LayerWorkload(
        layer_index=index,
        sample_size=sample,
        in_features=d_in,
        out_features=d_out,
        matvecs=(
            MatVecOp(gate, d_in, float(sample), "aggregation", "gate_neighbor"),
            MatVecOp(gate, d_in, float(sample), "aggregation", "gate_self"),
            MatVecOp(d_out, d_in, 1.0, "combination", "combine_fc"),
        ),
        vector_ops=(
            VectorOp(float(sample * gate), "aggregation", "sigmoid"),
            VectorOp(2.0 * sample * d_in, "aggregation", "gated_sum"),
            VectorOp(float(d_out), "combination", "relu"),
        ),
    )


def _gat_layer(
    index: int, sample: int, d_in: int, d_out: int, num_heads: int, head_features: Optional[int]
) -> LayerWorkload:
    head = head_features if head_features is not None else max(d_out // num_heads, 1)
    attention_width = num_heads * head
    return LayerWorkload(
        layer_index=index,
        sample_size=sample,
        in_features=d_in,
        out_features=d_out,
        matvecs=(
            # Both endpoints of every sampled edge are projected for the
            # attention logits (the paper's 2x accounting).
            MatVecOp(attention_width, d_in, 2.0 * sample, "aggregation", "attention_projection"),
            MatVecOp(d_out, d_in, 1.0, "combination", "combine_fc"),
        ),
        vector_ops=(
            VectorOp(float(sample * attention_width), "aggregation", "attention_logits"),
            VectorOp(3.0 * sample, "aggregation", "softmax"),
            VectorOp(2.0 * sample * d_in, "aggregation", "weighted_sum"),
            VectorOp(float(d_out), "combination", "elu"),
        ),
    )


def build_workload(
    model: str,
    dataset: "DatasetStats | str",
    hidden_features: int = 512,
    num_layers: int = 2,
    sample_sizes: Sequence[int] = (25, 10),
    num_classes: Optional[int] = None,
    num_heads: int = 2,
    head_features: Optional[int] = None,
    pool_features: Optional[int] = None,
    gate_features: Optional[int] = None,
    output_features: Optional[int] = None,
) -> GNNWorkload:
    """Build the analytical workload of ``model`` on ``dataset``.

    Defaults follow the paper's evaluation setup: 2 layers, 512-dim hidden
    vectors and sampling sizes ``S1 = 25, S2 = 10`` (Section IV-A).
    """
    stats = dataset_stats(dataset) if isinstance(dataset, str) else dataset
    name = canonical_model_name(model)
    if len(sample_sizes) != num_layers:
        raise ValueError("sample_sizes must provide one entry per layer")
    classes = num_classes if num_classes is not None else stats.num_classes
    final = output_features if output_features is not None else hidden_features
    dims = _layer_dims(stats.num_features, hidden_features, final if final else classes, num_layers)

    layers = []
    for index, ((d_in, d_out), sample) in enumerate(zip(dims, sample_sizes)):
        if name == "GCN":
            layers.append(_gcn_layer(index, sample, d_in, d_out))
        elif name == "GS-Pool":
            layers.append(_gs_pool_layer(index, sample, d_in, d_out, pool_features))
        elif name == "G-GCN":
            layers.append(_ggcn_layer(index, sample, d_in, d_out, gate_features))
        else:
            layers.append(_gat_layer(index, sample, d_in, d_out, num_heads, head_features))
    return GNNWorkload(model=name, num_nodes=stats.num_nodes, layers=tuple(layers), dataset=stats.name)


def profiling_workload(model: str, sample_size: int = 25, feature_dim: int = 512) -> GNNWorkload:
    """Single-layer Reddit workload used for the Table II profiling study.

    The paper profiles one layer with 512-dimensional input and output
    features, sample size 25, and (for GAT) two 128-dimensional heads.
    """
    stats = dataset_stats("reddit")
    synthetic_stats = DatasetStats("reddit", stats.num_nodes, stats.num_edges, feature_dim, stats.num_classes)
    return build_workload(
        model,
        synthetic_stats,
        hidden_features=feature_dim,
        num_layers=1,
        sample_sizes=(sample_size,),
        num_heads=2,
        head_features=128,
        output_features=feature_dim,
    )
