"""Analytical workload models of the four GNN variants."""

from .builder import MODEL_NAMES, build_workload, canonical_model_name, profiling_workload
from .spec import BYTES_PER_VALUE, GNNWorkload, LayerWorkload, MatVecOp, Phase, VectorOp

__all__ = [
    "MODEL_NAMES",
    "build_workload",
    "profiling_workload",
    "canonical_model_name",
    "GNNWorkload",
    "LayerWorkload",
    "MatVecOp",
    "VectorOp",
    "Phase",
    "BYTES_PER_VALUE",
]
