"""Analytical GNN workload descriptions.

The profiling study (Table II), the performance & resource model
(Equations 3–7) and the accelerator/baseline latency comparisons
(Figures 6–7) all reason about a GNN task *analytically*: how many
matrix-vector products of which shapes, and how much element-wise vector
work, each layer performs per target node in the aggregation and combination
phases.  :class:`GNNWorkload` is that description; it is built from a model
name + dataset statistics by :mod:`repro.workloads.builder` and consumed by
``repro.profiling`` and ``repro.hardware``.

Operation accounting used throughout the repository (documented here once):

* a multiply-accumulate counts as **2 FLOPs** (one multiply + one add);
* element-wise vector operations count **1 FLOP per element**;
* data volumes assume **4-byte** values (the prototype uses 32-bit fixed point);
* weights are counted once per processing batch (they stay in the on-chip
  Weight Buffer), features are streamed per node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Optional, Tuple

__all__ = ["Phase", "MatVecOp", "VectorOp", "LayerWorkload", "GNNWorkload", "BYTES_PER_VALUE"]

Phase = Literal["aggregation", "combination"]

#: 32-bit values everywhere (the FPGA prototype uses 32-bit fixed point).
BYTES_PER_VALUE = 4


@dataclass(frozen=True)
class MatVecOp:
    """A weight-matrix  x  feature-vector product executed per target node.

    Attributes
    ----------
    out_features, in_features:
        Shape ``N x M`` of the weight matrix.
    count_per_node:
        How many such products each target node requires in this layer
        (``S`` for per-sampled-neighbour matrices, ``1`` for combination).
    phase:
        Which phase ('aggregation' or 'combination') the product belongs to.
    name:
        Human-readable identifier (e.g. ``"pool_fc"``, ``"gate_neighbor"``).
    """

    out_features: int
    in_features: int
    count_per_node: float
    phase: Phase
    name: str = "matvec"

    def flops_per_node(self) -> float:
        """Dense FLOPs per target node (2 FLOPs per MAC)."""
        return 2.0 * self.out_features * self.in_features * self.count_per_node

    def weight_parameters(self) -> int:
        """Parameter count of the dense weight matrix."""
        return self.out_features * self.in_features


@dataclass(frozen=True)
class VectorOp:
    """Element-wise / reduction work executed on the VPU per target node."""

    elements_per_node: float
    phase: Phase
    name: str = "vector"

    def flops_per_node(self) -> float:
        return float(self.elements_per_node)


@dataclass(frozen=True)
class LayerWorkload:
    """Per-layer workload: sample size, feature dims and the operations above."""

    layer_index: int
    sample_size: int
    in_features: int
    out_features: int
    matvecs: Tuple[MatVecOp, ...] = ()
    vector_ops: Tuple[VectorOp, ...] = ()

    def matvecs_in_phase(self, phase: Phase) -> List[MatVecOp]:
        return [op for op in self.matvecs if op.phase == phase]

    def flops_per_node(self, phase: Optional[Phase] = None) -> float:
        total = 0.0
        for op in self.matvecs:
            if phase is None or op.phase == phase:
                total += op.flops_per_node()
        for op in self.vector_ops:
            if phase is None or op.phase == phase:
                total += op.flops_per_node()
        return total

    def bytes_per_node(self, phase: Phase) -> float:
        """Feature traffic per target node (neighbour reads + output writes)."""
        if phase == "aggregation":
            # Read S neighbour feature vectors, write one aggregated vector.
            read = self.sample_size * self.in_features
            write = max(
                (op.out_features for op in self.matvecs_in_phase("aggregation")),
                default=self.in_features,
            )
            return BYTES_PER_VALUE * (read + write)
        # Combination: read the aggregated (+self) vector, write the output.
        read = sum(op.in_features for op in self.matvecs_in_phase("combination")) or self.in_features
        return BYTES_PER_VALUE * (read + self.out_features)


@dataclass(frozen=True)
class GNNWorkload:
    """A complete GNN task: model, dataset statistics and per-layer workloads."""

    model: str
    num_nodes: int
    layers: Tuple[LayerWorkload, ...]
    dataset: str = "custom"

    # -- aggregate statistics ---------------------------------------------------

    def total_flops(self, phase: Optional[Phase] = None) -> float:
        """Total FLOPs across all layers and nodes (optionally one phase)."""
        return sum(self.num_nodes * layer.flops_per_node(phase) for layer in self.layers)

    def total_bytes(self, phase: Phase) -> float:
        """Total feature traffic in bytes for ``phase``."""
        return sum(self.num_nodes * layer.bytes_per_node(phase) for layer in self.layers)

    def arithmetic_intensity(self, phase: Phase) -> float:
        """FLOPs per byte of feature traffic for ``phase``."""
        flops = self.total_flops(phase)
        traffic = self.total_bytes(phase)
        return flops / traffic if traffic else float("inf")

    def weight_parameters(self, phase: Optional[Phase] = None) -> int:
        """Dense parameter count across all layers (optionally one phase)."""
        total = 0
        for layer in self.layers:
            for op in layer.matvecs:
                if phase is None or op.phase == phase:
                    total += op.weight_parameters()
        return total

    def per_layer_flops(self) -> List[Dict[str, float]]:
        """FLOP breakdown per layer (used by examples and EXPERIMENTS.md)."""
        rows = []
        for layer in self.layers:
            rows.append(
                {
                    "layer": layer.layer_index,
                    "aggregation": self.num_nodes * layer.flops_per_node("aggregation"),
                    "combination": self.num_nodes * layer.flops_per_node("combination"),
                }
            )
        return rows

    def summary(self) -> str:
        agg = self.total_flops("aggregation")
        comb = self.total_flops("combination")
        return (
            f"{self.model} on {self.dataset}: aggregation {agg:.2e} FLOPs "
            f"(AI {self.arithmetic_intensity('aggregation'):.1f}), "
            f"combination {comb:.2e} FLOPs (AI {self.arithmetic_intensity('combination'):.1f})"
        )
