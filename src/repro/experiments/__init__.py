"""Experiment harnesses for every table and figure in the paper's evaluation."""

from .ablations import (
    AggregatorOnlyResult,
    RFFTAblationResult,
    render_aggregator_only,
    run_aggregator_only_ablation,
    run_rfft_ablation,
)
from .figure6 import (
    PAPER_FIGURE6_SUMMARY,
    Figure6Entry,
    Figure6Result,
    render_figure6,
    run_figure6,
)
from .figure7 import (
    PAPER_FIGURE7_SUMMARY,
    Figure7Entry,
    Figure7Result,
    render_figure7,
    run_figure7,
)
from .table2 import PAPER_TABLE2, Table2Row, render_table2, run_table2
from .table3 import PAPER_TABLE3, Table3Cell, Table3Result, render_table3, run_table3
from .table5 import PAPER_TABLE5, Table5Row, render_table5, run_table5
from .table6 import PAPER_TABLE6, Table6Row, render_table6, run_table6
from .tables import format_float, format_scientific, format_table

__all__ = [
    "format_table",
    "format_float",
    "format_scientific",
    "PAPER_TABLE2",
    "Table2Row",
    "run_table2",
    "render_table2",
    "PAPER_TABLE3",
    "Table3Cell",
    "Table3Result",
    "run_table3",
    "render_table3",
    "PAPER_TABLE5",
    "Table5Row",
    "run_table5",
    "render_table5",
    "PAPER_TABLE6",
    "Table6Row",
    "run_table6",
    "render_table6",
    "PAPER_FIGURE6_SUMMARY",
    "Figure6Entry",
    "Figure6Result",
    "run_figure6",
    "render_figure6",
    "PAPER_FIGURE7_SUMMARY",
    "Figure7Entry",
    "Figure7Result",
    "run_figure7",
    "render_figure7",
    "RFFTAblationResult",
    "run_rfft_ablation",
    "AggregatorOnlyResult",
    "run_aggregator_only_ablation",
    "render_aggregator_only",
]
