"""Experiment harness for Table III — compression ratio vs. accuracy.

The paper trains each GNN variant on Reddit node classification with
block-circulant weights of block size n in {1, 16, 32, 64, 128} (n = 1 being
the uncompressed baseline) and reports the theoretical computation reduction
(TCR), the storage reduction (SR) and the attained accuracy.

The real Reddit graph is not available offline, so this harness trains on the
synthetic Reddit stand-in from :mod:`repro.graph.datasets`, scaled down so a
full sweep runs in minutes.  Absolute accuracies therefore differ from the
paper; the reproduced quantities are the TCR/SR columns (exact) and the
accuracy-vs-block-size *trend* (small, monotonic-ish degradation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..compression.compress import CompressionConfig
from ..compression.ratios import storage_reduction, theoretical_computation_reduction
from ..graph.datasets import load_dataset
from ..graph.graph import Graph
from ..models.base import create_model
from ..models.trainer import Trainer, TrainingConfig
from .tables import format_float, format_table

__all__ = ["PAPER_TABLE3", "Table3Cell", "Table3Result", "run_table3", "render_table3"]

#: Accuracy numbers reported in the paper's Table III (Reddit, 2-layer models,
#: 512-dim hidden vectors).
PAPER_TABLE3: Dict[int, Dict[str, float]] = {
    1: {"GCN": 0.924, "GS-Pool": 0.948, "G-GCN": 0.950, "GAT": 0.926},
    16: {"GCN": 0.922, "GS-Pool": 0.941, "G-GCN": 0.944, "GAT": 0.922},
    32: {"GCN": 0.920, "GS-Pool": 0.939, "G-GCN": 0.942, "GAT": 0.921},
    64: {"GCN": 0.920, "GS-Pool": 0.938, "G-GCN": 0.938, "GAT": 0.919},
    128: {"GCN": 0.919, "GS-Pool": 0.938, "G-GCN": 0.935, "GAT": 0.920},
}

DEFAULT_BLOCK_SIZES = (1, 16, 32, 64, 128)
DEFAULT_MODELS = ("GCN", "GS-Pool", "G-GCN", "GAT")


@dataclass(frozen=True)
class Table3Cell:
    """Accuracy of one (model, block size) pair."""

    model: str
    block_size: int
    accuracy: float
    final_loss: float
    paper_accuracy: Optional[float] = None


@dataclass
class Table3Result:
    """The full compression-vs-accuracy sweep."""

    block_sizes: Sequence[int]
    models: Sequence[str]
    cells: List[Table3Cell] = field(default_factory=list)

    def accuracy(self, model: str, block_size: int) -> float:
        for cell in self.cells:
            if cell.model == model and cell.block_size == block_size:
                return cell.accuracy
        raise KeyError(f"no result for {model} at n={block_size}")

    def accuracy_drop(self, model: str, block_size: int) -> float:
        """Accuracy drop relative to the uncompressed (n = 1) run."""
        return self.accuracy(model, 1) - self.accuracy(model, block_size)


def run_table3(
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    models: Sequence[str] = DEFAULT_MODELS,
    graph: Optional[Graph] = None,
    dataset: str = "reddit",
    dataset_scale: float = 0.002,
    num_features: int = 64,
    hidden_features: int = 64,
    epochs: int = 4,
    fanouts: Sequence[int] = (10, 5),
    batch_size: int = 64,
    seed: int = 0,
    eval_mode: str = "sampled",
) -> Table3Result:
    """Train every (model, block size) pair and collect test accuracies.

    The defaults are sized for a several-minute laptop run on the synthetic
    Reddit stand-in.  Pass a pre-built ``graph`` (and larger dims/epochs) to
    run a bigger study.  ``eval_mode="full"`` switches validation/test
    accuracy to full-graph layer-wise inference (faster and deterministic).
    """
    if graph is None:
        graph = load_dataset(dataset, scale=dataset_scale, seed=seed, num_features=num_features)
    result = Table3Result(block_sizes=tuple(block_sizes), models=tuple(models))
    for model_name in models:
        for block_size in block_sizes:
            compression = CompressionConfig(block_size=block_size)
            model = create_model(
                model_name,
                in_features=graph.num_features,
                hidden_features=hidden_features,
                num_classes=graph.num_classes,
                compression=compression,
                seed=seed,
            )
            config = TrainingConfig(
                epochs=epochs,
                batch_size=batch_size,
                fanouts=tuple(fanouts),
                learning_rate=0.01,
                seed=seed,
                eval_mode=eval_mode,
            )
            trainer = Trainer(model, graph, config)
            history = trainer.fit()
            accuracy = trainer.test_accuracy()
            paper = PAPER_TABLE3.get(block_size, {}).get(model_name)
            result.cells.append(
                Table3Cell(
                    model=model_name,
                    block_size=block_size,
                    accuracy=accuracy,
                    final_loss=history.final_train_loss,
                    paper_accuracy=paper,
                )
            )
    return result


def render_table3(result: Table3Result) -> str:
    """Render the sweep in the paper's Table III layout (one row per block size)."""
    rows = []
    for block_size in result.block_sizes:
        row = [
            f"n = {block_size}",
            format_float(theoretical_computation_reduction(block_size), 1) + "x",
            format_float(storage_reduction(block_size), 1) + "x",
        ]
        for model in result.models:
            row.append(format_float(result.accuracy(model, block_size)))
        rows.append(row)
    headers = ["Block Size", "TCR", "SR", *result.models]
    return format_table(headers, rows)
