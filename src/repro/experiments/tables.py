"""Small helpers for rendering experiment results as ASCII tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_float", "format_scientific"]


def format_float(value: float, digits: int = 3) -> str:
    """Format a float compactly (NaN-safe)."""
    if value != value:  # NaN
        return "n/a"
    return f"{value:.{digits}f}"


def format_scientific(value: float, digits: int = 2) -> str:
    """Format a float in scientific notation (NaN-safe)."""
    if value != value:
        return "n/a"
    return f"{value:.{digits}e}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` with column-wise alignment."""
    string_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        if len(row) != len(headers):
            raise ValueError("every row must have one cell per header")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    header_line = "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    separator = "-" * len(header_line)
    body = [
        "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        for row in string_rows
    ]
    return "\n".join([header_line, separator, *body])
