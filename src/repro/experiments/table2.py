"""Experiment harness for Table II — GNN profiling on Reddit.

Regenerates the total-computation and arithmetic-intensity table for the four
GNN variants under the paper's profiling setup (Reddit, sample size 25,
512-dimensional features, GAT with two 128-dim heads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..profiling.flops import profile_all_models
from .tables import format_scientific, format_table

__all__ = ["PAPER_TABLE2", "Table2Row", "run_table2", "render_table2"]

#: The values printed in the paper's Table II (FLOPs and Ops/Byte), for
#: side-by-side comparison in EXPERIMENTS.md.  Note the paper counts a MAC as
#: one operation; this repository counts 2 FLOPs per MAC (see
#: ``repro.workloads.spec``), so measured totals are ~2x these numbers while
#: all ratios are preserved.
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "GCN": {"agg_flops": 3.7e9, "comb_flops": 7.5e10, "agg_ai": 0.5, "comb_ai": 256.3},
    "GS-Pool": {"agg_flops": 1.9e12, "comb_flops": 1.5e11, "agg_ai": 257.5, "comb_ai": 512.2},
    "G-GCN": {"agg_flops": 3.7e12, "comb_flops": 7.5e10, "agg_ai": 256.0, "comb_ai": 256.3},
    "GAT": {"agg_flops": 1.9e12, "comb_flops": 7.5e10, "agg_ai": 512.8, "comb_ai": 256.3},
}


@dataclass(frozen=True)
class Table2Row:
    """One model's measured and paper-reported profiling numbers."""

    model: str
    aggregation_flops: float
    combination_flops: float
    aggregation_intensity: float
    combination_intensity: float
    paper: Dict[str, float]


def run_table2(sample_size: int = 25, feature_dim: int = 512) -> List[Table2Row]:
    """Profile all four models and pair each with the paper's reference row."""
    rows: List[Table2Row] = []
    for profile in profile_all_models(sample_size=sample_size, feature_dim=feature_dim):
        rows.append(
            Table2Row(
                model=profile.model,
                aggregation_flops=profile.aggregation.flops,
                combination_flops=profile.combination.flops,
                aggregation_intensity=profile.aggregation.arithmetic_intensity,
                combination_intensity=profile.combination.arithmetic_intensity,
                paper=PAPER_TABLE2[profile.model],
            )
        )
    return rows


def render_table2(rows: Sequence[Table2Row] | None = None) -> str:
    """Render the measured Table II next to the paper's numbers."""
    rows = rows if rows is not None else run_table2()
    table_rows = []
    for row in rows:
        table_rows.append(
            [
                row.model,
                format_scientific(row.aggregation_flops),
                format_scientific(row.combination_flops),
                f"{row.aggregation_intensity:.1f}",
                f"{row.combination_intensity:.1f}",
                format_scientific(row.paper["agg_flops"]),
                format_scientific(row.paper["comb_flops"]),
            ]
        )
    return format_table(
        ["Model", "Agg FLOPs", "Comb FLOPs", "Agg AI", "Comb AI", "Paper Agg", "Paper Comb"],
        table_rows,
    )
