"""Experiment harness for Figure 7 — energy-efficiency comparison.

Figure 7 reports Nodes-per-Joule of BlockGNN-opt (measured at about 4.6 W)
against the Xeon Gold 5220 CPU baseline (125 W) on every (model, dataset)
task; Section IV-D summarises the result as 33.9x–111.9x energy savings,
68.9x on average.  This harness derives the same metric from the Figure 6
latency estimates and the published power numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..graph.datasets import dataset_stats
from ..hardware.energy import BLOCKGNN_POWER_WATTS, CPU_POWER_WATTS, EnergyResult
from .figure6 import DEFAULT_DATASETS, DEFAULT_MODELS, Figure6Result, run_figure6
from .tables import format_scientific, format_table

__all__ = ["PAPER_FIGURE7_SUMMARY", "Figure7Entry", "Figure7Result", "run_figure7", "render_figure7"]

#: Headline numbers quoted in Section IV-D for Figure 7.
PAPER_FIGURE7_SUMMARY = {
    "min_energy_reduction": 33.9,
    "max_energy_reduction": 111.9,
    "mean_energy_reduction": 68.9,
}


@dataclass(frozen=True)
class Figure7Entry:
    """Energy efficiency of BlockGNN-opt and the CPU on one task."""

    model: str
    dataset: str
    blockgnn: EnergyResult
    cpu: EnergyResult

    @property
    def energy_reduction(self) -> float:
        return self.blockgnn.nodes_per_joule / self.cpu.nodes_per_joule


@dataclass
class Figure7Result:
    """All Figure 7 entries plus the aggregate reduction statistics."""

    entries: List[Figure7Entry] = field(default_factory=list)

    @property
    def min_energy_reduction(self) -> float:
        return min(e.energy_reduction for e in self.entries)

    @property
    def max_energy_reduction(self) -> float:
        return max(e.energy_reduction for e in self.entries)

    @property
    def mean_energy_reduction(self) -> float:
        values = [e.energy_reduction for e in self.entries]
        return sum(values) / len(values)


def run_figure7(
    figure6: Optional[Figure6Result] = None,
    models: Sequence[str] = DEFAULT_MODELS,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    blockgnn_power: float = BLOCKGNN_POWER_WATTS,
    cpu_power: float = CPU_POWER_WATTS,
    **figure6_kwargs,
) -> Figure7Result:
    """Compute Nodes/J for BlockGNN-opt and the CPU on every task."""
    figure6 = figure6 if figure6 is not None else run_figure6(models, datasets, **figure6_kwargs)
    result = Figure7Result()
    for entry in figure6.entries:
        num_nodes = dataset_stats(entry.dataset).num_nodes
        blockgnn = EnergyResult(
            platform="BlockGNN-opt",
            num_nodes=num_nodes,
            latency_seconds=entry.blockgnn_opt_seconds,
            power_watts=blockgnn_power,
        )
        cpu = EnergyResult(
            platform="CPU",
            num_nodes=num_nodes,
            latency_seconds=entry.cpu_seconds,
            power_watts=cpu_power,
        )
        result.entries.append(
            Figure7Entry(model=entry.model, dataset=entry.dataset, blockgnn=blockgnn, cpu=cpu)
        )
    return result


def render_figure7(result: Figure7Result) -> str:
    """Render the Nodes/J series of Figure 7 as a table."""
    rows = []
    for entry in result.entries:
        rows.append(
            [
                entry.model,
                entry.dataset,
                format_scientific(entry.blockgnn.nodes_per_joule),
                format_scientific(entry.cpu.nodes_per_joule),
                f"{entry.energy_reduction:.1f}x",
            ]
        )
    headers = ["Model", "Dataset", "BlockGNN Nodes/J", "CPU Nodes/J", "Energy reduction"]
    return format_table(headers, rows)
