"""Experiment harness for Figure 6 — end-to-end performance comparison.

For every (GNN model, dataset) pair the paper compares four architectures:

1. **BlockGNN-base** — the fixed configuration (16 FFT/IFFT channels, 4x4
   systolic array, l = m = 1) running the block-circulant-compressed model;
2. **BlockGNN-opt** — the per-task configuration found by the design-space
   exploration, same compressed model;
3. **CPU** — the Xeon Gold 5220 running the uncompressed model (the
   normalisation baseline of the figure);
4. **HyGCN** — the FPGA-scaled two-engine baseline running the uncompressed
   model.

Figure 6 plots speedup relative to the CPU; this harness reproduces those
series analytically (the Reddit graph is processed as two partitions exactly
as in the paper, which leaves total latency unchanged in the cycle model but
is reflected in the per-pass node counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.datasets import dataset_stats
from ..hardware.config import BLOCKGNN_BASE, CirCoreConfig
from ..hardware.cpu import CPURooflineModel
from ..hardware.hygcn import HyGCNModel
from ..perfmodel.model import estimate_performance
from ..perfmodel.search import SearchSpace, search_optimal_config
from ..workloads.builder import build_workload
from .tables import format_table

__all__ = ["PAPER_FIGURE6_SUMMARY", "Figure6Entry", "Figure6Result", "run_figure6", "render_figure6"]

#: Headline numbers quoted in Section IV-C for Figure 6.
PAPER_FIGURE6_SUMMARY = {
    "mean_speedup_vs_cpu": 2.3,
    "mean_speedup_vs_hygcn": 4.2,
    "max_speedup_vs_hygcn": 8.3,
    "max_speedup_task": ("G-GCN", "reddit"),
}

DEFAULT_MODELS = ("GS-Pool", "GCN", "G-GCN", "GAT")
DEFAULT_DATASETS = ("cora", "citeseer", "pubmed", "reddit")


@dataclass(frozen=True)
class Figure6Entry:
    """Latencies of the four architectures on one (model, dataset) task."""

    model: str
    dataset: str
    blockgnn_base_seconds: float
    blockgnn_opt_seconds: float
    cpu_seconds: float
    hygcn_seconds: float

    @property
    def speedups_vs_cpu(self) -> Dict[str, float]:
        """The Figure 6 series: speedup of each architecture relative to the CPU."""
        return {
            "BlockGNN-base": self.cpu_seconds / self.blockgnn_base_seconds,
            "BlockGNN-opt": self.cpu_seconds / self.blockgnn_opt_seconds,
            "CPU": 1.0,
            "HyGCN": self.cpu_seconds / self.hygcn_seconds,
        }

    @property
    def speedup_opt_vs_hygcn(self) -> float:
        return self.hygcn_seconds / self.blockgnn_opt_seconds

    @property
    def speedup_opt_vs_base(self) -> float:
        return self.blockgnn_base_seconds / self.blockgnn_opt_seconds


@dataclass
class Figure6Result:
    """All Figure 6 entries plus aggregate statistics."""

    entries: List[Figure6Entry] = field(default_factory=list)

    def entry(self, model: str, dataset: str) -> Figure6Entry:
        for item in self.entries:
            if item.model == model and item.dataset == dataset:
                return item
        raise KeyError(f"no entry for {model}/{dataset}")

    @property
    def mean_speedup_vs_cpu(self) -> float:
        values = [e.speedups_vs_cpu["BlockGNN-opt"] for e in self.entries]
        return sum(values) / len(values) if values else float("nan")

    @property
    def mean_speedup_vs_hygcn(self) -> float:
        values = [e.speedup_opt_vs_hygcn for e in self.entries]
        return sum(values) / len(values) if values else float("nan")

    @property
    def max_speedup_vs_hygcn(self) -> Tuple[float, str, str]:
        best = max(self.entries, key=lambda e: e.speedup_opt_vs_hygcn)
        return best.speedup_opt_vs_hygcn, best.model, best.dataset


def run_figure6(
    models: Sequence[str] = DEFAULT_MODELS,
    datasets: Sequence[str] = DEFAULT_DATASETS,
    block_size: int = 128,
    hidden_features: int = 512,
    sample_sizes: Tuple[int, int] = (25, 10),
    base_config: CirCoreConfig = BLOCKGNN_BASE,
    space: Optional[SearchSpace] = None,
    reddit_partitions: int = 2,
) -> Figure6Result:
    """Compute the Figure 6 latency matrix analytically."""
    cpu_model = CPURooflineModel()
    hygcn_model = HyGCNModel()
    result = Figure6Result()
    for dataset in datasets:
        stats = dataset_stats(dataset)
        partitions = reddit_partitions if stats.name == "reddit" else 1
        for model in models:
            workload = build_workload(
                model, stats, hidden_features=hidden_features, sample_sizes=sample_sizes
            )
            nodes_per_pass = stats.num_nodes // partitions

            base_estimate = estimate_performance(workload, base_config)
            opt_point = search_optimal_config(workload, block_size=block_size, space=space)
            cpu_estimate = cpu_model.estimate(workload)
            hygcn_estimate = hygcn_model.estimate(workload)

            # The graph is processed partition-by-partition; every node is
            # still visited exactly once so total latency is the sum over
            # passes (identical to the single-pass number in this model).
            scale = partitions * (nodes_per_pass / stats.num_nodes)
            result.entries.append(
                Figure6Entry(
                    model=workload.model,
                    dataset=stats.name,
                    blockgnn_base_seconds=base_estimate.latency_seconds * scale,
                    blockgnn_opt_seconds=opt_point.latency_seconds * scale,
                    cpu_seconds=cpu_estimate.latency_seconds * scale,
                    hygcn_seconds=hygcn_estimate.latency_seconds * scale,
                )
            )
    return result


def render_figure6(result: Figure6Result) -> str:
    """Render the speedup-vs-CPU series of Figure 6 as a table."""
    rows = []
    for entry in result.entries:
        speedups = entry.speedups_vs_cpu
        rows.append(
            [
                entry.model,
                entry.dataset,
                f"{speedups['BlockGNN-base']:.2f}x",
                f"{speedups['BlockGNN-opt']:.2f}x",
                "1.00x",
                f"{speedups['HyGCN']:.2f}x",
                f"{entry.speedup_opt_vs_hygcn:.2f}x",
            ]
        )
    headers = ["Model", "Dataset", "Base/CPU", "Opt/CPU", "CPU", "HyGCN/CPU", "Opt vs HyGCN"]
    return format_table(headers, rows)
