"""Ablation harnesses for the two Section V discussion points.

1. **RFFT** — GNN features are real-valued, so real-input FFTs halve the
   spectral work; the paper points to this as the way to close the gap
   between the achieved (8.3x) and theoretical (18.3x) speedup.  The harness
   compares FLOP counts and estimated CirCore cycles with complex vs. real
   transforms and checks numerical equivalence of the two kernels.
2. **Compress only the aggregators** — leaving the combination matrices dense
   costs compression ratio but keeps the accuracy drop under 0.5%.  The
   harness trains both variants and reports accuracy and parameter counts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..compression.circulant import BlockCirculantSpec, random_block_circulant
from ..compression.compress import CompressionConfig, model_compression_report
from ..compression.spectral import (
    block_circulant_matmul,
    block_circulant_matmul_rfft,
    block_circulant_operation_count,
)
from ..graph.datasets import load_dataset
from ..graph.graph import Graph
from ..hardware.config import CirCoreConfig, HardwareConstants, ZC706
from ..models.base import create_model
from ..models.trainer import Trainer, TrainingConfig
from ..perfmodel.model import estimate_performance
from ..workloads.builder import build_workload
from .tables import format_float, format_table

__all__ = [
    "RFFTAblationResult",
    "run_rfft_ablation",
    "AggregatorOnlyResult",
    "run_aggregator_only_ablation",
    "render_aggregator_only",
]


# ---------------------------------------------------------------------------
# Ablation 1: real-valued FFT
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RFFTAblationResult:
    """Operation counts and cycle estimates with complex vs. real FFTs."""

    block_size: int
    complex_flops: float
    rfft_flops: float
    complex_cycles: float
    rfft_cycles: float
    max_output_difference: float

    @property
    def flop_reduction(self) -> float:
        return self.complex_flops / self.rfft_flops

    @property
    def cycle_reduction(self) -> float:
        return self.complex_cycles / self.rfft_cycles


def run_rfft_ablation(
    out_features: int = 512,
    in_features: int = 512,
    block_size: int = 128,
    model: str = "GS-Pool",
    dataset: str = "reddit",
    config: Optional[CirCoreConfig] = None,
    constants: HardwareConstants = ZC706,
    seed: int = 0,
) -> RFFTAblationResult:
    """Quantify the RFFT saving on one layer and on a full workload estimate."""
    rng = np.random.default_rng(seed)
    spec = BlockCirculantSpec(out_features, in_features, block_size)
    weights = random_block_circulant(spec, rng)
    features = rng.standard_normal((4, in_features))
    complex_out = block_circulant_matmul(features, weights, spec)
    real_out = block_circulant_matmul_rfft(features, weights, spec)
    difference = float(np.abs(complex_out - real_out).max())

    complex_flops = block_circulant_operation_count(spec, use_rfft=False)
    rfft_flops = block_circulant_operation_count(spec, use_rfft=True)

    workload = build_workload(model, dataset, hidden_features=out_features)
    if config is None:
        from ..hardware.config import BLOCKGNN_BASE

        config = BLOCKGNN_BASE
    complex_cycles = estimate_performance(workload, config, constants).total_cycles
    # The RFFT halves the per-transform latency and the spectral MAC work; we
    # model it as halving alpha(n), consistent with processing n/2+1 bins.
    halved = dataclasses.replace(constants, fft_cycles_n128=max(1, constants.fft_cycles_n128 // 2))
    rfft_cycles = estimate_performance(workload, config, halved).total_cycles
    return RFFTAblationResult(
        block_size=block_size,
        complex_flops=complex_flops,
        rfft_flops=rfft_flops,
        complex_cycles=complex_cycles,
        rfft_cycles=rfft_cycles,
        max_output_difference=difference,
    )


# ---------------------------------------------------------------------------
# Ablation 2: compress only the aggregators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AggregatorOnlyResult:
    """Accuracy / storage of full vs. aggregator-only compression."""

    model: str
    block_size: int
    accuracy_uncompressed: float
    accuracy_full_compression: float
    accuracy_aggregator_only: float
    stored_parameters_full: int
    stored_parameters_aggregator_only: int

    @property
    def drop_full(self) -> float:
        return self.accuracy_uncompressed - self.accuracy_full_compression

    @property
    def drop_aggregator_only(self) -> float:
        return self.accuracy_uncompressed - self.accuracy_aggregator_only


def _train_variant(
    model_name: str,
    graph: Graph,
    compression: CompressionConfig,
    hidden_features: int,
    epochs: int,
    fanouts: Sequence[int],
    seed: int,
    eval_mode: str = "sampled",
) -> tuple:
    model = create_model(
        model_name,
        in_features=graph.num_features,
        hidden_features=hidden_features,
        num_classes=graph.num_classes,
        compression=compression,
        seed=seed,
    )
    trainer = Trainer(
        model,
        graph,
        TrainingConfig(
            epochs=epochs, batch_size=64, fanouts=tuple(fanouts), seed=seed, eval_mode=eval_mode
        ),
    )
    trainer.fit()
    accuracy = trainer.test_accuracy()
    stored = model_compression_report(model)["stored"]
    return accuracy, stored


def run_aggregator_only_ablation(
    model_name: str = "GS-Pool",
    block_size: int = 16,
    graph: Optional[Graph] = None,
    dataset: str = "reddit",
    dataset_scale: float = 0.002,
    num_features: int = 64,
    hidden_features: int = 64,
    epochs: int = 4,
    fanouts: Sequence[int] = (10, 5),
    seed: int = 0,
    eval_mode: str = "sampled",
) -> AggregatorOnlyResult:
    """Train uncompressed / fully-compressed / aggregator-only variants."""
    if graph is None:
        graph = load_dataset(dataset, scale=dataset_scale, seed=seed, num_features=num_features)

    acc_dense, _ = _train_variant(
        model_name,
        graph,
        CompressionConfig(block_size=1),
        hidden_features,
        epochs,
        fanouts,
        seed,
        eval_mode,
    )
    acc_full, stored_full = _train_variant(
        model_name,
        graph,
        CompressionConfig(block_size=block_size),
        hidden_features,
        epochs,
        fanouts,
        seed,
        eval_mode,
    )
    acc_agg_only, stored_agg_only = _train_variant(
        model_name,
        graph,
        CompressionConfig(block_size=block_size, compress_combination=False),
        hidden_features,
        epochs,
        fanouts,
        seed,
        eval_mode,
    )
    return AggregatorOnlyResult(
        model=model_name,
        block_size=block_size,
        accuracy_uncompressed=acc_dense,
        accuracy_full_compression=acc_full,
        accuracy_aggregator_only=acc_agg_only,
        stored_parameters_full=stored_full,
        stored_parameters_aggregator_only=stored_agg_only,
    )


def render_aggregator_only(result: AggregatorOnlyResult) -> str:
    rows = [
        ["uncompressed", format_float(result.accuracy_uncompressed), "-"],
        [
            "full compression",
            format_float(result.accuracy_full_compression),
            str(result.stored_parameters_full),
        ],
        [
            "aggregator only",
            format_float(result.accuracy_aggregator_only),
            str(result.stored_parameters_aggregator_only),
        ],
    ]
    return format_table(["Variant", "Accuracy", "Stored parameters"], rows)
