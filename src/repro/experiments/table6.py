"""Experiment harness for Table VI — FPGA resource utilisation for GS-Pool.

For every dataset's searched BlockGNN-opt configuration (Table V), report the
estimated BRAM / DSP / FF / LUT utilisation on the ZC706 next to the paper's
measured post-implementation numbers.  The DSP column uses the published
Equation 8 coefficients; the other columns use the calibrated per-component
costs documented in :class:`repro.hardware.config.HardwareConstants`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hardware.config import HardwareConstants, ZC706
from ..perfmodel.resources import ResourceUsage, estimate_resources
from ..perfmodel.search import SearchSpace
from .table5 import Table5Row, run_table5
from .tables import format_table

__all__ = ["PAPER_TABLE6", "Table6Row", "run_table6", "render_table6"]

#: Utilisation percentages reported in the paper's Table VI.
PAPER_TABLE6: Dict[str, Dict[str, float]] = {
    "cora": {"BRAM_18K": 0.393, "DSP48": 0.998, "FF": 0.277, "LUT": 0.346},
    "citeseer": {"BRAM_18K": 0.418, "DSP48": 0.998, "FF": 0.353, "LUT": 0.448},
    "pubmed": {"BRAM_18K": 0.422, "DSP48": 0.936, "FF": 0.361, "LUT": 0.322},
    "reddit": {"BRAM_18K": 0.429, "DSP48": 0.987, "FF": 0.391, "LUT": 0.453},
}

#: Device totals quoted in Table VI.
DEVICE_TOTALS = {"BRAM_18K": 1090, "DSP48": 900, "FF": 437_200, "LUT": 218_600}


@dataclass(frozen=True)
class Table6Row:
    """Resource utilisation of one dataset's BlockGNN-opt configuration."""

    dataset: str
    resources: ResourceUsage
    paper: Dict[str, float]

    @property
    def utilization(self) -> Dict[str, float]:
        return self.resources.utilization()


def run_table6(
    table5_rows: Optional[Sequence[Table5Row]] = None,
    constants: HardwareConstants = ZC706,
    space: Optional[SearchSpace] = None,
) -> List[Table6Row]:
    """Compute the utilisation of every searched configuration."""
    rows = table5_rows if table5_rows is not None else run_table5(space=space)
    results: List[Table6Row] = []
    for row in rows:
        usage = estimate_resources(row.design.config, constants)
        results.append(Table6Row(dataset=row.dataset, resources=usage, paper=PAPER_TABLE6.get(row.dataset, {})))
    return results


def render_table6(rows: Sequence[Table6Row]) -> str:
    """Render the utilisation table (measured% / paper%)."""
    table_rows = []
    for row in rows:
        utilization = row.utilization
        cells = [row.dataset]
        for key in ("BRAM_18K", "DSP48", "FF", "LUT"):
            measured = utilization[key] * 100.0
            paper = row.paper.get(key)
            cells.append(f"{measured:.1f}%" + (f" ({paper * 100.0:.1f}%)" if paper is not None else ""))
        table_rows.append(cells)
    headers = ["Dataset", "BRAM_18K", "DSP48", "FF", "LUT"]
    return format_table(headers, table_rows)
