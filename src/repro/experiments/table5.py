"""Experiment harness for Table V — searched optimal parameters for GS-Pool.

Runs the Section III-D design-space exploration for the GS-Pool model on each
benchmark dataset (block size 128, ZC706 DSP budget, S1 = 25, S2 = 10,
512-dim hidden vectors) and reports the chosen ``x, y, r, c, l, m`` and the
estimated minimum cycles, next to the paper's reported configuration.

The paper states that the aggregation phase dominates GS-Pool, so its model
only counts aggregation cycles; ``phases`` defaults to the same approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.datasets import dataset_stats
from ..perfmodel.search import DesignPoint, SearchSpace, search_optimal_config
from ..workloads.builder import build_workload
from .tables import format_table

__all__ = ["PAPER_TABLE5", "Table5Row", "run_table5", "render_table5"]

#: The configurations reported in the paper's Table V (GS-Pool, n = 128).
PAPER_TABLE5: Dict[str, Dict[str, float]] = {
    "cora": {"x": 18, "y": 7, "r": 6, "c": 4, "l": 1, "m": 1, "min_cycles": 24.9e6},
    "citeseer": {"x": 21, "y": 4, "r": 6, "c": 4, "l": 1, "m": 1, "min_cycles": 64.4e6},
    "pubmed": {"x": 14, "y": 15, "r": 4, "c": 4, "l": 1, "m": 1, "min_cycles": 95.4e6},
    "reddit": {"x": 15, "y": 13, "r": 5, "c": 4, "l": 1, "m": 1, "min_cycles": 1240.3e6},
}

DEFAULT_DATASETS = ("cora", "citeseer", "pubmed", "reddit")


@dataclass(frozen=True)
class Table5Row:
    """The searched configuration for one dataset."""

    dataset: str
    design: DesignPoint
    paper: Dict[str, float]

    @property
    def parameters(self) -> Dict[str, int]:
        return self.design.config.describe()

    @property
    def min_cycles(self) -> float:
        return self.design.total_cycles


def run_table5(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    model: str = "GS-Pool",
    block_size: int = 128,
    hidden_features: int = 512,
    sample_sizes: Tuple[int, int] = (25, 10),
    phases: Sequence[str] = ("aggregation",),
    space: Optional[SearchSpace] = None,
) -> List[Table5Row]:
    """Run the DSE for every dataset and pair the result with the paper's row."""
    rows: List[Table5Row] = []
    for dataset in datasets:
        stats = dataset_stats(dataset)
        workload = build_workload(
            model, stats, hidden_features=hidden_features, sample_sizes=sample_sizes
        )
        design = search_optimal_config(workload, block_size=block_size, phases=phases, space=space)
        rows.append(Table5Row(dataset=stats.name, design=design, paper=PAPER_TABLE5.get(stats.name, {})))
    return rows


def render_table5(rows: Sequence[Table5Row]) -> str:
    """Render the searched parameters in the paper's Table V layout."""
    table_rows = []
    for row in rows:
        params = row.parameters
        paper_cycles = row.paper.get("min_cycles")
        table_rows.append(
            [
                row.dataset,
                params["x"],
                params["y"],
                params["r"],
                params["c"],
                params["l"],
                params["m"],
                f"{row.min_cycles / 1e6:.1f}M",
                f"{paper_cycles / 1e6:.1f}M" if paper_cycles else "n/a",
            ]
        )
    headers = ["Dataset", "x", "y", "r", "c", "l", "m", "min cycles", "paper cycles"]
    return format_table(headers, table_rows)
