"""The serving plane's metric schema, pre-resolved for the hot path.

One :class:`ServingMetrics` instance per server registers every metric family
the engine, batcher, health tracker, fault plan and workers emit, and
resolves the labelled children **once at build time** — the hot path then
increments plain child objects (one lock + one add each) instead of paying a
label lookup per event.  With ``telemetry="off"`` the registry is the null
registry and every child here is the shared no-op metric, so the same engine
code runs with zero accounting.

Naming follows Prometheus conventions: ``*_total`` counters,
``*_seconds`` histograms, base units, labels for the dimensions that fan out
(``shard``, ``replica``, ``status``, ``cause``, ``kind``, ``stage``).
"""

from __future__ import annotations

from ..telemetry import default_latency_buckets

__all__ = ["ServingMetrics"]

#: Terminal statuses the per-shard request counter fans out over (matches
#: :data:`repro.serving.batcher.TERMINAL_STATUSES`; imported lazily to keep
#: this module importable on its own).
_STATUSES = ("completed", "rejected", "shed", "expired", "failed")

#: Flush causes of :class:`~repro.serving.batcher.MicroBatcher.pop_batch`.
_FLUSH_CAUSES = ("size", "delay", "forced")

#: Batch sizes are small integers; a tighter log grid than the latency
#: default keeps single-request and full batches in distinct buckets.
_BATCH_EDGES = default_latency_buckets(lo=1.0, hi=4096.0, per_decade=6)


class ServingMetrics:
    """Every serving metric family, with per-shard/replica children resolved."""

    def __init__(
        self, registry, num_shards: int, worker_ids, class_names=("standard",)
    ) -> None:
        self.registry = registry
        shards = [str(shard_id) for shard_id in range(num_shards)]

        requests = registry.counter(
            "serving_requests_total",
            "Requests by owning shard and terminal status",
            labels=("shard", "status"),
        )
        #: status -> per-shard child list, indexed by shard id.
        self.requests = {
            status: [requests.labels(shard, status) for shard in shards]
            for status in _STATUSES
        }

        class_requests = registry.counter(
            "serving_class_requests_total",
            "Requests by admission class and terminal status",
            labels=("request_class", "status"),
        )
        #: class name -> {status -> child}; the per-class ledger.
        self.class_requests = {
            str(name): {
                status: class_requests.labels(str(name), status)
                for status in _STATUSES
            }
            for name in class_names
        }

        class_queue_wait = registry.histogram(
            "serving_class_queue_wait_seconds",
            "Queue wait by admission class (the signal class weights act on)",
            labels=("request_class",),
        )
        self.class_queue_wait = {
            str(name): class_queue_wait.labels(str(name)) for name in class_names
        }

        latency = registry.histogram(
            "serving_request_latency_seconds",
            "Submit-to-completion latency of completed requests",
            labels=("shard",),
        )
        self.latency = [latency.labels(shard) for shard in shards]

        queue_wait = registry.histogram(
            "serving_queue_wait_seconds",
            "Time requests spent queued before their batch was popped",
            labels=("shard",),
        )
        self.queue_wait = [queue_wait.labels(shard) for shard in shards]

        batch_size = registry.histogram(
            "serving_batch_size",
            "Executed batch sizes per flush",
            labels=("shard",),
            edges=_BATCH_EDGES,
        )
        self.batch_size = [batch_size.labels(shard) for shard in shards]

        flushes = registry.counter(
            "serving_flushes_total",
            "Batch flushes by shard and trigger cause",
            labels=("shard", "cause"),
        )
        self.flushes = {
            cause: [flushes.labels(shard, cause) for shard in shards]
            for cause in _FLUSH_CAUSES
        }

        retries = registry.counter(
            "serving_retries_total",
            "Request-attempts retried after a dispatch failure",
            labels=("shard",),
        )
        self.retries = [retries.labels(shard) for shard in shards]

        failovers = registry.counter(
            "serving_failovers_total",
            "Batches completed on a sibling replica after a failure",
            labels=("shard",),
        )
        self.failovers = [failovers.labels(shard) for shard in shards]

        degraded = registry.counter(
            "serving_degraded_total",
            "Requests served stale from the degraded cache/halo path",
            labels=("shard",),
        )
        self.degraded = [degraded.labels(shard) for shard in shards]

        hedges = registry.counter(
            "serving_hedges_total",
            "Hedged dispatches fired (primary stalled past the hedge threshold)",
            labels=("shard",),
        )
        self.hedges = [hedges.labels(shard) for shard in shards]

        hedges_won = registry.counter(
            "serving_hedges_won_total",
            "Hedged dispatches where the hedge finished before the primary",
            labels=("shard",),
        )
        self.hedges_won = [hedges_won.labels(shard) for shard in shards]

        hedges_cancelled = registry.counter(
            "serving_hedges_cancelled_total",
            "Losing attempts of hedged dispatches cancelled before completion",
            labels=("shard",),
        )
        self.hedges_cancelled = [hedges_cancelled.labels(shard) for shard in shards]

        retry_attempts = registry.counter(
            "serving_retry_attempts_total",
            "Batch retry attempts actually performed, engine-wide",
        )
        self.retry_attempts = retry_attempts.labels()

        budget_exhausted = registry.counter(
            "serving_retry_budget_exhausted_total",
            "Failed batches denied a retry by the empty process-wide budget",
        )
        self.retry_budget_exhausted = budget_exhausted.labels()

        #: per-replica supervisor actions (ReplicaSupervisor sinks).
        self.supervisor_restarts = registry.counter(
            "serving_supervisor_restarts_total",
            "Replica rebuilds performed by the supervisor, per replica slot",
            labels=("replica",),
        )
        self.supervisor_quarantines = registry.counter(
            "serving_supervisor_quarantines_total",
            "Replicas pulled from dispatch by the supervisor, per replica slot",
            labels=("replica",),
        )

        #: per-replica dispatch failures + breaker opens (HealthTracker sinks).
        self.replica_failures = registry.counter(
            "serving_replica_failures_total",
            "Dispatch attempts that failed, per replica",
            labels=("replica",),
        )
        self.breaker_opens = registry.counter(
            "serving_breaker_opens_total",
            "Circuit-breaker open transitions, per replica",
            labels=("replica",),
        )

        #: per-kind injected faults (FaultPlan sink).
        self.faults = registry.counter(
            "serving_faults_injected_total",
            "Faults the plan actually fired, by kind",
            labels=("kind",),
        )

        worker_failures = registry.counter(
            "serving_worker_failures_total",
            "Dispatch attempts that raised (real or injected), engine-wide",
        )
        self.worker_failures = worker_failures.labels()

        block = registry.counter(
            "serving_block_waits_total",
            "Condition waits by submitters blocked on a full queue",
        )
        self.block_waits = block.labels()
        self_flushes = registry.counter(
            "serving_block_self_flushes_total",
            "Blocked submitters that force-flushed the shard themselves",
        )
        self.block_self_flushes = self_flushes.labels()

        rounds = registry.counter(
            "serving_flush_rounds_total",
            "Flush rounds the scheduler dispatched",
        )
        self.flush_rounds = rounds.labels()

        stolen = registry.counter(
            "serving_stolen_batches_total",
            "Batches flushed by work-stealing passes at round barriers",
        )
        self.stolen_batches = stolen.labels()

        #: per-(stage, worker) hot-path stage time; children are bound into
        #: each worker's StageTimer by the engine.
        self.stage_seconds = registry.histogram(
            "serving_stage_seconds",
            "Per-flush wall-clock seconds by hot-path stage and worker",
            labels=("stage", "worker"),
        )

        #: mirrored state gauges (filled by the engine's export collector).
        self.cache_gauge = registry.gauge(
            "serving_cache_events",
            "Embedding-cache counters summed over workers, by event",
            labels=("event",),
        )
        self.halo_gauge = registry.gauge(
            "serving_halo_events",
            "Shared halo-tier counters, by event",
            labels=("event",),
        )
        self.plan_gauge = registry.gauge(
            "serving_plan_cache_events",
            "Restriction-plan cache counters summed over workers, by event",
            labels=("event",),
        )
        self.executor_peak = registry.gauge(
            "serving_executor_peak_concurrency",
            "Maximum flush tasks observed in flight simultaneously",
        ).labels()
        self.queue_depth = registry.gauge(
            "serving_queue_depth",
            "Requests waiting in each shard queue at collection time",
            labels=("shard",),
        )

    # -- ledger reads (ServerStats is a view over these) -------------------------

    def status_total(self, status: str) -> int:
        """Engine-wide terminal count for one status (sum over shards)."""
        return sum(child.value for child in self.requests[status])

    def class_totals(self) -> dict:
        """Per-class terminal counts: ``{class: {status: count}}``."""
        return {
            name: {status: child.value for status, child in children.items()}
            for name, children in self.class_requests.items()
        }

    def retried_total(self) -> int:
        return sum(child.value for child in self.retries)

    def failover_total(self) -> int:
        return sum(child.value for child in self.failovers)

    def degraded_total(self) -> int:
        return sum(child.value for child in self.degraded)

    def hedge_totals(self) -> "tuple[int, int, int]":
        """Engine-wide ``(fired, won, cancelled)`` hedge counts."""
        return (
            sum(child.value for child in self.hedges),
            sum(child.value for child in self.hedges_won),
            sum(child.value for child in self.hedges_cancelled),
        )
