"""Pluggable execution layer for flush batches.

The scheduler hands each flush round to a :class:`FlushExecutor`: a list of
per-shard tasks that may run in any order but must all finish before the
round ends (a barrier, so a :class:`~repro.serving.clock.ManualClock` stays
constant within a round and submissions never race with in-flight flushes).

``SerialExecutor`` runs tasks in order on the calling thread — the default,
and what the deterministic tests drive.  ``ConcurrentExecutor`` fans tasks
out over a ``concurrent.futures.ThreadPoolExecutor``; NumPy's heavy kernels
(matmul, FFT) release the GIL, so shard flushes genuinely overlap.  Both
report the peak number of simultaneously running tasks, surfaced by
:class:`~repro.serving.stats.ServerStats`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["FlushExecutor", "SerialExecutor", "ConcurrentExecutor", "make_executor"]

T = TypeVar("T")
R = TypeVar("R")


class FlushExecutor:
    """Executes one round of flush tasks; results come back in task order."""

    name = "base"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        raise NotImplementedError  # pragma: no cover - interface

    def map_stealing(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        steal: Callable[[], Optional[T]],
        steal_fn: Optional[Callable[[T], R]] = None,
    ) -> List[R]:
        """Like :meth:`map`, but workers that finish their own item keep
        pulling extra items from ``steal()`` (which returns ``None`` when
        nothing is due) until the well runs dry — GNNIE-style work stealing
        at the round barrier.

        ``steal_fn`` (default ``fn``) runs the stolen items, letting the
        caller count them separately.  The returned list holds the primary
        results in task order followed by the stolen results; the barrier
        contract is unchanged — everything settles before the first error
        propagates.
        """
        raise NotImplementedError  # pragma: no cover - interface

    def shutdown(self) -> None:
        """Release any worker threads (idempotent)."""

    @property
    def peak_concurrency(self) -> int:
        """Highest number of tasks observed running at the same time."""
        return 0

    def reset_peak(self) -> None:
        """Forget the peak (used by ``InferenceServer.reset_stats``)."""


class SerialExecutor(FlushExecutor):
    """Runs every task inline on the calling thread, in submission order.

    This is the deterministic reference executor: with a fixed seed and a
    ``ManualClock`` two identical runs produce bit-identical predictions,
    latencies and stats.
    """

    name = "serial"

    def __init__(self) -> None:
        self._peak = 0

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        # Settle the whole round even if a task raises — same barrier
        # contract as ConcurrentExecutor.map: remaining shards still flush,
        # and the first error propagates only after the round completed.
        errors = []
        results: List[R] = []
        for item in items:
            self._peak = max(self._peak, 1)
            try:
                results.append(fn(item))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise errors[0]
        return results

    def map_stealing(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        steal: Callable[[], Optional[T]],
        steal_fn: Optional[Callable[[T], R]] = None,
    ) -> List[R]:
        # Inline stealing: after the round's own tasks, drain the steal
        # source on the same thread.  Deterministic — the steal order is
        # exactly the source's order.
        steal_fn = fn if steal_fn is None else steal_fn
        errors = []
        results: List[R] = []
        for item in items:
            self._peak = max(self._peak, 1)
            try:
                results.append(fn(item))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        while True:
            extra = steal()
            if extra is None:
                break
            try:
                results.append(steal_fn(extra))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise errors[0]
        return results

    @property
    def peak_concurrency(self) -> int:
        return self._peak

    def reset_peak(self) -> None:
        self._peak = 0


class ConcurrentExecutor(FlushExecutor):
    """Thread-pool executor: one round's flush tasks run in parallel.

    ``max_workers`` bounds the fan-out (defaults to the number of tasks per
    round, i.e. one thread per shard).  The pool is created lazily so an
    unused executor costs nothing, and ``shutdown`` is safe to call twice.
    """

    name = "concurrent"

    def __init__(self, max_workers: int) -> None:
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.max_workers = int(max_workers)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._gauge_lock = threading.Lock()
        self._inflight = 0
        self._peak = 0

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="serving-flush"
            )
        return self._pool

    def _tracked(self, fn: Callable[[T], R], item: T) -> R:
        with self._gauge_lock:
            self._inflight += 1
            self._peak = max(self._peak, self._inflight)
        try:
            return fn(item)
        finally:
            with self._gauge_lock:
                self._inflight -= 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        pool = self._ensure_pool()
        futures = [pool.submit(self._tracked, fn, item) for item in items]
        # Collect in task order; the first raising task propagates after the
        # whole round has settled (the barrier must hold even on failure).
        errors = []
        results: List[R] = []
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise errors[0]
        return results

    def map_stealing(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        steal: Callable[[], Optional[T]],
        steal_fn: Optional[Callable[[T], R]] = None,
    ) -> List[R]:
        steal_fn = fn if steal_fn is None else steal_fn
        pool = self._ensure_pool()
        extras: List[R] = []
        extras_lock = threading.Lock()

        def run(item: T) -> R:
            # Finish the assigned shard, then steal until the source is dry —
            # a thread that would otherwise idle at the round barrier drains
            # whatever is still due.  Racing steals are safe: the engine pops
            # batches under its lock, so a raced steal flushes nothing.
            result = self._tracked(fn, item)
            while True:
                extra = steal()
                if extra is None:
                    return result
                stolen = self._tracked(steal_fn, extra)
                with extras_lock:
                    extras.append(stolen)

        futures = [pool.submit(run, item) for item in items]
        errors = []
        results: List[R] = []
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append(exc)
        if errors:
            raise errors[0]
        return results + extras

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    @property
    def peak_concurrency(self) -> int:
        return self._peak

    def reset_peak(self) -> None:
        with self._gauge_lock:
            self._peak = self._inflight


def make_executor(name: str, max_workers: int) -> FlushExecutor:
    """Build the executor named by ``ServingConfig.executor``."""
    if name == "serial":
        return SerialExecutor()
    if name == "concurrent":
        return ConcurrentExecutor(max_workers)
    if name == "process":
        # Imported lazily: procplane imports this module for ConcurrentExecutor.
        from .procplane import ProcessExecutor

        return ProcessExecutor(max_workers)
    raise ValueError(f"executor must be 'serial', 'concurrent' or 'process', got {name!r}")
