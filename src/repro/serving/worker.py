"""Shard workers: execute micro-batches of per-node prediction requests.

A :class:`ShardWorker` owns one :class:`~repro.serving.shard.GraphShard` and
answers prediction requests for the shard's core nodes in one of two modes:

``exact``
    Layer-wise inference restricted to the batch's receptive field.  For each
    layer ``k`` (output side first) the worker asks the
    :class:`~repro.serving.cache.EmbeddingCache` which layer-``k`` hidden
    states it already knows; only the *misses* are expanded by one hop and
    recomputed, by running the layer's ``forward_full`` on the induced
    subgraph of the miss set plus its neighbours.  Because every model's
    full-graph aggregation is row-local (a node's output depends only on its
    own neighbour rows) and node relabelling is monotone, the rows kept are
    exactly what :meth:`repro.models.GNNModel.full_forward` would produce on
    the whole graph — so served predictions match offline full-graph
    evaluation, and cached rows can be reused across batches safely.

``sampled``
    GraphSAGE-style approximate inference: the flushed requests become the
    seed set of a single :class:`~repro.graph.NeighborSampler` mini-batch and
    go through the model's training-time ``forward``.  Cheaper per request on
    huge graphs, stochastic (seeded per worker), never cached.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from ..graph.sampling import NeighborSampler
from ..models.base import GNNModel
from ..tensor.tensor import Tensor, no_grad
from .cache import EmbeddingCache
from .shard import GraphShard, expand_neighborhood

__all__ = ["ShardWorker"]


class ShardWorker:
    """Serves prediction requests for one shard (optionally one of R replicas)."""

    def __init__(
        self,
        worker_id: int,
        shard: GraphShard,
        model: GNNModel,
        cache: EmbeddingCache,
        mode: str = "exact",
        fanouts: Optional[Sequence[int]] = None,
        seed: int = 0,
    ) -> None:
        if mode not in ("exact", "sampled"):
            raise ValueError(f"mode must be 'exact' or 'sampled', got {mode!r}")
        if mode == "sampled":
            if fanouts is None or len(fanouts) != model.num_layers:
                raise ValueError("sampled mode needs one fanout per model layer")
        self.worker_id = worker_id
        self.shard = shard
        self.model = model
        self.cache = cache
        self.mode = mode
        self.sampler = (
            NeighborSampler(shard.graph, fanouts, seed=seed) if mode == "sampled" else None
        )
        # Load counters (read by the least-loaded dispatcher and ServerStats).
        self.batches_served = 0
        self.nodes_served = 0
        # A worker serves one batch at a time: the lock serialises concurrent
        # flushes dispatched to the same worker (its cache and sampler state
        # must see batches in order), while distinct workers run in parallel.
        self._lock = threading.Lock()
        self._gauge_lock = threading.Lock()
        self._inflight = 0
        self.peak_inflight = 0

    # -- public API ------------------------------------------------------------

    def predict(self, global_nodes: np.ndarray) -> np.ndarray:
        """Class predictions for a batch of (shard-core) global node ids."""
        local = self.shard.to_local(np.asarray(global_nodes, dtype=np.int64))
        with self._gauge_lock:
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
        try:
            with self._lock:
                # Standalone-use guard only: when driven by InferenceServer the
                # engine's _serving_mode already pinned eval/no-grad for the
                # whole round (concurrent flushes must never see the training
                # flag transition), making this save/restore a no-op.
                was_training = self.model.training
                self.model.eval()
                try:
                    with no_grad():
                        if self.mode == "exact":
                            logits = self._exact_logits(local)
                        else:
                            batch = self.sampler.sample(local)
                            logits = self.model.forward(batch, graph=self.shard.graph).data
                finally:
                    self.model.train(was_training)
                self.batches_served += 1
                self.nodes_served += len(local)
        finally:
            with self._gauge_lock:
                self._inflight -= 1
        return logits.argmax(axis=-1)

    # -- exact mode --------------------------------------------------------------

    def _layer_dim(self, layer: int) -> int:
        return self.shard.graph.num_features if layer == 0 else self.model.layers[layer - 1].out_features

    def _exact_logits(self, seeds_local: np.ndarray) -> np.ndarray:
        """Receptive-field-restricted layer-wise inference with caching.

        Works in shard-local node ids throughout; the cache is keyed on global
        ids so its contents mean the same thing across shards and restarts.
        """
        graph = self.shard.graph
        num_layers = self.model.num_layers
        self.cache.ensure_signature(self.model.weight_signature())

        unique_seeds = np.unique(seeds_local)
        # Top-down pass: which layer-k values are missing, and which layer-(k-1)
        # values computing them will require (the misses plus their neighbours).
        needed: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * (num_layers + 1)
        miss: List[np.ndarray] = list(needed)
        hits: List[tuple] = [(np.empty(0, dtype=np.int64), [])] * (num_layers + 1)
        needed[num_layers] = unique_seeds
        for k in range(num_layers, 0, -1):
            hit_global, hit_rows, miss_global = self.cache.take(k, self.shard.to_global(needed[k]))
            hits[k] = (self.shard.to_local(hit_global), hit_rows)
            miss[k] = self.shard.to_local(miss_global)
            if len(miss[k]):
                needed[k - 1] = expand_neighborhood(graph, miss[k], 1)

        # Bottom-up pass: raw features feed layer 1; each layer recomputes its
        # misses on the induced restriction graph, then hits and fresh rows are
        # assembled into the next layer's input.
        nodes_prev = needed[0]
        h_prev = graph.features[nodes_prev]
        for k in range(1, num_layers + 1):
            out_dim = self._layer_dim(k)
            if len(miss[k]):
                restriction = graph.subgraph(nodes_prev)
                layer_out = self.model.layers[k - 1].forward_full(
                    Tensor(np.asarray(h_prev, dtype=np.float64)), restriction
                ).data
                computed = layer_out[np.searchsorted(nodes_prev, miss[k])]
                self.cache.put(k, self.shard.to_global(miss[k]), computed)
            else:
                computed = np.empty((0, out_dim))
            values = np.empty((len(needed[k]), out_dim))
            if len(miss[k]):
                values[np.searchsorted(needed[k], miss[k])] = computed
            hit_local, hit_rows = hits[k]
            if len(hit_local):
                values[np.searchsorted(needed[k], hit_local)] = np.stack(hit_rows)
            nodes_prev, h_prev = needed[k], values

        return h_prev[np.searchsorted(unique_seeds, seeds_local)]
