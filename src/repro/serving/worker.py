"""Shard workers: execute micro-batches of per-node prediction requests.

A :class:`ShardWorker` owns one :class:`~repro.serving.shard.GraphShard` and
answers prediction requests for the shard's core nodes in one of two modes:

``exact``
    Layer-wise inference restricted to the batch's receptive field.  For each
    layer ``k`` (output side first) the worker asks the
    :class:`~repro.serving.cache.EmbeddingCache` which layer-``k`` hidden
    states it already knows; only the *misses* are recomputed.  On the
    default **compiled** hot path each miss set becomes a
    :class:`~repro.graph.Restriction` — a row slice of the frozen shard CSR
    with columns remapped into the batch-local index space — and the layer's
    ``forward_restricted`` runs a restricted SpMM / segment reduction against
    the shard's *precomputed* propagation operators (warmed once per worker
    at build time via ``prepare_full``).  No induced ``Graph`` is built and
    no operator is re-normalised per flush.  Because every miss row's full
    neighbourhood is inside the previous layer's needed set by construction,
    the restricted rows are exactly what
    :meth:`repro.models.GNNModel.full_forward` would produce on the whole
    graph — so served predictions match offline full-graph evaluation, and
    cached rows can be reused across batches safely.

    The **legacy** hot path (``hot_path="legacy"``) is the PR-3
    implementation — ``graph.subgraph`` per miss round plus ``forward_full``
    on the induced restriction — kept as the reference the hot-path benchmark
    gates measure against.

``sampled``
    GraphSAGE-style approximate inference: the flushed requests become the
    seed set of a single :class:`~repro.graph.NeighborSampler` mini-batch and
    go through the model's training-time ``forward``.  Cheaper per request on
    huge graphs, stochastic (seeded per worker), never cached.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from ..graph.restriction import Restriction
from ..graph.sampling import NeighborSampler
from ..models.base import GNNModel
from ..tensor.tensor import Tensor, no_grad
from .config import HOT_PATHS
from .shard import GraphShard, expand_neighborhood
from .timing import StageTimer

__all__ = ["ShardWorker"]


class ShardWorker:
    """Serves prediction requests for one shard (optionally one of R replicas)."""

    def __init__(
        self,
        worker_id: int,
        shard: GraphShard,
        model: GNNModel,
        cache,
        mode: str = "exact",
        fanouts: Optional[Sequence[int]] = None,
        seed: int = 0,
        hot_path: str = "compiled",
    ) -> None:
        if mode not in ("exact", "sampled"):
            raise ValueError(f"mode must be 'exact' or 'sampled', got {mode!r}")
        if hot_path not in HOT_PATHS:
            raise ValueError(f"hot_path must be one of {HOT_PATHS}, got {hot_path!r}")
        if mode == "sampled":
            if fanouts is None or len(fanouts) != model.num_layers:
                raise ValueError("sampled mode needs one fanout per model layer")
        self.worker_id = worker_id
        self.shard = shard
        self.model = model
        self.cache = cache
        self.mode = mode
        self.hot_path = hot_path
        self.timings = StageTimer()
        self.sampler = (
            NeighborSampler(shard.graph, fanouts, seed=seed) if mode == "sampled" else None
        )
        if mode == "exact" and hot_path == "compiled" and shard.graph.num_nodes:
            # Shard operator plan: normalise every propagation operator the
            # model's inference needs once, at build time, so the first flush
            # is as cheap as the thousandth.
            for layer in model.layers:
                layer.prepare_full(shard.graph)
        # Parameter list cached once: computing the weight signature per flush
        # must not re-walk the module tree (Parameter objects are stable; only
        # their version counters move).
        self._parameters = model.parameters()
        # Load counters (read by the least-loaded dispatcher and ServerStats).
        self.batches_served = 0
        self.nodes_served = 0
        # A worker serves one batch at a time: the lock serialises concurrent
        # flushes dispatched to the same worker (its cache and sampler state
        # must see batches in order), while distinct workers run in parallel.
        self._lock = threading.Lock()
        self._gauge_lock = threading.Lock()
        self._inflight = 0
        self.peak_inflight = 0

    # -- public API ------------------------------------------------------------

    def predict(self, global_nodes: np.ndarray) -> np.ndarray:
        """Class predictions for a batch of (shard-core) global node ids."""
        local = self.shard.to_local(np.asarray(global_nodes, dtype=np.int64))
        with self._gauge_lock:
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
        try:
            with self._lock:
                # Standalone-use guard only: when driven by InferenceServer the
                # engine's _serving_mode already pinned eval/no-grad for the
                # whole round (concurrent flushes must never see the training
                # flag transition), so the module-tree walk is skipped entirely
                # in the common case.
                was_training = self.model.training
                if was_training:
                    self.model.eval()
                try:
                    with no_grad():
                        if self.mode != "exact":
                            batch = self.sampler.sample(local)
                            logits = self.model.forward(batch, graph=self.shard.graph).data
                        elif self.hot_path == "compiled":
                            logits = self._exact_logits(local)
                        else:
                            logits = self._exact_logits_legacy(local)
                finally:
                    if was_training:
                        self.model.train(True)
                self.batches_served += 1
                self.nodes_served += len(local)
        finally:
            with self._gauge_lock:
                self._inflight -= 1
        return logits.argmax(axis=-1)

    # -- exact mode --------------------------------------------------------------

    def _layer_dim(self, layer: int) -> int:
        return self.shard.graph.num_features if layer == 0 else self.model.layers[layer - 1].out_features

    def _exact_logits(self, seeds_local: np.ndarray) -> np.ndarray:
        """Compiled hot path: cache gathers + restricted SpMM, zero subgraphs.

        Works in shard-local node ids throughout; the cache is keyed on global
        ids so its contents mean the same thing across shards and restarts.
        """
        graph = self.shard.graph
        num_layers = self.model.num_layers
        timer = self.timings
        self.cache.ensure_signature(tuple(param.version for param in self._parameters))

        # Sorted-unique seeds without np.unique's dispatch overhead (the
        # masked-array check alone costs more than this whole dedup).
        ordered = np.sort(seeds_local)
        if len(ordered) > 1:
            keep = np.empty(len(ordered), dtype=bool)
            keep[0] = True
            np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
            unique_seeds = ordered[keep]
        else:
            unique_seeds = ordered
        # Top-down pass: which layer-k values are missing, and which layer-(k-1)
        # values computing them will require.  Each miss set's Restriction is
        # built here and reused below — its column set *is* the next needed
        # set.  The cache reports hits/misses as positions into the lookup, so
        # shard-local ids and global cache keys never need a searchsorted
        # round-trip between index spaces.
        empty = np.empty(0, dtype=np.int64)
        needed: List[np.ndarray] = [empty] * (num_layers + 1)
        miss_masks: List[Optional[np.ndarray]] = [None] * (num_layers + 1)
        miss_global: List[np.ndarray] = [empty] * (num_layers + 1)
        hits: List[tuple] = [(None, None)] * (num_layers + 1)
        plans: List[Optional[Restriction]] = [None] * (num_layers + 1)
        needed[num_layers] = unique_seeds
        for k in range(num_layers, 0, -1):
            if not len(needed[k]):  # everything above fully hit: nothing to do
                hits[k] = (empty, np.empty((0, 0)))
                continue
            nodes_global = self.shard.to_global(needed[k])
            with timer.stage("cache_gather"):
                hit_mask, hit_values = self.cache.take_mask(k, nodes_global)
            hits[k] = (hit_mask, hit_values)
            if len(hit_values) < len(needed[k]):
                miss_mask = ~hit_mask
                miss_masks[k] = miss_mask
                miss_global[k] = nodes_global[miss_mask]
                plans[k] = Restriction(graph, needed[k][miss_mask])
                needed[k - 1] = plans[k].cols

        # Bottom-up pass: raw features feed layer 1; each layer recomputes its
        # misses through its restricted operators, then hits and fresh rows
        # are assembled into the next layer's input.
        h_prev = np.asarray(graph.features[needed[0]], dtype=np.float64)
        for k in range(1, num_layers + 1):
            hit_mask, hit_values = hits[k]
            if plans[k] is None:
                # Fully hit: the gathered slab block already *is* this
                # layer's output, in needed[k] order — no reassembly copy.
                h_prev = hit_values
                continue
            values = np.empty((len(needed[k]), self._layer_dim(k)))
            computed = self.model.layers[k - 1].forward_restricted(
                Tensor(h_prev), plans[k], timer=timer
            ).data
            with timer.stage("cache_scatter"):
                self.cache.put(k, miss_global[k], computed)
            values[miss_masks[k]] = computed
            if len(hit_values):
                values[hit_mask] = hit_values
            h_prev = values

        return h_prev[np.searchsorted(unique_seeds, seeds_local)]

    def _exact_logits_legacy(self, seeds_local: np.ndarray) -> np.ndarray:
        """PR-3 reference path: induced subgraph + ``forward_full`` per round.

        Byte-for-byte the implementation the compiled path replaced (paired
        with :class:`~repro.serving.cache.LegacyEmbeddingCache`); the hot-path
        benchmark's speedup and equality gates run against it.
        """
        graph = self.shard.graph
        num_layers = self.model.num_layers
        self.cache.ensure_signature(self.model.weight_signature())

        unique_seeds = np.unique(seeds_local)
        needed: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * (num_layers + 1)
        miss: List[np.ndarray] = list(needed)
        hits: List[tuple] = [(np.empty(0, dtype=np.int64), [])] * (num_layers + 1)
        needed[num_layers] = unique_seeds
        for k in range(num_layers, 0, -1):
            hit_global, hit_rows, miss_global = self.cache.take(k, self.shard.to_global(needed[k]))
            hits[k] = (self.shard.to_local(hit_global), hit_rows)
            miss[k] = self.shard.to_local(miss_global)
            if len(miss[k]):
                needed[k - 1] = expand_neighborhood(graph, miss[k], 1)

        nodes_prev = needed[0]
        h_prev = graph.features[nodes_prev]
        for k in range(1, num_layers + 1):
            out_dim = self._layer_dim(k)
            if len(miss[k]):
                restriction = graph.subgraph(nodes_prev)
                layer_out = self.model.layers[k - 1].forward_full(
                    Tensor(np.asarray(h_prev, dtype=np.float64)), restriction
                ).data
                computed = layer_out[np.searchsorted(nodes_prev, miss[k])]
                self.cache.put(k, self.shard.to_global(miss[k]), computed)
            else:
                computed = np.empty((0, out_dim))
            values = np.empty((len(needed[k]), out_dim))
            if len(miss[k]):
                values[np.searchsorted(needed[k], miss[k])] = computed
            hit_local, hit_rows = hits[k]
            if len(hit_local):
                values[np.searchsorted(needed[k], hit_local)] = np.stack(hit_rows)
            nodes_prev, h_prev = needed[k], values

        return h_prev[np.searchsorted(unique_seeds, seeds_local)]
