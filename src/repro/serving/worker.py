"""Shard workers: execute micro-batches of per-node prediction requests.

A :class:`ShardWorker` owns one :class:`~repro.serving.shard.GraphShard` and
answers prediction requests for the shard's core nodes in one of two modes:

``exact``
    Layer-wise inference restricted to the batch's receptive field.  For each
    layer ``k`` (output side first) the worker asks the
    :class:`~repro.serving.cache.EmbeddingCache` which layer-``k`` hidden
    states it already knows; nodes it does not know are then offered to the
    shared :class:`~repro.serving.cache.HaloStore` (when the server runs
    one), which gathers boundary rows *another shard already computed*; only
    the remaining misses are recomputed.  On the default **compiled** hot
    path each miss set becomes a :class:`~repro.graph.Restriction` — a row
    slice of the frozen shard CSR with columns remapped into the batch-local
    index space, fetched through a per-worker
    :class:`~repro.graph.PlanCache` so overlapping consecutive miss sets
    reuse (or incrementally patch) recent plans instead of rebuilding — and
    the layer's ``forward_restricted`` runs a restricted SpMM / segment
    reduction against the shard's *precomputed* propagation operators
    (warmed once per worker at build time via ``prepare_full``).  No induced
    ``Graph`` is built and no operator is re-normalised per flush.  Because
    every miss row's full neighbourhood is inside the previous layer's
    needed set by construction, the restricted rows are exactly what
    :meth:`repro.models.GNNModel.full_forward` would produce on the whole
    graph — so served predictions match offline full-graph evaluation, and
    cached (and halo-exchanged) rows can be reused across batches and
    shards safely.

    The **legacy** hot path (``hot_path="legacy"``) is the PR-3
    implementation — ``graph.subgraph`` per miss round plus ``forward_full``
    on the induced restriction — kept as the reference the hot-path benchmark
    gates measure against.

``sampled``
    GraphSAGE-style approximate inference: the flushed requests become the
    seed set of a single :class:`~repro.graph.NeighborSampler` mini-batch and
    go through the model's training-time ``forward``.  Cheaper per request on
    huge graphs, stochastic (seeded per worker), never cached.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

import numpy as np

from ..graph.restriction import PlanCache, Restriction
from ..graph.sampling import NeighborSampler
from ..models.base import GNNModel
from ..tensor.tensor import Tensor, no_grad
from .config import HOT_PATHS
from .shard import GraphShard, expand_neighborhood
from .timing import StageTimer

__all__ = ["ShardWorker", "WorkerRetired"]


class WorkerRetired(RuntimeError):
    """Dispatch against a worker the supervisor already replaced.

    Raised by :meth:`ShardWorker.predict` once :meth:`ShardWorker.retire` has
    run: an in-flight attempt that still holds a reference to the corpse
    fails cleanly into the engine's normal retry path instead of computing on
    (and publishing from) a replica that is no longer registered.
    """


class ShardWorker:
    """Serves prediction requests for one shard (optionally one of R replicas)."""

    def __init__(
        self,
        worker_id: int,
        shard: GraphShard,
        model: GNNModel,
        cache,
        mode: str = "exact",
        fanouts: Optional[Sequence[int]] = None,
        seed: int = 0,
        hot_path: str = "compiled",
        halo_store=None,
        halo_publish_mask: Optional[np.ndarray] = None,
        plan_cache_size: int = 0,
        epoch: int = 0,
    ) -> None:
        if mode not in ("exact", "sampled"):
            raise ValueError(f"mode must be 'exact' or 'sampled', got {mode!r}")
        if hot_path not in HOT_PATHS:
            raise ValueError(f"hot_path must be one of {HOT_PATHS}, got {hot_path!r}")
        if mode == "sampled":
            if fanouts is None or len(fanouts) != model.num_layers:
                raise ValueError("sampled mode needs one fanout per model layer")
        self.worker_id = worker_id
        self.shard = shard
        self.model = model
        self.cache = cache
        self.mode = mode
        self.hot_path = hot_path
        #: Replica incarnation: 0 at server build, bumped by every supervisor
        #: rebuild of this worker slot.
        self.epoch = int(epoch)
        self.retired = False
        compiled_exact = mode == "exact" and hot_path == "compiled"
        # Cross-shard halo tier and the per-worker restriction-plan cache are
        # compiled-exact-path features; the legacy reference path must keep
        # behaving exactly like PR 3.
        self.halo_store = halo_store if compiled_exact else None
        self.plan_cache = (
            PlanCache(plan_cache_size) if compiled_exact and plan_cache_size > 0 else None
        )
        # Defence in depth for the shared tier: only rows whose shard-CSR
        # neighbour list is *complete* (shard-local mask supplied by the
        # engine — exactly the rows the serving recursion legitimately
        # computes) may be published.  A future bug that computed a truncated
        # halo-edge row would corrupt one shard's batch, not propagate
        # server-wide.
        self._halo_publishable = (
            np.asarray(halo_publish_mask, dtype=bool)
            if self.halo_store is not None and halo_publish_mask is not None
            else None
        )
        self.timings = StageTimer()
        self.sampler = (
            NeighborSampler(shard.graph, fanouts, seed=seed) if mode == "sampled" else None
        )
        if mode == "exact" and hot_path == "compiled" and shard.graph.num_nodes:
            # Shard operator plan: normalise every propagation operator the
            # model's inference needs once, at build time, so the first flush
            # is as cheap as the thousandth.
            for layer in model.layers:
                layer.prepare_full(shard.graph)
        # Parameter list cached once: computing the weight signature per flush
        # must not re-walk the module tree (Parameter objects are stable; only
        # their version counters move).
        self._parameters = model.parameters()
        # Load counters (read by the least-loaded dispatcher and ServerStats).
        self.batches_served = 0
        self.nodes_served = 0
        # A worker serves one batch at a time: the lock serialises concurrent
        # flushes dispatched to the same worker (its cache and sampler state
        # must see batches in order), while distinct workers run in parallel.
        self._lock = threading.Lock()
        self._gauge_lock = threading.Lock()
        self._inflight = 0
        self.peak_inflight = 0

    # -- public API ------------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Batches currently inside ``predict`` (rolling-restart drain gate)."""
        with self._gauge_lock:
            return self._inflight

    def retire(self) -> None:
        """Mark this incarnation dead: every later ``predict`` raises.

        Called by the supervisor right before the replacement is registered,
        so attempts racing the swap cannot serve from (or warm the caches of)
        the corpse.
        """
        self.retired = True

    def predict(self, global_nodes: np.ndarray) -> np.ndarray:
        """Class predictions for a batch of (shard-core) global node ids."""
        if self.retired:
            raise WorkerRetired(
                f"worker {self.worker_id} epoch {self.epoch} was retired by the supervisor"
            )
        local = self.shard.to_local(np.asarray(global_nodes, dtype=np.int64))
        with self._gauge_lock:
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
        try:
            with self._lock:
                # Standalone-use guard only: when driven by InferenceServer the
                # engine's _serving_mode already pinned eval/no-grad for the
                # whole round (concurrent flushes must never see the training
                # flag transition), so the module-tree walk is skipped entirely
                # in the common case.
                was_training = self.model.training
                if was_training:
                    self.model.eval()
                try:
                    with no_grad():
                        if self.mode != "exact":
                            batch = self.sampler.sample(local)
                            logits = self.model.forward(batch, graph=self.shard.graph).data
                        elif self.hot_path == "compiled":
                            logits = self._exact_logits(local)
                        else:
                            logits = self._exact_logits_legacy(local)
                finally:
                    if was_training:
                        self.model.train(True)
                self.batches_served += 1
                self.nodes_served += len(local)
        finally:
            with self._gauge_lock:
                self._inflight -= 1
        return logits.argmax(axis=-1)

    def prewarm_from_halo(self) -> int:
        """Seed the private embedding cache from the shared halo tier.

        A rebuilt replica starts cold; the halo store still holds every exact
        boundary row the fleet computed, under the weight signature it was
        computed with.  Copying the in-shard subset over means the
        replacement's first flushes hit instead of recomputing the whole
        receptive field.  Returns the number of rows pre-warmed.
        """
        halo = self.halo_store
        cache = self.cache
        if halo is None or not getattr(cache, "enabled", False):
            return 0
        signature = halo.signature
        if signature is None:
            return 0  # nothing was ever published: cold start is all there is
        cache.ensure_signature(signature)
        warmed = 0
        shard_nodes = self.shard.nodes
        for layer in halo.layers():
            nodes, values = halo.resident(layer)
            if not len(nodes):
                continue
            held = np.isin(nodes, shard_nodes, assume_unique=True)
            if not held.any():
                continue
            cache.put(layer, nodes[held], values[held])
            warmed += int(held.sum())
        return warmed

    def degraded_logits(self, global_nodes: np.ndarray):
        """Last-resort read path for a shard with zero healthy replicas.

        Returns ``(hit_mask, predictions)``: predictions (argmax of the
        final-layer logits) for the positions of ``global_nodes`` whose
        output-layer row is already resident in this replica's embedding
        cache or the shared halo tier.  Nothing is computed and the weight
        signature is deliberately *not* checked — the point of ``stale_ok``
        is that a value cached before the newest weight update is still a
        better answer than a failure.  Misses stay misses (``hit_mask``
        False); the engine fails those requests.
        """
        nodes = np.asarray(global_nodes, dtype=np.int64)
        final = self.model.num_layers
        hit = np.zeros(len(nodes), dtype=bool)
        predictions = np.full(len(nodes), -1, dtype=np.int64)
        if self.mode != "exact" or not len(nodes):
            return hit, predictions
        if self.hot_path == "compiled":
            if getattr(self.cache, "enabled", False):
                mask, values = self.cache.take_mask(final, nodes)
                if len(values):
                    hit |= mask
                    predictions[mask] = values.argmax(axis=-1)
            if self.halo_store is not None and not hit.all():
                remaining = np.where(~hit)[0]
                halo_mask, halo_values = self.halo_store.take_mask(final, nodes[remaining])
                if len(halo_values):
                    positions = remaining[halo_mask]
                    hit[positions] = True
                    predictions[positions] = halo_values.argmax(axis=-1)
        elif getattr(self.cache, "enabled", False):
            hit_global, hit_rows, _ = self.cache.take(final, nodes)
            if len(hit_global):
                answers = {
                    int(node): int(np.argmax(row))
                    for node, row in zip(hit_global, hit_rows)
                }
                for position, node in enumerate(nodes):
                    answer = answers.get(int(node))
                    if answer is not None:
                        hit[position] = True
                        predictions[position] = answer
        return hit, predictions

    # -- exact mode --------------------------------------------------------------

    def _layer_dim(self, layer: int) -> int:
        return self.shard.graph.num_features if layer == 0 else self.model.layers[layer - 1].out_features

    def _exact_logits(self, seeds_local: np.ndarray) -> np.ndarray:
        """Compiled hot path: cache gathers + restricted SpMM, zero subgraphs.

        Works in shard-local node ids throughout; the cache (and the shared
        halo tier) are keyed on global ids so their contents mean the same
        thing across shards and restarts.  Per layer, a node's value comes
        from — in order — this worker's embedding cache, the cross-shard
        :class:`~repro.serving.cache.HaloStore` (boundary rows another shard
        already computed; promoted into the local cache on the way through so
        the next flush hits locally), or a restricted recompute whose plan is
        fetched from (or patched by) the worker's plan cache.
        """
        graph = self.shard.graph
        num_layers = self.model.num_layers
        timer = self.timings
        halo = self.halo_store
        signature = tuple(param.version for param in self._parameters)
        self.cache.ensure_signature(signature)
        if halo is not None:
            halo.ensure_signature(signature)
            # Epoch capture for fault isolation: if a sibling replica fails
            # while this batch is in flight, the engine bumps the store's
            # epoch and every publish below is discarded — a possibly-dying
            # replica must not write into the shared tier.
            halo_epoch = halo.epoch

        # Sorted-unique seeds without np.unique's dispatch overhead (the
        # masked-array check alone costs more than this whole dedup).
        ordered = np.sort(seeds_local)
        if len(ordered) > 1:
            keep = np.empty(len(ordered), dtype=bool)
            keep[0] = True
            np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
            unique_seeds = ordered[keep]
        else:
            unique_seeds = ordered
        # Top-down pass: which layer-k values are missing, and which layer-(k-1)
        # values computing them will require.  Each miss set's Restriction is
        # obtained here and reused below — its column set *is* the next needed
        # set.  The caches report hits as positions into the lookup, so
        # shard-local ids and global cache keys never need a searchsorted
        # round-trip between index spaces.
        empty = np.empty(0, dtype=np.int64)
        needed: List[np.ndarray] = [empty] * (num_layers + 1)
        #: per layer: list of (positions-or-mask over needed[k], value rows)
        hit_parts: List[list] = [[] for _ in range(num_layers + 1)]
        miss_idx: List[np.ndarray] = [empty] * (num_layers + 1)
        miss_global: List[np.ndarray] = [empty] * (num_layers + 1)
        plans: List[Optional[Restriction]] = [None] * (num_layers + 1)
        needed[num_layers] = unique_seeds
        for k in range(num_layers, 0, -1):
            if not len(needed[k]):  # everything above fully hit: nothing to do
                continue
            nodes_global = self.shard.to_global(needed[k])
            with timer.stage("cache_gather"):
                hit_mask, hit_values = self.cache.take_mask(k, nodes_global)
            if len(hit_values):
                hit_parts[k].append((hit_mask, hit_values))
            if len(hit_values) == len(needed[k]):
                continue
            missing = np.where(~hit_mask)[0]
            if halo is not None:
                with timer.stage("halo_gather"):
                    halo_mask, halo_values = halo.take_mask(k, nodes_global[missing])
                if len(halo_values):
                    halo_positions = missing[halo_mask]
                    hit_parts[k].append((halo_positions, halo_values))
                    # Promote exchanged rows into the local cache: the next
                    # flush for them should not leave the worker.
                    with timer.stage("cache_scatter"):
                        self.cache.put(k, nodes_global[halo_positions], halo_values)
                    missing = missing[~halo_mask]
            if len(missing):
                miss_idx[k] = missing
                miss_global[k] = nodes_global[missing]
                with timer.stage("plan_build"):
                    rows = needed[k][missing]
                    if self.plan_cache is not None:
                        # Keyed by layer: patched plans may only inherit a
                        # same-layer column set (the receptive-field distance
                        # budget exactness rests on — see PlanCache).
                        plans[k] = self.plan_cache.restriction(graph, rows, layer=k)
                    else:
                        plans[k] = Restriction(graph, rows)
                needed[k - 1] = plans[k].cols

        # Bottom-up pass: raw features feed layer 1; each layer recomputes its
        # misses through its restricted operators, scattering them straight
        # into the assembly buffer the pre-gathered cache/halo rows already
        # occupy (the layers' ``out=`` contract).
        h_prev = np.asarray(graph.features[needed[0]], dtype=np.float64)
        for k in range(1, num_layers + 1):
            parts = hit_parts[k]
            if plans[k] is None:
                if len(parts) == 1:
                    # Fully hit from one tier: the gathered block already *is*
                    # this layer's output, in needed[k] order — no reassembly.
                    h_prev = parts[0][1]
                else:
                    values = np.empty((len(needed[k]), self._layer_dim(k)))
                    for positions, rows in parts:
                        values[positions] = rows
                    h_prev = values
                continue
            values = np.empty((len(needed[k]), self._layer_dim(k)))
            for positions, rows in parts:
                values[positions] = rows
            computed = self.model.layers[k - 1].forward_restricted(
                Tensor(h_prev), plans[k], timer=timer, out=(values, miss_idx[k])
            ).data
            with timer.stage("cache_scatter"):
                self.cache.put(k, miss_global[k], computed)
            if halo is not None:
                with timer.stage("halo_publish"):
                    if self._halo_publishable is not None:
                        publishable = self._halo_publishable[needed[k][miss_idx[k]]]
                        halo.publish(
                            k,
                            miss_global[k][publishable],
                            computed[publishable],
                            epoch=halo_epoch,
                        )
                    else:
                        halo.publish(k, miss_global[k], computed, epoch=halo_epoch)
            h_prev = values

        return h_prev[np.searchsorted(unique_seeds, seeds_local)]

    def _exact_logits_legacy(self, seeds_local: np.ndarray) -> np.ndarray:
        """PR-3 reference path: induced subgraph + ``forward_full`` per round.

        Byte-for-byte the implementation the compiled path replaced (paired
        with :class:`~repro.serving.cache.LegacyEmbeddingCache`); the hot-path
        benchmark's speedup and equality gates run against it.
        """
        graph = self.shard.graph
        num_layers = self.model.num_layers
        self.cache.ensure_signature(self.model.weight_signature())

        unique_seeds = np.unique(seeds_local)
        needed: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * (num_layers + 1)
        miss: List[np.ndarray] = list(needed)
        hits: List[tuple] = [(np.empty(0, dtype=np.int64), [])] * (num_layers + 1)
        needed[num_layers] = unique_seeds
        for k in range(num_layers, 0, -1):
            hit_global, hit_rows, miss_global = self.cache.take(k, self.shard.to_global(needed[k]))
            hits[k] = (self.shard.to_local(hit_global), hit_rows)
            miss[k] = self.shard.to_local(miss_global)
            if len(miss[k]):
                needed[k - 1] = expand_neighborhood(graph, miss[k], 1)

        nodes_prev = needed[0]
        h_prev = graph.features[nodes_prev]
        for k in range(1, num_layers + 1):
            out_dim = self._layer_dim(k)
            if len(miss[k]):
                restriction = graph.subgraph(nodes_prev)
                layer_out = self.model.layers[k - 1].forward_full(
                    Tensor(np.asarray(h_prev, dtype=np.float64)), restriction
                ).data
                computed = layer_out[np.searchsorted(nodes_prev, miss[k])]
                self.cache.put(k, self.shard.to_global(miss[k]), computed)
            else:
                computed = np.empty((0, out_dim))
            values = np.empty((len(needed[k]), out_dim))
            if len(miss[k]):
                values[np.searchsorted(needed[k], miss[k])] = computed
            hit_local, hit_rows = hits[k]
            if len(hit_local):
                values[np.searchsorted(needed[k], hit_local)] = np.stack(hit_rows)
            nodes_prev, h_prev = needed[k], values

        return h_prev[np.searchsorted(unique_seeds, seeds_local)]
