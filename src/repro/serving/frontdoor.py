"""The server's front door: request handles, request classes, async ingress.

Three pieces turn the synchronous ``submit()`` of PR 3 into an overload-proof
ingress layer:

:class:`RequestHandle`
    The future-style return value of :meth:`InferenceServer.submit`: callers
    get ``result(timeout=)`` / ``done()`` / ``status`` / ``stale`` instead of
    polling ``drain()`` and inspecting a raw record.  Non-completed terminal
    states map to typed exceptions (:class:`RequestRejected`,
    :class:`RequestShed`, :class:`RequestExpired`, :class:`RequestFailed` —
    all ``RuntimeError`` subclasses, so pre-handle error handling keeps
    working).  Handles are awaitable, so ``await server.submit(node)`` works
    from asyncio when the background ingress thread is running.

Request classes
    Every request carries a *class* (``premium`` / ``standard`` /
    ``backfill`` by default) whose weight drives admission: batches pop
    heaviest-class-first with deadline-earliest-first inside a class, and
    overload shedding evicts the lightest class first.  Under 2x overload
    backfill sheds while premium p99 stays bounded — the FIFO-blind
    ``shed_oldest`` of PR 3 becomes class-aware without changing its
    single-class behaviour.

:class:`FrontDoor`
    A background daemon thread that drives the scheduler's flush rounds, so
    requests submitted from any thread (or an event loop) land *during*
    rounds instead of only at the submit/drain barriers.  Enabled with
    ``ServingConfig(ingress="thread")``; ``submit()`` then just enqueues and
    wakes the pump, and ``handle.result()`` blocks until the pump serves the
    request — no explicit ``drain()`` needed.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Tuple, Union

from .batcher import COMPLETED, EXPIRED, FAILED, PENDING, REJECTED, SHED, InferenceRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import InferenceServer

__all__ = [
    "RequestHandle",
    "FrontDoor",
    "RequestError",
    "RequestRejected",
    "RequestShed",
    "RequestExpired",
    "RequestFailed",
    "RequestPending",
    "DEFAULT_REQUEST_CLASSES",
    "normalize_request_classes",
]

#: Default admission classes: weight orders both batch admission (heavier
#: first) and shed-victim selection (lighter first).  The absolute values
#: only matter relative to each other.
DEFAULT_REQUEST_CLASSES: Tuple[Tuple[str, float], ...] = (
    ("premium", 4.0),
    ("standard", 2.0),
    ("backfill", 1.0),
)

ClassSpec = Union[Mapping[str, float], Iterable[Tuple[str, float]]]


def normalize_request_classes(classes: ClassSpec) -> Tuple[Tuple[str, float], ...]:
    """Normalise a ``{name: weight}`` mapping (or pair iterable) to the
    tuple-of-pairs form stored on the frozen config."""
    if isinstance(classes, Mapping):
        pairs = tuple((str(name), float(weight)) for name, weight in classes.items())
    else:
        pairs = tuple((str(name), float(weight)) for name, weight in classes)
    return pairs


# -- terminal-state exception mapping ------------------------------------------


class RequestError(RuntimeError):
    """A request did not complete (terminal non-completed state, or still
    pending where waiting cannot help).

    Subclasses ``RuntimeError`` so code written against the pre-handle API
    (``pytest.raises(RuntimeError, match="rejected")`` and kin) still
    matches; ``.request_id`` and ``.status`` identify the request.
    """

    def __init__(self, request: InferenceRequest, message: Optional[str] = None) -> None:
        self.request_id = request.request_id
        self.status = request.status
        super().__init__(
            message
            if message is not None
            else f"request {request.request_id} was {request.status}, not completed"
        )


class RequestRejected(RequestError):
    """Turned away at admission (full queue, ``overload_policy="reject"``)."""


class RequestShed(RequestError):
    """Evicted from a full queue to make room (``overload_policy="shed_oldest"``)."""


class RequestExpired(RequestError):
    """Deadline passed before the request could be executed."""


class RequestFailed(RequestError):
    """Every failover retry was exhausted (or the degraded path missed)."""


class RequestPending(RequestError):
    """``result()`` was called on a pending request that nothing will serve.

    Raised instead of deadlocking when no background ingress thread is
    running and no timeout was given: in synchronous mode someone must call
    ``server.drain()`` (or ``poll()``) for the request to terminate.
    """

    def __init__(self, request: InferenceRequest) -> None:
        super().__init__(
            request,
            f"request {request.request_id} is still pending; call server.drain() "
            "first, pass a timeout, or enable ingress='thread'",
        )


_EXCEPTION_BY_STATUS = {
    REJECTED: RequestRejected,
    SHED: RequestShed,
    EXPIRED: RequestExpired,
    FAILED: RequestFailed,
}


class _DoneFlag(int):
    """Transitional dual shape for :attr:`RequestHandle.done`.

    The pre-handle ``InferenceRequest.done`` was a property; the future-style
    API wants ``done()``.  This int subclass is truthy like the old property
    *and* callable like the new method, so both ``if handle.done:`` and
    ``if handle.done():`` read the terminal flag.
    """

    __slots__ = ()

    def __call__(self) -> bool:
        return bool(self)


class RequestHandle:
    """Future-style view of one submitted request.

    Wraps the engine-owned :class:`InferenceRequest` record (still reachable
    as :attr:`request`, the deprecated raw shape).  All state reads are
    lock-free snapshots of the record; :meth:`result` waits on the record's
    completion event when a background ingress thread is running.
    """

    __slots__ = ("_request", "_server")

    def __init__(self, request: InferenceRequest, server: Optional["InferenceServer"] = None) -> None:
        self._request = request
        self._server = server

    # -- identity / state snapshots --------------------------------------------

    @property
    def request(self) -> InferenceRequest:
        """The underlying record — the old ``submit()`` return shape."""
        return self._request

    @property
    def request_id(self) -> int:
        return self._request.request_id

    @property
    def node(self) -> int:
        return self._request.node

    @property
    def shard_id(self) -> int:
        return self._request.shard_id

    @property
    def request_class(self) -> str:
        return self._request.request_class

    @property
    def status(self) -> str:
        return self._request.status

    @property
    def stale(self) -> bool:
        return self._request.stale

    @property
    def retries(self) -> int:
        return self._request.retries

    @property
    def worker_id(self) -> Optional[int]:
        return self._request.worker_id

    @property
    def batch_size(self) -> Optional[int]:
        return self._request.batch_size

    @property
    def prediction(self) -> Optional[int]:
        return self._request.prediction

    @property
    def enqueue_time(self) -> float:
        return self._request.enqueue_time

    @property
    def deadline(self) -> Optional[float]:
        return self._request.deadline

    @property
    def completion_time(self) -> Optional[float]:
        return self._request.completion_time

    @property
    def latency(self) -> float:
        return self._request.latency

    @property
    def completed(self) -> bool:
        return self._request.status == COMPLETED

    @property
    def done(self) -> "_DoneFlag":
        """Terminal-state flag: usable as ``handle.done`` *and* ``handle.done()``."""
        return _DoneFlag(self._request.status != PENDING)

    # -- future protocol ---------------------------------------------------------

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request is terminal (or ``timeout`` wall seconds
        pass); returns the terminal flag without raising."""
        request = self._request
        if request.status != PENDING:
            return True
        event = request._event
        if event is None:
            return False
        event.wait(timeout)
        return request.status != PENDING

    def result(self, timeout: Optional[float] = None) -> int:
        """The prediction, waiting for completion when waiting can succeed.

        With a background ingress thread (``ingress="thread"``) a pending
        request is waited on (indefinitely, or ``timeout`` wall seconds —
        ``TimeoutError`` if it does not settle).  Without one, a pending
        request raises :class:`RequestPending` immediately unless a timeout
        was given (another thread may be draining).  Terminal non-completed
        states raise their mapped :class:`RequestError` subclass.
        """
        self._wait_terminal(timeout)
        request = self._request
        if request.status == COMPLETED:
            return int(request.prediction)
        raise _EXCEPTION_BY_STATUS[request.status](request)

    def exception(self, timeout: Optional[float] = None) -> Optional[RequestError]:
        """The mapped terminal exception, or ``None`` when completed.

        Waits exactly like :meth:`result`.
        """
        self._wait_terminal(timeout)
        request = self._request
        if request.status == COMPLETED:
            return None
        return _EXCEPTION_BY_STATUS[request.status](request)

    def _wait_terminal(self, timeout: Optional[float]) -> None:
        request = self._request
        if request.status != PENDING:
            return
        event = request._event
        background = self._server is not None and self._server.has_background_ingress
        if event is None or (timeout is None and not background):
            raise RequestPending(request)
        if not event.wait(timeout) and request.status == PENDING:
            raise TimeoutError(
                f"request {request.request_id} still pending after {timeout:.3f}s"
            )

    def __await__(self):
        """``await server.submit(node)`` from asyncio (needs ``ingress="thread"``).

        The wait happens on the loop's default executor, so the event loop
        itself never blocks on the completion event.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        return loop.run_in_executor(None, self.result).__await__()

    def __repr__(self) -> str:  # pragma: no cover - debug surface
        request = self._request
        return (
            f"RequestHandle(id={request.request_id}, node={request.node}, "
            f"class={request.request_class!r}, status={request.status!r})"
        )


class FrontDoor:
    """Background ingress pump: a daemon thread drives flush rounds.

    ``submit()`` wakes the pump instead of flushing inline, so arrivals from
    any thread (or an asyncio loop via ``run_in_executor``) land in queues
    *while* a round is in flight and are picked up by the next poll — the
    round barrier stops gating ingress.  While work is pending the pump
    re-polls every ``poll_interval`` wall seconds (delay-triggered flushes
    need a heartbeat); with empty queues it parks on the wake event and
    costs nothing.

    Each poll also ticks the :class:`~repro.serving.supervisor.
    ReplicaSupervisor` (via ``InferenceServer.poll``), so under background
    ingress a replica over its failure budget is rebuilt by the pump thread
    between rounds — self-healing needs no extra thread of its own.
    """

    def __init__(self, server: "InferenceServer", poll_interval: float = 0.001) -> None:
        self._server = server
        self.poll_interval = float(poll_interval)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.polls = 0  # rounds the pump attempted (telemetry for tests)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="serving-frontdoor", daemon=True
        )
        self._thread.start()

    def notify(self) -> None:
        """Called by ``submit()`` after an enqueue: wake the pump now."""
        self._wake.set()

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.clear()
            try:
                self._server.poll()
                self.polls += 1
            except Exception:  # noqa: BLE001 - the pump must survive
                # _flush is crash-safe; anything reaching here is a
                # scheduler-level bug, and dying would strand pending
                # requests without a terminal state.  Keep pumping.
                pass
            if self._server.batcher.pending:
                self._wake.wait(self.poll_interval)
            else:
                self._wake.wait()

    def stop(self) -> None:
        """Quiesce the pump (idempotent); pending requests stay queued for
        the caller's drain."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        self._wake.set()
        thread.join()
        self._thread = None


def class_weight_map(classes: Tuple[Tuple[str, float], ...]) -> Dict[str, float]:
    """Pair-tuple form (as stored on the config) back to a lookup dict."""
    return dict(classes)
