"""Online inference serving engine.

Turns "predict the label of node X now" into efficient execution on a
trained (optionally block-circulant-compressed) GNN:

* :class:`MicroBatcher` coalesces queued requests into one batch per flush
  (``max_batch_size`` / ``max_delay``, driven by a pluggable :class:`Clock`);
* :func:`build_shards` / :class:`ShardWorker` split the graph into
  partitions with K-hop halos so each worker serves its core nodes from its
  own slice of memory, exactly reproducing full-graph inference results;
* :class:`EmbeddingCache` memoises per-layer hidden states for hot nodes in
  contiguous per-layer slabs (vectorised gather/scatter; exact-LRU or
  GNNIE-style degree-aware retention, invalidated by the model's
  ``weight_signature`` when training bumps ``Parameter.version``);
  :class:`LegacyEmbeddingCache` is the original per-row ``OrderedDict``
  implementation, kept as the hot-path benchmark reference;
* a shared :class:`HaloStore` exchanges boundary (halo) embeddings between
  shards — a row computed during one shard's flush is gathered, not
  recomputed, by its neighbours — and a per-worker
  :class:`~repro.graph.PlanCache` reuses (or incrementally patches)
  :class:`~repro.graph.Restriction` plans across overlapping flushes;
* a :class:`Scheduler` owns the flush loop, dispatching one flush task per
  due shard through a pluggable :class:`FlushExecutor` —
  :class:`SerialExecutor` (deterministic, default) or
  :class:`ConcurrentExecutor` (thread pool; NumPy kernels release the GIL so
  shard flushes genuinely overlap);
* admission control bounds each shard queue (``max_queue_depth``) with
  ``reject`` / ``shed_oldest`` / ``block`` overload policies (``block`` is a
  real condition-variable wait, woken when depth drops), and deadline-aware
  expiry guarantees every request terminates as exactly one of
  ``completed`` / ``rejected`` / ``shed`` / ``expired`` / ``failed``;
* the front door (:mod:`repro.serving.frontdoor`) makes ``submit()`` return
  a :class:`RequestHandle` future (``result(timeout=)``, ``done()``, typed
  terminal exceptions, awaitable), tags every request with a weighted
  *request class* (``premium``/``standard``/``backfill`` by default) so
  admission pops heaviest-class/deadline-earliest first and overload sheds
  the lightest class first, and — with ``ingress="thread"`` — runs a
  background :class:`FrontDoor` pump so arrivals land during flush rounds;
  ``work_stealing=True`` additionally lets executor threads idling at a
  round barrier drain the hottest due queue (GNNIE-style load balancing),
  with deadline expiry re-checked after every steal pass;
* the fault-tolerance layer keeps that guarantee under replica failure: a
  seedable :class:`FaultPlan` injects deterministic raise/hang/slow/flap
  faults, a per-replica :class:`HealthTracker` circuit breaker gates
  dispatch, failed batches fail over to sibling replicas with capped,
  deadline-aware exponential backoff, and a shard with zero healthy
  replicas can serve cache/halo-resident rows as ``stale`` completions
  (``degraded_policy="stale_ok"``);
* the self-healing layer closes the loop on permanent failures: a
  :class:`ReplicaSupervisor` driven from the scheduler tick quarantines a
  replica whose breaker keeps re-opening and rebuilds it from the shard
  spec (fresh :class:`ShardWorker` under a bumped epoch, embedding cache
  pre-warmed from the shared :class:`HaloStore`, re-registered with health
  and dispatch) — also the machinery behind operator rolling restarts
  (``InferenceServer.restart_replica``); a process-wide :class:`RetryBudget`
  token bucket caps total retries so correlated flap storms degrade to
  ``stale_ok``/fail-fast instead of amplifying, and hedged dispatch
  (``hedge_after``) duplicates a stalled batch onto a healthy sibling,
  first result winning, without changing any prediction;
* :class:`InferenceServer` ties it together and exposes :class:`ServerStats`
  (p50/p95/p99/p99.9 latency, cache hit rate, per-shard load, overload
  counters, fault/failover counters, executor concurrency) plus a perfmodel
  bridge (:func:`estimate_shard_request_cycles`) pricing requests in
  accelerator cycles per shard;
* observability rides on :mod:`repro.telemetry`: the engine owns a
  :class:`~repro.telemetry.Telemetry` handle whose
  :class:`~repro.telemetry.MetricsRegistry` holds every serving counter and
  latency histogram (:class:`ServingMetrics` names them), and — in
  ``telemetry="trace"`` mode — a :class:`~repro.telemetry.RequestTracer`
  records per-request span trees (submit → queue → dispatch attempts with
  breaker/fault/backoff detail → terminal state) exportable as Prometheus
  text, JSON snapshots, or Chrome ``traceEvents``.  ``ServerStats`` is a
  *view* over the registry, so the frozen-dataclass API is unchanged.
"""

from ..graph.restriction import PlanCache, PlanCacheStats
from .batcher import TERMINAL_STATUSES, InferenceRequest, MicroBatcher
from .cache import CACHE_POLICIES, CacheStats, EmbeddingCache, HaloStore, LegacyEmbeddingCache
from .clock import Clock, ManualClock, SystemClock
from .config import DEGRADED_POLICIES, INGRESS_MODES, ServingConfig
from .engine import InferenceServer
from .executor import ConcurrentExecutor, FlushExecutor, SerialExecutor, make_executor
from .faults import (
    FAULT_KINDS,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ReplicaDead,
    ReplicaHung,
)
from .frontdoor import (
    DEFAULT_REQUEST_CLASSES,
    FrontDoor,
    RequestError,
    RequestExpired,
    RequestFailed,
    RequestHandle,
    RequestPending,
    RequestRejected,
    RequestShed,
)
from .health import HealthTracker, ReplicaHealth
from .metrics import ServingMetrics
from .procplane import (
    ProcessDead,
    ProcessExecutor,
    ProcessPlane,
    ProcessTimeout,
    ProcessWorkerHandle,
    SharedHaloStore,
    SharedSlabArena,
)
from .scheduler import DrainTimeout, Scheduler
from .shard import GraphShard, build_shards, expand_neighborhood
from .stats import ServerStats, WorkerLoad, estimate_shard_request_cycles
from .supervisor import ReplicaSupervisor, RetryBudget
from .timing import STAGES, StageTimer, merge_stage_totals
from .worker import ShardWorker, WorkerRetired

__all__ = [
    "Clock",
    "SystemClock",
    "ManualClock",
    "CacheStats",
    "CACHE_POLICIES",
    "EmbeddingCache",
    "LegacyEmbeddingCache",
    "HaloStore",
    "PlanCache",
    "PlanCacheStats",
    "StageTimer",
    "STAGES",
    "merge_stage_totals",
    "InferenceRequest",
    "TERMINAL_STATUSES",
    "MicroBatcher",
    "FlushExecutor",
    "SerialExecutor",
    "ConcurrentExecutor",
    "make_executor",
    "Scheduler",
    "GraphShard",
    "build_shards",
    "expand_neighborhood",
    "ShardWorker",
    "ServingConfig",
    "DEGRADED_POLICIES",
    "INGRESS_MODES",
    "DEFAULT_REQUEST_CLASSES",
    "FrontDoor",
    "RequestHandle",
    "RequestError",
    "RequestRejected",
    "RequestShed",
    "RequestExpired",
    "RequestFailed",
    "RequestPending",
    "FaultSpec",
    "FaultDecision",
    "FaultPlan",
    "FAULT_KINDS",
    "InjectedFault",
    "ReplicaHung",
    "ReplicaDead",
    "WorkerRetired",
    "HealthTracker",
    "ReplicaHealth",
    "ProcessDead",
    "ProcessTimeout",
    "ProcessExecutor",
    "ProcessPlane",
    "ProcessWorkerHandle",
    "SharedSlabArena",
    "SharedHaloStore",
    "ReplicaSupervisor",
    "RetryBudget",
    "DrainTimeout",
    "InferenceServer",
    "ServingMetrics",
    "ServerStats",
    "WorkerLoad",
    "estimate_shard_request_cycles",
]
