"""Online inference serving engine.

Turns "predict the label of node X now" into efficient execution on a
trained (optionally block-circulant-compressed) GNN:

* :class:`MicroBatcher` coalesces queued requests into one batch per flush
  (``max_batch_size`` / ``max_delay``, driven by a pluggable :class:`Clock`);
* :func:`build_shards` / :class:`ShardWorker` split the graph into
  partitions with K-hop halos so each worker serves its core nodes from its
  own slice of memory, exactly reproducing full-graph inference results;
* :class:`EmbeddingCache` memoises per-layer hidden states for hot nodes
  (LRU, invalidated by the model's ``weight_signature`` when training bumps
  ``Parameter.version``);
* :class:`InferenceServer` ties it together and exposes :class:`ServerStats`
  (p50/p95 latency, cache hit rate, per-shard load) plus a perfmodel bridge
  (:func:`estimate_shard_request_cycles`) pricing requests in accelerator
  cycles per shard.
"""

from .batcher import InferenceRequest, MicroBatcher
from .cache import CacheStats, EmbeddingCache
from .clock import Clock, ManualClock, SystemClock
from .config import ServingConfig
from .engine import InferenceServer
from .shard import GraphShard, build_shards, expand_neighborhood
from .stats import ServerStats, WorkerLoad, estimate_shard_request_cycles
from .worker import ShardWorker

__all__ = [
    "Clock",
    "SystemClock",
    "ManualClock",
    "CacheStats",
    "EmbeddingCache",
    "InferenceRequest",
    "MicroBatcher",
    "GraphShard",
    "build_shards",
    "expand_neighborhood",
    "ShardWorker",
    "ServingConfig",
    "InferenceServer",
    "ServerStats",
    "WorkerLoad",
    "estimate_shard_request_cycles",
]
