"""Request futures and the micro-batching queues.

Requests are coalesced per shard: a queue flushes as soon as it holds
``max_batch_size`` requests, or when its oldest request has waited
``max_delay`` seconds — the classic latency/throughput knob of online
inference servers.  All timing goes through the engine's
:class:`~repro.serving.clock.Clock`, so with a ``ManualClock`` the flush
schedule (and therefore every latency statistic) is fully deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

__all__ = ["InferenceRequest", "MicroBatcher"]


@dataclass
class InferenceRequest:
    """A single "predict the label of node X" request (future-style handle)."""

    request_id: int
    node: int
    shard_id: int
    enqueue_time: float
    prediction: Optional[int] = None
    completion_time: Optional[float] = None
    worker_id: Optional[int] = None
    batch_size: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.prediction is not None

    @property
    def latency(self) -> float:
        """Queueing + service time, in clock seconds."""
        if self.completion_time is None:
            raise RuntimeError(f"request {self.request_id} has not completed yet")
        return self.completion_time - self.enqueue_time

    def result(self) -> int:
        if not self.done:
            raise RuntimeError(
                f"request {self.request_id} is still pending; call server.drain() first"
            )
        return int(self.prediction)


class MicroBatcher:
    """Per-shard FIFO queues with size- and delay-triggered flushing."""

    def __init__(self, num_shards: int, max_batch_size: int, max_delay: float) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)
        self._queues: List[Deque[InferenceRequest]] = [deque() for _ in range(num_shards)]
        # Flush-cause counters, surfaced by ServerStats.
        self.size_flushes = 0
        self.delay_flushes = 0
        self.forced_flushes = 0

    @property
    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def pending_per_shard(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    def enqueue(self, request: InferenceRequest) -> None:
        self._queues[request.shard_id].append(request)

    def due_shards(self, now: float) -> List[int]:
        """Shards whose queue must flush at time ``now`` (size or delay)."""
        due: List[int] = []
        for shard_id, queue in enumerate(self._queues):
            if not queue:
                continue
            if len(queue) >= self.max_batch_size:
                due.append(shard_id)
            elif now - queue[0].enqueue_time >= self.max_delay:
                due.append(shard_id)
        return due

    def next_deadline(self) -> Optional[float]:
        """Earliest time at which a delay-triggered flush becomes due."""
        oldest = [queue[0].enqueue_time for queue in self._queues if queue]
        return min(oldest) + self.max_delay if oldest else None

    def pop_batch(self, shard_id: int, forced: bool = False) -> List[InferenceRequest]:
        """Dequeue up to ``max_batch_size`` requests from one shard's queue."""
        queue = self._queues[shard_id]
        batch = [queue.popleft() for _ in range(min(len(queue), self.max_batch_size))]
        if forced:
            self.forced_flushes += 1
        elif len(batch) >= self.max_batch_size:
            self.size_flushes += 1
        else:
            self.delay_flushes += 1
        return batch

    def nonempty_shards(self) -> List[int]:
        return [shard_id for shard_id, queue in enumerate(self._queues) if queue]
