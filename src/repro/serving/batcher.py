"""Request futures and the micro-batching queues.

Requests are coalesced per shard: a queue flushes as soon as it holds
``max_batch_size`` requests, when its oldest request has waited ``max_delay``
seconds, or when its oldest request's *deadline* has passed — the classic
latency/throughput knob of online inference servers plus deadline-aware
expiry.  All timing goes through the engine's
:class:`~repro.serving.clock.Clock`, so with a ``ManualClock`` the flush
schedule (and therefore every latency statistic) is fully deterministic.

Every request terminates in exactly one state:

``completed``
    Served; ``prediction`` holds the answer.
``rejected``
    Turned away at admission because the shard queue was full
    (``overload_policy="reject"``).
``shed``
    Admitted but later evicted from a full queue to make room for newer work
    (``overload_policy="shed_oldest"``; with multiple request classes the
    victim is the lightest class's oldest request — see
    :meth:`MicroBatcher.shed_victim`).
``expired``
    Flushed after its deadline had already passed (or its deadline could not
    survive retry backoff), so it was not executed.
``failed``
    The worker (or an injected fault) raised while serving the batch and
    every failover retry was exhausted — or no healthy replica remained and
    the degraded path had no cached answer.  Failures never strand a request
    in ``pending``.

Transient failures are not terminal: a batch whose replica crashed is
retried on a sibling replica (``retries`` counts the attempts; the request
eventually lands in one of the states above).  Requests answered from the
degraded cache/halo path while a shard had no healthy replica complete with
``stale=True`` (``stale_ok`` semantics — the value may predate the newest
weights).

The benchmark/property suites assert that accounting: no request is ever
silently dropped.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["InferenceRequest", "MicroBatcher", "TERMINAL_STATUSES"]

PENDING = "pending"
COMPLETED = "completed"
REJECTED = "rejected"
SHED = "shed"
EXPIRED = "expired"
FAILED = "failed"

TERMINAL_STATUSES = (COMPLETED, REJECTED, SHED, EXPIRED, FAILED)


@dataclass
class InferenceRequest:
    """A single "predict the label of node X" request (future-style handle)."""

    request_id: int
    node: int
    shard_id: int
    enqueue_time: float
    deadline: Optional[float] = None     # absolute clock time; None = no deadline
    status: str = PENDING
    prediction: Optional[int] = None
    completion_time: Optional[float] = None
    worker_id: Optional[int] = None
    batch_size: Optional[int] = None
    retries: int = 0                     # failover attempts this request survived
    stale: bool = False                  # served from the degraded cache path
    request_class: str = "standard"      # admission class (see serving.frontdoor)
    weight: float = 1.0                  # the class's admission weight
    #: completion event backing RequestHandle.result(timeout=); None for
    #: requests constructed outside the engine (direct batcher use).
    _event: Optional[threading.Event] = field(default=None, repr=False, compare=False)

    @property
    def done(self) -> bool:
        """True once the request reached any terminal state."""
        return self.status != PENDING

    @property
    def completed(self) -> bool:
        return self.status == COMPLETED

    @property
    def latency(self) -> float:
        """Queueing + service time, in clock seconds."""
        if self.completion_time is None:
            raise RuntimeError(f"request {self.request_id} has not completed yet")
        return self.completion_time - self.enqueue_time

    def result(self) -> int:
        if self.status == COMPLETED:
            return int(self.prediction)
        if self.status == PENDING:
            raise RuntimeError(
                f"request {self.request_id} is still pending; call server.drain() first"
            )
        raise RuntimeError(f"request {self.request_id} was {self.status}, not completed")

    # -- admission ordering ------------------------------------------------------

    def admission_rank(self) -> Tuple[float, float, int]:
        """Sort key of class-aware admission: heaviest class first, earliest
        deadline inside a class, submission order as the total tie-break.

        With a single class and uniform deadlines this degenerates to FIFO,
        so classless callers keep the PR-3 batching behaviour bit-for-bit.
        """
        deadline = math.inf if self.deadline is None else self.deadline
        return (-self.weight, deadline, self.request_id)

    # -- terminal transitions (called by the engine, under its lock) -----------

    def _finish(self, status: str, at: float) -> None:
        if self.status != PENDING:
            raise RuntimeError(
                f"request {self.request_id} already terminated as {self.status}"
            )
        self.status = status
        self.completion_time = at
        if self._event is not None:
            self._event.set()


class MicroBatcher:
    """Per-shard queues with size-, delay- and deadline-triggered flushing.

    Queues keep arrival order but *pop* by :meth:`InferenceRequest.admission_rank`
    (heaviest class first, earliest deadline inside a class), so with a
    single request class they behave as the original FIFO queues while
    multi-class traffic gets weighted, deadline-earliest-first admission.

    ``max_queue_depth`` bounds each shard's queue (``None`` = unbounded); the
    batcher only *reports* fullness — the admission policy (reject / shed /
    block) lives in the engine, which owns request state transitions.
    """

    def __init__(
        self,
        num_shards: int,
        max_batch_size: int,
        max_delay: float,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if max_queue_depth is not None and max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive (or None for unbounded)")
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        # Arrival-ordered lists (append at the tail; rank-ordered removal).
        self._queues: List[List[InferenceRequest]] = [[] for _ in range(num_shards)]
        # Flush-cause counters, surfaced by ServerStats.
        self.size_flushes = 0
        self.delay_flushes = 0
        self.forced_flushes = 0
        # Optional labelled sinks: cause -> per-shard counter children
        # (bound by the engine from its ServingMetrics schema).
        self._flush_counters = None

    def bind_metrics(self, flush_counters) -> None:
        """Mirror flush causes into per-(shard, cause) registry counters."""
        self._flush_counters = flush_counters

    @property
    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def pending_per_shard(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    def queue_depth(self, shard_id: int) -> int:
        return len(self._queues[shard_id])

    def is_full(self, shard_id: int) -> bool:
        """Would admitting one more request exceed ``max_queue_depth``?"""
        if self.max_queue_depth is None:
            return False
        return len(self._queues[shard_id]) >= self.max_queue_depth

    def enqueue(self, request: InferenceRequest) -> None:
        self._queues[request.shard_id].append(request)

    def shed_victim(self, shard_id: int) -> InferenceRequest:
        """Evict the least-valuable queued request (the engine marks it ``shed``).

        Victim selection is class-aware: lowest admission weight first, then
        the oldest request inside that class — so multi-class overload sheds
        backfill before premium, while a single-class queue sheds its head
        exactly like the original FIFO ``shed_oldest``.
        """
        queue = self._queues[shard_id]
        victim = min(queue, key=lambda r: (r.weight, r.enqueue_time, r.request_id))
        queue.remove(victim)
        return victim

    #: Pre-class name, kept for callers written against the FIFO batcher.
    shed_oldest = shed_victim

    @staticmethod
    def _earliest_deadline(queue: List[InferenceRequest]) -> Optional[float]:
        deadline = math.inf
        for request in queue:
            if request.deadline is not None and request.deadline < deadline:
                deadline = request.deadline
        return None if deadline is math.inf else deadline

    def due_shards(self, now: float) -> List[int]:
        """Shards whose queue must flush at ``now`` (size, delay or deadline).

        The delay trigger watches the oldest *remaining* request (``queue[0]``
        — arrival order survives rank-ordered removal) and the deadline
        trigger the earliest deadline anywhere in the queue: with class-aware
        popping an urgent request need not be the head.
        """
        due: List[int] = []
        for shard_id, queue in enumerate(self._queues):
            if not queue:
                continue
            if len(queue) >= self.max_batch_size:
                due.append(shard_id)
                continue
            if now - queue[0].enqueue_time >= self.max_delay:
                due.append(shard_id)
                continue
            deadline = self._earliest_deadline(queue)
            if deadline is not None and now >= deadline:
                due.append(shard_id)
        return due

    def next_deadline(self) -> Optional[float]:
        """Earliest time at which a delay- or deadline-triggered flush is due."""
        times: List[float] = []
        for queue in self._queues:
            if not queue:
                continue
            when = queue[0].enqueue_time + self.max_delay
            deadline = self._earliest_deadline(queue)
            if deadline is not None:
                when = min(when, deadline)
            times.append(when)
        return min(times) if times else None

    def expire_due(self, now: float) -> List[InferenceRequest]:
        """Remove and return every queued request whose deadline has passed.

        The scheduler runs this after a work-stealing pass so a stolen
        round's barrier re-checks expiry before the next round can pop (and
        the engine marks the returned requests ``expired`` exactly once).
        """
        expired: List[InferenceRequest] = []
        for shard_id, queue in enumerate(self._queues):
            keep = [
                request
                for request in queue
                if request.deadline is None or now < request.deadline
            ]
            if len(keep) != len(queue):
                expired.extend(
                    request
                    for request in queue
                    if request.deadline is not None and now >= request.deadline
                )
                self._queues[shard_id] = keep
        return expired

    def pop_batch(self, shard_id: int, forced: bool = False) -> List[InferenceRequest]:
        """Dequeue up to ``max_batch_size`` requests from one shard's queue,
        in admission-rank order (class weight, then deadline, then arrival)."""
        queue = self._queues[shard_id]
        if not queue:
            return []
        if len(queue) <= self.max_batch_size:
            batch = sorted(queue, key=InferenceRequest.admission_rank)
            queue.clear()
        else:
            batch = sorted(queue, key=InferenceRequest.admission_rank)[: self.max_batch_size]
            taken = {request.request_id for request in batch}
            self._queues[shard_id] = [
                request for request in queue if request.request_id not in taken
            ]
        if forced:
            self.forced_flushes += 1
            cause = "forced"
        elif len(batch) >= self.max_batch_size:
            self.size_flushes += 1
            cause = "size"
        else:
            self.delay_flushes += 1
            cause = "delay"
        if self._flush_counters is not None:
            self._flush_counters[cause][shard_id].inc()
        return batch

    def nonempty_shards(self) -> List[int]:
        return [shard_id for shard_id, queue in enumerate(self._queues) if queue]
