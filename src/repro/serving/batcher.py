"""Request futures and the micro-batching queues.

Requests are coalesced per shard: a queue flushes as soon as it holds
``max_batch_size`` requests, when its oldest request has waited ``max_delay``
seconds, or when its oldest request's *deadline* has passed — the classic
latency/throughput knob of online inference servers plus deadline-aware
expiry.  All timing goes through the engine's
:class:`~repro.serving.clock.Clock`, so with a ``ManualClock`` the flush
schedule (and therefore every latency statistic) is fully deterministic.

Every request terminates in exactly one state:

``completed``
    Served; ``prediction`` holds the answer.
``rejected``
    Turned away at admission because the shard queue was full
    (``overload_policy="reject"``).
``shed``
    Admitted but later evicted from a full queue to make room for newer work
    (``overload_policy="shed_oldest"``).
``expired``
    Flushed after its deadline had already passed (or its deadline could not
    survive retry backoff), so it was not executed.
``failed``
    The worker (or an injected fault) raised while serving the batch and
    every failover retry was exhausted — or no healthy replica remained and
    the degraded path had no cached answer.  Failures never strand a request
    in ``pending``.

Transient failures are not terminal: a batch whose replica crashed is
retried on a sibling replica (``retries`` counts the attempts; the request
eventually lands in one of the states above).  Requests answered from the
degraded cache/halo path while a shard had no healthy replica complete with
``stale=True`` (``stale_ok`` semantics — the value may predate the newest
weights).

The benchmark/property suites assert that accounting: no request is ever
silently dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

__all__ = ["InferenceRequest", "MicroBatcher", "TERMINAL_STATUSES"]

PENDING = "pending"
COMPLETED = "completed"
REJECTED = "rejected"
SHED = "shed"
EXPIRED = "expired"
FAILED = "failed"

TERMINAL_STATUSES = (COMPLETED, REJECTED, SHED, EXPIRED, FAILED)


@dataclass
class InferenceRequest:
    """A single "predict the label of node X" request (future-style handle)."""

    request_id: int
    node: int
    shard_id: int
    enqueue_time: float
    deadline: Optional[float] = None     # absolute clock time; None = no deadline
    status: str = PENDING
    prediction: Optional[int] = None
    completion_time: Optional[float] = None
    worker_id: Optional[int] = None
    batch_size: Optional[int] = None
    retries: int = 0                     # failover attempts this request survived
    stale: bool = False                  # served from the degraded cache path

    @property
    def done(self) -> bool:
        """True once the request reached any terminal state."""
        return self.status != PENDING

    @property
    def completed(self) -> bool:
        return self.status == COMPLETED

    @property
    def latency(self) -> float:
        """Queueing + service time, in clock seconds."""
        if self.completion_time is None:
            raise RuntimeError(f"request {self.request_id} has not completed yet")
        return self.completion_time - self.enqueue_time

    def result(self) -> int:
        if self.status == COMPLETED:
            return int(self.prediction)
        if self.status == PENDING:
            raise RuntimeError(
                f"request {self.request_id} is still pending; call server.drain() first"
            )
        raise RuntimeError(f"request {self.request_id} was {self.status}, not completed")

    # -- terminal transitions (called by the engine, under its lock) -----------

    def _finish(self, status: str, at: float) -> None:
        if self.status != PENDING:
            raise RuntimeError(
                f"request {self.request_id} already terminated as {self.status}"
            )
        self.status = status
        self.completion_time = at


class MicroBatcher:
    """Per-shard FIFO queues with size-, delay- and deadline-triggered flushing.

    ``max_queue_depth`` bounds each shard's queue (``None`` = unbounded); the
    batcher only *reports* fullness — the admission policy (reject / shed /
    block) lives in the engine, which owns request state transitions.
    """

    def __init__(
        self,
        num_shards: int,
        max_batch_size: int,
        max_delay: float,
        max_queue_depth: Optional[int] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if max_queue_depth is not None and max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive (or None for unbounded)")
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)
        self.max_queue_depth = None if max_queue_depth is None else int(max_queue_depth)
        self._queues: List[Deque[InferenceRequest]] = [deque() for _ in range(num_shards)]
        # Flush-cause counters, surfaced by ServerStats.
        self.size_flushes = 0
        self.delay_flushes = 0
        self.forced_flushes = 0
        # Optional labelled sinks: cause -> per-shard counter children
        # (bound by the engine from its ServingMetrics schema).
        self._flush_counters = None

    def bind_metrics(self, flush_counters) -> None:
        """Mirror flush causes into per-(shard, cause) registry counters."""
        self._flush_counters = flush_counters

    @property
    def pending(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def pending_per_shard(self) -> List[int]:
        return [len(queue) for queue in self._queues]

    def queue_depth(self, shard_id: int) -> int:
        return len(self._queues[shard_id])

    def is_full(self, shard_id: int) -> bool:
        """Would admitting one more request exceed ``max_queue_depth``?"""
        if self.max_queue_depth is None:
            return False
        return len(self._queues[shard_id]) >= self.max_queue_depth

    def enqueue(self, request: InferenceRequest) -> None:
        self._queues[request.shard_id].append(request)

    def shed_oldest(self, shard_id: int) -> InferenceRequest:
        """Evict the head of a full queue (the engine marks it ``shed``)."""
        return self._queues[shard_id].popleft()

    def due_shards(self, now: float) -> List[int]:
        """Shards whose queue must flush at ``now`` (size, delay or deadline)."""
        due: List[int] = []
        for shard_id, queue in enumerate(self._queues):
            if not queue:
                continue
            head = queue[0]
            if len(queue) >= self.max_batch_size:
                due.append(shard_id)
            elif now - head.enqueue_time >= self.max_delay:
                due.append(shard_id)
            elif head.deadline is not None and now >= head.deadline:
                due.append(shard_id)
        return due

    def next_deadline(self) -> Optional[float]:
        """Earliest time at which a delay- or deadline-triggered flush is due."""
        times: List[float] = []
        for queue in self._queues:
            if not queue:
                continue
            head = queue[0]
            when = head.enqueue_time + self.max_delay
            if head.deadline is not None:
                when = min(when, head.deadline)
            times.append(when)
        return min(times) if times else None

    def pop_batch(self, shard_id: int, forced: bool = False) -> List[InferenceRequest]:
        """Dequeue up to ``max_batch_size`` requests from one shard's queue."""
        queue = self._queues[shard_id]
        batch = [queue.popleft() for _ in range(min(len(queue), self.max_batch_size))]
        if not batch:
            return batch
        if forced:
            self.forced_flushes += 1
            cause = "forced"
        elif len(batch) >= self.max_batch_size:
            self.size_flushes += 1
            cause = "size"
        else:
            self.delay_flushes += 1
            cause = "delay"
        if self._flush_counters is not None:
            self._flush_counters[cause][shard_id].inc()
        return batch

    def nonempty_shards(self) -> List[int]:
        return [shard_id for shard_id, queue in enumerate(self._queues) if queue]
