"""Configuration of the online inference server."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from .cache import CACHE_POLICIES
from .frontdoor import DEFAULT_REQUEST_CLASSES, ClassSpec, normalize_request_classes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults imports nothing back)
    from .faults import FaultPlan

__all__ = ["ServingConfig", "HOT_PATHS", "DEGRADED_POLICIES", "INGRESS_MODES"]

#: Exact-mode implementations a worker can run (canonical definition; the
#: worker and the CLI both validate against this tuple).
HOT_PATHS = ("compiled", "legacy")

#: What a shard with zero healthy replicas does with a flushed batch:
#: ``"fail"`` fails every request; ``"stale_ok"`` answers cache/halo-resident
#: rows from the degraded read path (flagged ``stale``) and fails only misses.
DEGRADED_POLICIES = ("fail", "stale_ok")

#: How requests arrive: ``"sync"`` flushes inline from the submitting thread
#: (the deterministic default); ``"thread"`` starts a background
#: :class:`~repro.serving.frontdoor.FrontDoor` pump so submissions land
#: during flush rounds and ``RequestHandle.result()`` can wait.
INGRESS_MODES = ("sync", "thread")


@dataclass(frozen=True, kw_only=True)
class ServingConfig:
    """Knobs of :class:`repro.serving.InferenceServer` (keyword-only).

    All fields must be passed by name; :meth:`validate` runs at construction
    and rejects contradictory knob combinations with one clear error each,
    so misconfiguration fails at build time instead of mid-flush.

    Parameters
    ----------
    num_shards:
        Number of graph partitions; each gets ``num_replicas`` workers.
    max_batch_size, max_delay:
        Micro-batching policy: a shard's queue flushes once it holds
        ``max_batch_size`` requests or its oldest request has waited
        ``max_delay`` (clock) seconds.
    mode:
        ``"exact"`` — receptive-field-restricted layer-wise inference whose
        predictions match offline full-graph evaluation, with the embedding
        cache enabled; ``"sampled"`` — GraphSAGE-style sampled inference
        (requires ``fanouts``), cheaper on huge graphs but stochastic.
    fanouts:
        Per-layer sample sizes for ``mode="sampled"``.
    cache_capacity:
        Embedding-cache entries *per worker* (0 disables caching).
    cache_policy, cache_pin_fraction:
        Retention policy of the slab cache: ``"lru"`` (exact
        least-recently-used), ``"degree"`` (GNNIE-style degree-aware
        retention — the shard's highest-degree nodes are pinned and only
        evicted when nothing unpinned remains, so power-law traffic keeps
        its hubs warm) or ``"degree-auto"`` (the same retention with the pin
        budget tuned online from the observed pinned-vs-unpinned hit-rate
        split; ``cache_pin_fraction`` is only the starting point).  Pinned
        *entries* — one per layer per pinned node — are capped at
        ``cache_pin_fraction * cache_capacity``; the number of pinned nodes
        is that budget divided by the model depth.  Ignored by the legacy
        hot path.
    halo_tier:
        Enable the shared :class:`~repro.serving.cache.HaloStore`: workers
        publish the boundary (halo) rows they compute and gather boundary
        rows a neighbouring shard (or a sibling replica) already computed,
        so cold flushes stop recomputing each other's cut nodes.  Exact
        compiled serving only; needs at least two workers to exist.  Memory:
        one ``num_boundary_nodes x dim`` slab per layer, shared server-wide.
    plan_cache_size:
        Per-worker LRU capacity of the :class:`~repro.graph.PlanCache`
        memoising miss-set → :class:`~repro.graph.Restriction` plans, with
        incremental subset/superset patching for overlapping consecutive
        miss sets.  ``0`` disables it (every flush rebuilds its plans).
    hot_path:
        ``"compiled"`` — the fast exact path: per-shard operator plans
        precomputed at build time, restricted SpMM per flush, slab cache
        (zero per-flush ``Graph`` construction); ``"legacy"`` — the PR-3
        reference implementation (induced subgraph + ``forward_full`` +
        ``OrderedDict`` cache), kept for the hot-path benchmark gates.
    fft_workers:
        When set, serving enables :func:`repro.compression.set_fft_workers`
        with this thread count for the batched rFFTs of block-circulant
        layers (scipy.fft ``workers=``).  ``None`` (default) leaves the
        global setting untouched — deterministic single-threaded transforms.
    partition_method:
        ``"bfs"`` (locality-aware) or ``"hash"`` — see
        :func:`repro.graph.partition_nodes`.
    num_replicas, dispatch:
        Replicas per shard and how batches are spread across them
        (``"round_robin"`` or ``"least_loaded"``).
    halo_hops:
        Halo depth per shard; defaults to the model depth, which is the
        minimum for exact serving (the server rejects shallower overrides
        in ``mode="exact"``).
    executor, executor_workers:
        ``"serial"`` runs flush rounds inline (deterministic, the default);
        ``"concurrent"`` fans one flush task per shard out over a thread
        pool of ``executor_workers`` threads (default: one per shard
        replica).  NumPy kernels release the GIL, so shards genuinely
        overlap.
    max_queue_depth, overload_policy:
        Admission control: each shard queue holds at most ``max_queue_depth``
        waiting requests (``None`` = unbounded).  On a full queue,
        ``"reject"`` turns the new request away, ``"shed_oldest"`` evicts the
        least-valuable queued request to make room (lightest request class
        first, oldest within the class — plain oldest-first with a single
        class), and ``"block"`` synchronously force-flushes the shard until
        there is capacity (backpressure).
    request_classes, default_class:
        Admission classes as ``{name: weight}`` (or ``((name, weight), ...)``).
        Weight orders both batch admission (heaviest first,
        deadline-earliest-first within a class) and shed-victim selection
        (lightest first), so under overload low-weight backfill sheds while
        high-weight traffic keeps a bounded p99.  ``default_class`` names the
        class ``submit()`` uses when the caller passes none.
    ingress, ingress_poll_interval:
        ``"sync"`` (default) flushes inline from the submitting thread —
        deterministic, and what ``ManualClock`` tests drive.  ``"thread"``
        starts a background :class:`~repro.serving.frontdoor.FrontDoor`
        daemon that owns the flush loop: submissions land during rounds,
        ``RequestHandle.result()`` blocks until served, and handles are
        awaitable from asyncio.  While work is pending the pump re-polls
        every ``ingress_poll_interval`` wall seconds.
    flush_on_submit:
        Poll for due flushes inside every ``submit()`` (the ergonomic
        default).  Open-loop drivers set it ``False`` and call ``poll()``
        themselves so queues actually build up; ignored under
        ``ingress="thread"`` (the pump polls instead).
    work_stealing:
        GNNIE-style round-barrier stealing: executor workers that finish
        their own shard's flush drain the hottest *due* queue instead of
        idling at the barrier, and the scheduler re-checks deadline expiry
        after the steal pass.  Off by default (rounds then match the PR-3
        schedule exactly).
    default_timeout:
        Deadline in clock seconds applied to every request that does not
        carry its own (``None`` = no deadline).  A request flushed after its
        deadline terminates as ``expired`` instead of being executed.
    fault_plan:
        A :class:`~repro.serving.faults.FaultPlan` injecting deterministic
        replica failures at dispatch time (``None`` = no injection; the
        fault layer then adds no work to the hot path).
    max_retries:
        Failover budget per batch: after the dispatched replica fails, the
        batch is retried on a sibling (or, failing that, the same) replica
        up to this many more times before its requests terminate ``failed``.
    retry_backoff, retry_backoff_cap:
        Capped exponential backoff between retry attempts, in clock
        seconds: attempt ``n`` sleeps ``min(retry_backoff * 2**(n-1),
        retry_backoff_cap)``.  Requests whose deadline would pass during
        the backoff expire instead of being retried (deadline-aware
        budgets: a retry never runs past a request's deadline).
    degraded_policy:
        ``"fail"`` or ``"stale_ok"`` — see :data:`DEGRADED_POLICIES`.
    supervisor:
        Enable automatic self-healing: a
        :class:`~repro.serving.supervisor.ReplicaSupervisor` tick runs with
        every ``poll()``/``drain()`` (and the front-door pump), quarantining
        any replica whose breaker opened ``supervisor_failure_budget`` times
        within ``supervisor_window`` clock seconds and rebuilding it in
        place (fresh worker, cache pre-warmed from the halo tier, new
        epoch).  Off by default; ``restart_replica()`` works either way.
    supervisor_failure_budget, supervisor_window:
        The quarantine trigger: breaker-open events (first trips *and*
        failed-probe re-opens) tolerated per replica within the rolling
        window before the supervisor rebuilds it.
    retry_budget, retry_budget_refill:
        Process-wide retry token bucket
        (:class:`~repro.serving.supervisor.RetryBudget`): every batch retry
        across all shards spends one of ``retry_budget`` tokens; each
        successful dispatch refills ``retry_budget_refill`` tokens (capped
        at the original budget).  With the bucket empty, a failed batch is
        not retried: it degrades immediately (``stale_ok`` rows or
        fail-fast), so correlated flap storms cannot amplify into retry
        storms.  ``None`` (default) leaves retries bounded only by
        ``max_retries`` per batch.
    hedge_after:
        Hedged dispatch (``None`` disables): when the replica chosen for a
        batch stalls longer than ``max(hedge_after, rolling shard p95)``,
        the batch is duplicated onto a second healthy replica of the same
        shard; the first result wins and the loser is cancelled (and
        counted).  Predictions are bitwise-unchanged — both replicas hold
        the same shard and compute the same exact answer — so hedging only
        moves the tail. Needs ``num_replicas >= 2``.
    health_failure_threshold, health_cooldown, health_latency_threshold:
        Per-replica circuit breaker (:class:`~repro.serving.health.HealthTracker`):
        ``health_failure_threshold`` consecutive failures open the breaker,
        which re-admits one probe dispatch after ``health_cooldown`` clock
        seconds; a latency EWMA above ``health_latency_threshold`` (``None``
        disables the latency trip) also opens it so dispatch prefers faster
        siblings.
    telemetry, trace_capacity:
        Observability mode (see :data:`repro.telemetry.TELEMETRY_MODES`):
        ``"metrics"`` (default) records labelled counters/histograms into the
        server's :class:`~repro.telemetry.MetricsRegistry`; ``"trace"``
        additionally records one root span per request plus per-dispatch
        attempt records into a ring of ``trace_capacity`` entries
        (``InferenceServer.telemetry`` exposes the exporters); ``"off"``
        compiles telemetry out (null registry, no tracer — note
        ``ServerStats`` counters then read zero; intended for overhead
        baselines only).
    seed:
        Seeds partitioning and the per-worker samplers (determinism).
    """

    num_shards: int = 2
    max_batch_size: int = 32
    max_delay: float = 0.002
    mode: str = "exact"
    fanouts: Optional[Tuple[int, ...]] = None
    cache_capacity: int = 4096
    cache_policy: str = "lru"
    cache_pin_fraction: float = 0.25
    halo_tier: bool = True
    plan_cache_size: int = 32
    hot_path: str = "compiled"
    fft_workers: Optional[int] = None
    partition_method: str = "bfs"
    num_replicas: int = 1
    dispatch: str = "round_robin"
    halo_hops: Optional[int] = None
    executor: str = "serial"
    executor_workers: Optional[int] = None
    process_call_timeout: float = 30.0
    process_heartbeat_interval: float = 1.0
    max_queue_depth: Optional[int] = None
    overload_policy: str = "reject"
    request_classes: ClassSpec = DEFAULT_REQUEST_CLASSES
    default_class: str = "standard"
    ingress: str = "sync"
    ingress_poll_interval: float = 0.001
    flush_on_submit: bool = True
    work_stealing: bool = False
    default_timeout: Optional[float] = None
    fault_plan: Optional["FaultPlan"] = None
    max_retries: int = 2
    retry_backoff: float = 0.0005
    retry_backoff_cap: float = 0.01
    degraded_policy: str = "fail"
    supervisor: bool = False
    supervisor_failure_budget: int = 2
    supervisor_window: float = 1.0
    retry_budget: Optional[int] = None
    retry_budget_refill: float = 0.25
    hedge_after: Optional[float] = None
    health_failure_threshold: int = 3
    health_cooldown: float = 0.05
    health_latency_threshold: Optional[float] = None
    telemetry: str = "metrics"
    trace_capacity: int = 4096
    seed: int = 0

    def __post_init__(self) -> None:
        # Normalise the class spec ({name: weight} or pair iterable) to the
        # hashless tuple-of-pairs form once, so validate() and the engine see
        # one canonical shape on the frozen instance.
        object.__setattr__(
            self, "request_classes", normalize_request_classes(self.request_classes)
        )
        self.validate()

    def class_weights(self) -> dict:
        """The admission classes as a ``{name: weight}`` lookup dict."""
        return dict(self.request_classes)

    def validate(self) -> "ServingConfig":
        """Reject invalid values and contradictory knob combinations.

        Runs automatically at construction (and therefore after every
        ``dataclasses.replace``); each conflict raises ``ValueError`` with
        its own message.  Returns ``self`` so call sites can chain.
        """
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if self.num_replicas <= 0:
            raise ValueError("num_replicas must be positive")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.mode not in ("exact", "sampled"):
            raise ValueError(f"mode must be 'exact' or 'sampled', got {self.mode!r}")
        if self.mode == "sampled" and self.fanouts is None:
            raise ValueError(
                "mode='sampled' needs config.fanouts (per-layer sample sizes)"
            )
        if self.dispatch not in ("round_robin", "least_loaded"):
            raise ValueError(
                f"dispatch must be 'round_robin' or 'least_loaded', got {self.dispatch!r}"
            )
        if self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"cache_policy must be one of {CACHE_POLICIES}, got {self.cache_policy!r}"
            )
        if not 0.0 <= self.cache_pin_fraction <= 1.0:
            raise ValueError("cache_pin_fraction must be within [0, 1]")
        if self.plan_cache_size < 0:
            raise ValueError("plan_cache_size must be non-negative (0 disables the plan cache)")
        if self.hot_path not in HOT_PATHS:
            raise ValueError(
                f"hot_path must be one of {HOT_PATHS}, got {self.hot_path!r}"
            )
        if self.fft_workers is not None and self.fft_workers < 1:
            raise ValueError("fft_workers must be >= 1 (or None to leave the default)")
        if self.halo_hops is not None and self.halo_hops < 1:
            raise ValueError("halo_hops must be at least 1 (the direct neighbourhood)")
        if self.executor not in ("serial", "concurrent", "process"):
            raise ValueError(
                f"executor must be 'serial', 'concurrent' or 'process', got {self.executor!r}"
            )
        if self.executor_workers is not None and self.executor_workers <= 0:
            raise ValueError("executor_workers must be positive (or None for one per worker)")
        if self.process_call_timeout <= 0:
            raise ValueError("process_call_timeout must be positive")
        if self.process_heartbeat_interval <= 0:
            raise ValueError("process_heartbeat_interval must be positive")
        if self.executor == "process" and (self.mode != "exact" or self.hot_path != "compiled"):
            raise ValueError(
                "executor='process' serves the compiled exact hot path only "
                "(mode='exact', hot_path='compiled'): worker processes share "
                "slab-backed shard state that the legacy paths do not use"
            )
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive (or None for unbounded)")
        if self.overload_policy not in ("reject", "shed_oldest", "block"):
            raise ValueError(
                "overload_policy must be 'reject', 'shed_oldest' or 'block', "
                f"got {self.overload_policy!r}"
            )
        if self.default_timeout is not None and self.default_timeout <= 0:
            raise ValueError("default_timeout must be positive (or None for no deadline)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative (0 disables failover)")
        if self.retry_backoff < 0 or self.retry_backoff_cap < 0:
            raise ValueError("retry_backoff and retry_backoff_cap must be non-negative")
        if self.retry_backoff_cap < self.retry_backoff:
            raise ValueError("retry_backoff_cap must be >= retry_backoff")
        if self.degraded_policy not in DEGRADED_POLICIES:
            raise ValueError(
                f"degraded_policy must be one of {DEGRADED_POLICIES}, "
                f"got {self.degraded_policy!r}"
            )
        if self.supervisor_failure_budget < 1:
            raise ValueError("supervisor_failure_budget must be >= 1")
        if self.supervisor_window <= 0:
            raise ValueError("supervisor_window must be positive")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative (or None for unbudgeted)")
        if self.retry_budget_refill < 0:
            raise ValueError("retry_budget_refill must be non-negative")
        if self.hedge_after is not None:
            if self.hedge_after <= 0:
                raise ValueError("hedge_after must be positive (or None to disable hedging)")
            if self.num_replicas < 2:
                raise ValueError(
                    "hedge_after needs num_replicas >= 2: a hedged dispatch "
                    "duplicates the batch onto a sibling replica"
                )
        if self.health_failure_threshold < 1:
            raise ValueError("health_failure_threshold must be >= 1")
        if self.health_cooldown < 0:
            raise ValueError("health_cooldown must be non-negative")
        if self.health_latency_threshold is not None and self.health_latency_threshold <= 0:
            raise ValueError(
                "health_latency_threshold must be positive (or None to disable)"
            )
        from ..telemetry import TELEMETRY_MODES

        if self.telemetry not in TELEMETRY_MODES:
            raise ValueError(
                f"telemetry must be one of {TELEMETRY_MODES}, got {self.telemetry!r}"
            )
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.ingress not in INGRESS_MODES:
            raise ValueError(
                f"ingress must be one of {INGRESS_MODES}, got {self.ingress!r}"
            )
        if self.ingress_poll_interval <= 0:
            raise ValueError("ingress_poll_interval must be positive")
        if not self.request_classes:
            raise ValueError("request_classes must define at least one class")
        names = [name for name, _ in self.request_classes]
        if len(set(names)) != len(names):
            raise ValueError(f"request_classes has duplicate class names: {names}")
        for name, weight in self.request_classes:
            if not name:
                raise ValueError("request class names must be non-empty strings")
            if not math.isfinite(weight) or weight <= 0:
                raise ValueError(
                    f"request class {name!r} needs a finite positive weight, got {weight!r}"
                )
        if self.default_class not in names:
            raise ValueError(
                f"default_class {self.default_class!r} is not a configured request "
                f"class (have: {names})"
            )
        if (
            self.overload_policy == "block"
            and not self.flush_on_submit
            and self.ingress == "sync"
        ):
            raise ValueError(
                "overload_policy='block' with flush_on_submit=False and "
                "ingress='sync' would deadlock: a blocked submitter waits for a "
                "flush nothing is scheduled to run — enable flush_on_submit, use "
                "ingress='thread', or pick another overload policy"
            )
        return self
