"""Partition shards: induced subgraph + halo held by one serving worker.

The BlockGNN paper splits Reddit into sub-graphs because the full graph
exceeds device DRAM (Section IV-C); a serving deployment does the same, with
each worker owning one partition.  A worker must answer requests for its
*core* nodes exactly, which for a K-layer GNN requires the K-hop
neighbourhood of the core — the *halo*.  :func:`build_shards` grows that halo
by repeated sparse mat-vec over the adjacency and materialises the induced
subgraph, so a worker never touches the full graph again at serve time.

Within the shard, the relabelling core ∪ halo → ``0..len-1`` is *monotone*
(:meth:`repro.graph.Graph.subgraph` sorts the node set), which preserves each
node's CSR neighbour order.  Combined with the fact that every model's
``forward_full`` aggregation is row-local, this is what lets the serving
engine reproduce full-graph inference results exactly from a shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graph.graph import Graph
from ..graph.partition import partition_nodes

__all__ = ["GraphShard", "expand_neighborhood", "build_shards"]


def expand_neighborhood(graph: Graph, nodes: np.ndarray, hops: int) -> np.ndarray:
    """Global ids of the ``hops``-hop ball around ``nodes`` (sorted).

    One boolean sparse mat-vec per hop; the ball always contains ``nodes``
    itself (hop 0).
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    reach = np.zeros(graph.num_nodes, dtype=bool)
    reach[np.asarray(nodes, dtype=np.int64)] = True
    adjacency = graph.adjacency()
    for _ in range(hops):
        reached = adjacency @ reach.astype(np.float64)
        grown = reach | (reached > 0.0)
        if np.array_equal(grown, reach):
            break
        reach = grown
    return np.where(reach)[0].astype(np.int64)


@dataclass
class GraphShard:
    """One worker's slice of the graph: owned core nodes plus their halo."""

    part_id: int
    core_nodes: np.ndarray   # sorted global ids owned (served) by this shard
    nodes: np.ndarray        # sorted global ids of core ∪ halo
    graph: Graph             # induced subgraph on `nodes`, local ids 0..len-1
    halo_hops: int

    @property
    def num_core(self) -> int:
        return len(self.core_nodes)

    @property
    def num_halo(self) -> int:
        return len(self.nodes) - len(self.core_nodes)

    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global node ids to shard-local row indices."""
        global_ids = np.asarray(global_ids, dtype=np.int64)
        if len(self.nodes) == 0:
            if len(global_ids):
                raise KeyError(f"nodes {global_ids.tolist()} are not held by shard {self.part_id}")
            return global_ids.copy()
        local = np.searchsorted(self.nodes, global_ids)
        clipped = np.minimum(local, len(self.nodes) - 1)
        out_of_shard = self.nodes[clipped] != global_ids
        if np.any(out_of_shard):
            missing = global_ids[out_of_shard]
            raise KeyError(f"nodes {missing.tolist()} are not held by shard {self.part_id}")
        return local

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        return self.nodes[np.asarray(local_ids, dtype=np.int64)]

    def summary(self) -> str:
        return (
            f"shard {self.part_id}: {self.num_core} core + {self.num_halo} halo nodes "
            f"({self.halo_hops}-hop), {self.graph.num_edges // 2} undirected edges"
        )


def build_shards(
    graph: Graph,
    num_parts: int,
    halo_hops: int,
    method: str = "bfs",
    seed: Optional[int] = None,
) -> List[GraphShard]:
    """Partition ``graph`` and materialise one halo-extended shard per part.

    ``halo_hops`` should be the model depth ``K`` so every core node's full
    K-hop receptive field (and the complete neighbour list of every node the
    serving recursion expands, which stays within ``K - 1`` hops of the core)
    lives inside the shard.
    """
    parts = partition_nodes(graph, num_parts, method=method, seed=seed)
    shards: List[GraphShard] = []
    for part_id, core in enumerate(parts):
        core = np.sort(np.asarray(core, dtype=np.int64))
        if len(core):
            held = expand_neighborhood(graph, core, halo_hops)
        else:
            held = core
        shards.append(
            GraphShard(
                part_id=part_id,
                core_nodes=core,
                nodes=held,
                graph=graph.subgraph(held, name=f"{graph.name}-shard{part_id}"),
                halo_hops=halo_hops,
            )
        )
    return shards
