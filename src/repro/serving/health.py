"""Per-replica health tracking: a small circuit breaker for dispatch.

Each :class:`~repro.serving.worker.ShardWorker` replica gets a
:class:`ReplicaHealth` record inside the shard's :class:`HealthTracker`.
Dispatch (`round_robin` / `least_loaded` in the engine) consults
``available(worker_id, now)`` before routing a batch, so traffic flows
around replicas that keep failing or have gone slow — and probes them
again after a cooldown instead of writing them off forever.

State machine (the classic three states):

``closed``
    Healthy.  Dispatchable.  A failure increments ``consecutive_failures``;
    reaching ``failure_threshold`` opens the breaker.  A success whose
    latency EWMA exceeds ``latency_threshold`` also opens it (the replica
    answers, but too slowly to be worth routing to).
``open``
    Unhealthy.  Not dispatchable until ``cooldown`` clock seconds pass.
``half_open``
    Cooldown elapsed: ``available`` returns ``True`` again so exactly the
    next dispatch acts as a probe.  Success closes the breaker; failure
    re-opens it and restarts the cooldown.
``quarantined``
    Pulled from dispatch entirely by the
    :class:`~repro.serving.supervisor.ReplicaSupervisor` (or an operator
    restart): no cooldown re-admits it.  Only ``reinstate`` — called when a
    rebuilt worker re-registers — returns the slot to service, with a fresh
    record so the replacement starts with a clean breaker.

Every breaker-open *event* (first trip and each failed-probe re-open) is
timestamped in ``open_times``; ``opens_in_window`` is the supervisor's
quarantine trigger.  The ``opens`` counter keeps its original meaning —
distinct closed→open trips — so dashboards don't double-count probe churn.

All timing uses the serving plane's :class:`~repro.serving.clock.Clock`,
so recovery schedules are exact under :class:`ManualClock`.  The tracker
is thread-safe (concurrent executor records from pool threads).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ReplicaHealth", "HealthTracker"]

_EWMA_ALPHA = 0.3  # weight of the newest latency sample in the EWMA


@dataclass
class ReplicaHealth:
    """Mutable health record for one replica (guarded by the tracker's lock)."""

    worker_id: int
    state: str = "closed"                 # closed | open | quarantined (half-open derived)
    consecutive_failures: int = 0
    failures: int = 0
    successes: int = 0
    latency_ewma: Optional[float] = None
    opened_at: float = field(default=0.0)
    opens: int = 0                        # how many times the breaker tripped
    probes: int = 0                       # half-open dispatches attempted
    open_times: List[float] = field(default_factory=list)  # trips + re-opens

    def snapshot(self) -> "ReplicaHealth":
        return ReplicaHealth(
            worker_id=self.worker_id,
            state=self.state,
            consecutive_failures=self.consecutive_failures,
            failures=self.failures,
            successes=self.successes,
            latency_ewma=self.latency_ewma,
            opened_at=self.opened_at,
            opens=self.opens,
            probes=self.probes,
            open_times=list(self.open_times),
        )


class HealthTracker:
    """Circuit breakers for a set of replicas, keyed by worker id."""

    def __init__(
        self,
        worker_ids: Sequence[int],
        failure_threshold: int = 3,
        cooldown: float = 0.05,
        latency_threshold: Optional[float] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        if latency_threshold is not None and latency_threshold <= 0:
            raise ValueError("latency_threshold must be positive when set")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.latency_threshold = latency_threshold
        self._lock = threading.Lock()
        self._replicas: Dict[int, ReplicaHealth] = {
            int(worker_id): ReplicaHealth(worker_id=int(worker_id)) for worker_id in worker_ids
        }
        #: Monotone count of every breaker-open event (trips and failed-probe
        #: re-opens) across all replicas.  ``reinstate`` does not roll it
        #: back, so the supervisor can use it as a cheap did-anything-change
        #: gate between ticks.
        self.total_opens = 0
        # Optional per-replica counter sinks (telemetry); resolved once so
        # record paths never pay a label lookup.
        self._failure_counters: Dict[int, object] = {}
        self._open_counters: Dict[int, object] = {}

    def bind_metrics(self, failures_family, opens_family) -> None:
        """Mirror failures / breaker opens into per-replica registry counters."""
        with self._lock:
            self._failure_counters = {
                worker_id: failures_family.labels(str(worker_id)) for worker_id in self._replicas
            }
            self._open_counters = {
                worker_id: opens_family.labels(str(worker_id)) for worker_id in self._replicas
            }

    # ------------------------------------------------------------------ state

    def state(self, worker_id: int, now: float) -> str:
        """``closed``, ``open`` or ``half_open`` as of clock time ``now``."""
        with self._lock:
            return self._state_locked(self._replicas[worker_id], now)

    def _state_locked(self, replica: ReplicaHealth, now: float) -> str:
        if replica.state == "closed":
            return "closed"
        if replica.state == "quarantined":
            return "quarantined"
        if now - replica.opened_at >= self.cooldown:
            return "half_open"
        return "open"

    def available(self, worker_id: int, now: float) -> bool:
        """May dispatch route to this replica right now (closed or probing)?"""
        return self.state(worker_id, now) in ("closed", "half_open")

    def healthy(self, worker_id: int, now: float) -> bool:
        """Strictly healthy — closed breaker, no probe credit needed."""
        return self.state(worker_id, now) == "closed"

    def partition(self, worker_ids: Sequence[int], now: float) -> "tuple[List[int], List[int]]":
        """Split ids into (closed, half-open) dispatchable groups, order kept."""
        closed: List[int] = []
        probing: List[int] = []
        with self._lock:
            for worker_id in worker_ids:
                state = self._state_locked(self._replicas[worker_id], now)
                if state == "closed":
                    closed.append(worker_id)
                elif state == "half_open":
                    probing.append(worker_id)
        return closed, probing

    # ---------------------------------------------------------------- records

    _OPEN_HISTORY = 64  # per-replica bound on remembered open events

    def _open_event(self, replica: ReplicaHealth, now: float) -> None:
        """Timestamp one breaker-open event (caller holds the lock)."""
        replica.open_times.append(now)
        if len(replica.open_times) > self._OPEN_HISTORY:
            del replica.open_times[: -self._OPEN_HISTORY]
        self.total_opens += 1

    def record_success(self, worker_id: int, now: float, latency: float = 0.0) -> None:
        with self._lock:
            replica = self._replicas[worker_id]
            replica.successes += 1
            replica.consecutive_failures = 0
            if replica.latency_ewma is None:
                replica.latency_ewma = latency
            else:
                replica.latency_ewma = (
                    _EWMA_ALPHA * latency + (1.0 - _EWMA_ALPHA) * replica.latency_ewma
                )
            if replica.state == "quarantined":
                # An in-flight attempt against the corpse finished: count the
                # sample but do not resurrect the slot — only reinstate() does.
                return
            if self._state_locked(replica, now) == "half_open":
                replica.probes += 1
            if (
                self.latency_threshold is not None
                and replica.latency_ewma > self.latency_threshold
            ):
                # Answers, but too slowly: keep (or put) the breaker open so
                # dispatch prefers faster siblings; probes keep sampling it.
                if replica.state == "closed":
                    replica.opens += 1
                    counter = self._open_counters.get(worker_id)
                    if counter is not None:
                        counter.inc()
                    self._open_event(replica, now)
                replica.state = "open"
                replica.opened_at = now
            else:
                replica.state = "closed"

    def record_failure(self, worker_id: int, now: float) -> None:
        with self._lock:
            replica = self._replicas[worker_id]
            was_half_open = self._state_locked(replica, now) == "half_open"
            replica.failures += 1
            replica.consecutive_failures += 1
            counter = self._failure_counters.get(worker_id)
            if counter is not None:
                counter.inc()
            if replica.state == "quarantined":
                return
            if was_half_open:
                # Failed probe: re-open and restart the cooldown.
                replica.probes += 1
                replica.opened_at = now
                self._open_event(replica, now)
            elif replica.state == "closed" and (
                replica.consecutive_failures >= self.failure_threshold
            ):
                replica.state = "open"
                replica.opened_at = now
                replica.opens += 1
                counter = self._open_counters.get(worker_id)
                if counter is not None:
                    counter.inc()
                self._open_event(replica, now)

    # ------------------------------------------------------------- supervision

    def opens_in_window(self, worker_id: int, since: float) -> int:
        """Breaker-open events (trips + re-opens) at or after clock ``since``."""
        with self._lock:
            replica = self._replicas[worker_id]
            return sum(1 for stamp in replica.open_times if stamp >= since)

    def quarantine(self, worker_id: int) -> None:
        """Pull a replica from dispatch until it is explicitly reinstated."""
        with self._lock:
            self._replicas[worker_id].state = "quarantined"

    def reinstate(self, worker_id: int) -> None:
        """Re-register a rebuilt replica under a clean breaker record."""
        with self._lock:
            self._replicas[worker_id] = ReplicaHealth(worker_id=int(worker_id))

    # --------------------------------------------------------------- plumbing

    def snapshot(self, worker_id: int) -> ReplicaHealth:
        with self._lock:
            return self._replicas[worker_id].snapshot()

    def reset(self) -> None:
        """Back to pristine: records, the open ledger *and* bound metrics.

        The bound per-replica counters are part of the breaker's externally
        visible state — leaving them standing after a reset would skew
        post-restart dashboards against a tracker that claims zero failures.
        """
        with self._lock:
            for worker_id in list(self._replicas):
                self._replicas[worker_id] = ReplicaHealth(worker_id=worker_id)
            self.total_opens = 0
            for counter in self._failure_counters.values():
                counter.reset()
            for counter in self._open_counters.values():
                counter.reset()
