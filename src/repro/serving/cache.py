"""Versioned per-layer embedding caches: slab-allocated (fast path) and legacy.

Exact per-node inference recomputes the same hidden states over and over when
requests' receptive fields overlap (the power-law access pattern GNNIE
exploits with its degree-aware cache).  Both caches here memoise layer-``k``
hidden vectors per *global* node id so a warm request touches only the layers
whose inputs are not already known.

:class:`EmbeddingCache` is the serving fast path: an array-backed store with
one contiguous ``(capacity, dim)`` float64 slab plus an int64 node→slot index
map per layer, so a lookup is a single vectorised gather and an insert a
single scatter — no per-row Python loop, no ``OrderedDict`` walking, no
``np.stack`` of row lists.  Retention is pluggable:

``"lru"``
    Exact least-recently-used via monotone access stamps (observationally
    equivalent to the original ``OrderedDict`` implementation — same hits,
    misses, eviction victims and final contents on any take/insert sequence).

``"degree"``
    GNNIE-style degree-aware retention: a set of *pinned* hot-hub nodes
    (chosen per shard from the degree distribution) is only evicted when no
    unpinned entry remains, so one scan of cold nodes cannot flush the hubs
    every power-law request stream keeps coming back to.

``"degree-auto"``
    The same retention with the pin budget tuned *online*: the cache tracks
    the hit-rate split between pinned and unpinned lookups over a sliding
    window and grows the active pin prefix (of the degree-ranked candidate
    list) when pinned entries out-hit unpinned ones, shrinks it when they
    don't — removing the static ``cache_pin_fraction`` knob.

:class:`HaloStore` is the cross-shard companion: a shared, versioned slab
tier holding per-layer embeddings of the *boundary* (halo) nodes held by more
than one worker, so a row computed during shard A's flush is gathered — not
recomputed — by shard B's.

:class:`LegacyEmbeddingCache` is the original per-row ``OrderedDict`` LRU
kept as the reference implementation: the hot-path benchmark gates measure
speedups against it and the hypothesis equivalence suite checks the slab
cache against it operation by operation.

Invalidation (both classes) follows the discipline introduced with the
spectral weight cache of :class:`repro.nn.BlockCirculantLinear`: every cached
value is tied to the model's *weight signature* — the tuple of
``Parameter.version`` counters (see :meth:`repro.nn.Module.weight_signature`).
A training step bumps the versions, the signature changes, and the whole
cache is dropped on the next access, so serving can never return embeddings
computed with stale weights.  The slab cache keeps its slabs allocated across
invalidations — a weight update costs two ``fill`` calls per layer, not a
re-allocation storm.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CacheStats",
    "EmbeddingCache",
    "LegacyEmbeddingCache",
    "HaloStore",
    "CACHE_POLICIES",
]

CACHE_POLICIES = ("lru", "degree", "degree-auto")


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    discarded: int = 0  # publishes dropped by the halo epoch guard

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (used to aggregate per-worker stats)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
            discarded=self.discarded + other.discarded,
        )

    def as_dict(self) -> dict:
        """Event-name → count view (the telemetry gauge mirror exports this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "discarded": self.discarded,
        }


class _LayerSlab:
    """One layer's storage: contiguous value slab + node↔slot index maps."""

    __slots__ = ("dim", "strict", "slab", "slot_nodes", "stamps", "slot_of", "_free", "_free_top")

    def __init__(
        self,
        capacity: int,
        dim: int,
        num_nodes: int,
        strict: bool = False,
        slab: Optional[np.ndarray] = None,
    ) -> None:
        self.dim = dim
        # ``strict`` callers (the engine, which sizes num_nodes to the graph)
        # promise every looked-up id is < num_nodes, so lookup can be a bare
        # gather with no clipping.
        self.strict = strict
        if slab is not None:
            # Caller-provided storage (e.g. a shared-memory view); only the
            # value slab moves — the index maps stay process-private.
            if slab.shape != (capacity, dim) or slab.dtype != np.float64:
                raise ValueError(
                    f"pre-built slab must be float64 ({capacity}, {dim}), "
                    f"got {slab.dtype} {slab.shape}"
                )
            self.slab = slab
        else:
            self.slab = np.empty((capacity, dim), dtype=np.float64)
        self.slot_nodes = np.full(capacity, -1, dtype=np.int64)
        self.stamps = np.zeros(capacity, dtype=np.int64)
        self.slot_of = np.full(num_nodes, -1, dtype=np.int64)
        # Free slots as a fixed-size int64 stack (no Python list: building one
        # per layer costs milliseconds at realistic capacities).
        self._free = np.arange(capacity - 1, -1, -1, dtype=np.int64)
        self._free_top = capacity

    def ensure_nodes(self, limit: int) -> None:
        """Grow the node→slot map to cover ids below ``limit`` (amortised)."""
        if limit <= len(self.slot_of):
            return
        grown = np.full(max(limit, 2 * len(self.slot_of)), -1, dtype=np.int64)
        grown[: len(self.slot_of)] = self.slot_of
        self.slot_of = grown

    def lookup(self, nodes: np.ndarray) -> np.ndarray:
        """Slot of every node (-1 when absent), tolerating unseen large ids."""
        if self.strict:
            return self.slot_of[nodes]
        clipped = np.minimum(nodes, len(self.slot_of) - 1)
        slots = self.slot_of[clipped]
        return np.where(clipped == nodes, slots, -1)

    def allocate(self, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if count > self._free_top:  # the global capacity invariant precludes this
            raise RuntimeError("layer slab out of free slots despite capacity bound")
        self._free_top -= count
        return self._free[self._free_top: self._free_top + count].copy()

    def release(self, slots: np.ndarray) -> None:
        self.slot_of[self.slot_nodes[slots]] = -1
        self.slot_nodes[slots] = -1
        self._free[self._free_top: self._free_top + len(slots)] = slots
        self._free_top += len(slots)

    def reset(self) -> None:
        self.slot_nodes.fill(-1)
        self.slot_of.fill(-1)
        capacity = len(self.slot_nodes)
        self._free = np.arange(capacity - 1, -1, -1, dtype=np.int64)
        self._free_top = capacity


class EmbeddingCache:
    """Slab-allocated ``(layer, node) -> hidden vector`` cache.

    ``capacity`` bounds the number of cached vectors across all layers
    (``0`` disables the cache entirely), exactly like the legacy cache.
    :meth:`take` returns hit rows as one freshly-gathered 2-D array, so later
    insertions or evictions cannot corrupt an in-flight batch.

    ``num_nodes`` (when known — the serving engine passes the graph size)
    pre-sizes the node→slot maps; without it they grow on demand.  Nodes
    inside one :meth:`put` call must be distinct — the serving protocol
    (misses of a preceding :meth:`take`) guarantees it, and the batch
    refresh/insert semantics are only well-defined under it.

    Thread-safe like the legacy cache: every operation holds an internal
    ``RLock``.
    """

    #: hit-rate gap below which degree-auto leaves the pin budget alone.
    AUTO_MARGIN = 0.02

    def __init__(
        self,
        capacity: int,
        num_nodes: Optional[int] = None,
        policy: str = "lru",
        pinned_nodes: Optional[np.ndarray] = None,
        initial_pin_count: Optional[int] = None,
        auto_tune_interval: int = 1024,
        allocator: Optional[Callable[[int, Tuple[int, int]], np.ndarray]] = None,
    ) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        if policy not in CACHE_POLICIES:
            raise ValueError(f"cache policy must be one of {CACHE_POLICIES}, got {policy!r}")
        if auto_tune_interval <= 0:
            raise ValueError("auto_tune_interval must be positive")
        self.capacity = int(capacity)
        self.policy = policy
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._layers: Dict[int, _LayerSlab] = {}
        # Optional hook: ``allocator(layer, shape) -> float64 ndarray`` backs
        # a layer's value slab with caller-owned storage (the multi-process
        # plane hands out shared-memory views here).
        self._allocator = allocator
        self._signature: Optional[Hashable] = None
        # With a known node-id universe the per-layer lookup is a bare gather
        # and inserts skip the grow-on-demand bound check.
        self._strict = num_nodes is not None
        self._num_nodes = int(num_nodes) if num_nodes is not None else 64
        self._size = 0
        self._tick = 0
        # Degree policies: ``pinned_nodes`` is the hub list, best-first.  The
        # static "degree" policy pins all of it; "degree-auto" treats it as
        # the *candidate ranking* and keeps an active prefix it retunes
        # online from the pinned-vs-unpinned hit-rate split.
        self._candidates = (
            np.asarray(pinned_nodes, dtype=np.int64)
            if pinned_nodes is not None and len(pinned_nodes)
            else np.empty(0, dtype=np.int64)
        )
        self._auto_interval = int(auto_tune_interval)
        self.retunes = 0
        self._win_pin_lookups = 0
        self._win_pin_hits = 0
        self._win_unpin_lookups = 0
        self._win_unpin_hits = 0
        if len(self._candidates):
            if policy == "degree-auto" and initial_pin_count is not None:
                self._active_pins = min(max(int(initial_pin_count), 1), len(self._candidates))
            else:
                self._active_pins = len(self._candidates)
            size = max(self._num_nodes, int(self._candidates.max()) + 1)
            self._pinned = np.zeros(size, dtype=bool)
            self._pinned[self._candidates[: self._active_pins]] = True
        else:
            self._active_pins = 0
            self._pinned = None

    def __len__(self) -> int:
        return self._size

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def pinned_nodes(self) -> np.ndarray:
        """Global ids protected by degree-aware retention (may be empty)."""
        if self._pinned is None:
            return np.empty(0, dtype=np.int64)
        return np.where(self._pinned)[0].astype(np.int64)

    @property
    def pin_fraction(self) -> float:
        """Active fraction of the pinnable (candidate) budget, in [0, 1]."""
        if not len(self._candidates):
            return 0.0
        return self._active_pins / len(self._candidates)

    def _retune(self) -> None:
        """Adapt the active pin prefix from the window's hit-rate split.

        Pinned entries out-hitting unpinned ones means protection is paying
        for itself — widen it; the opposite (or a window where nothing asked
        for a pinned node) means the pins are squatting on capacity — narrow
        it.  The prefix never drops below one node, so the pinned side keeps
        producing the signal a later recovery needs.
        """
        pin_lookups, pin_hits = self._win_pin_lookups, self._win_pin_hits
        unpin_lookups, unpin_hits = self._win_unpin_lookups, self._win_unpin_hits
        self._win_pin_lookups = self._win_pin_hits = 0
        self._win_unpin_lookups = self._win_unpin_hits = 0
        step = max(1, len(self._candidates) // 8)
        active = self._active_pins
        pinned_rate = pin_hits / pin_lookups if pin_lookups else 0.0
        unpinned_rate = unpin_hits / unpin_lookups if unpin_lookups else 0.0
        if pin_lookups == 0:
            active = max(active - step, 1)
        elif pinned_rate > unpinned_rate + self.AUTO_MARGIN:
            active = min(active + step, len(self._candidates))
        elif pinned_rate + self.AUTO_MARGIN < unpinned_rate:
            active = max(active - step, 1)
        if active != self._active_pins:
            self._active_pins = active
            self._pinned.fill(False)
            self._pinned[self._candidates[:active]] = True
            self.retunes += 1

    # -- versioning -----------------------------------------------------------

    def ensure_signature(self, signature: Hashable) -> bool:
        """Drop every entry if the weight signature changed since last use.

        Returns ``True`` when an invalidation happened.  The first call simply
        records the signature (an empty cache has nothing stale in it).
        """
        with self._lock:
            if self._signature is None:
                self._signature = signature
                return False
            if signature == self._signature:
                return False
            self._drop_entries()
            self._signature = signature
            self.stats.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._drop_entries()

    def _drop_entries(self) -> None:
        for store in self._layers.values():
            store.reset()
        self._size = 0

    # -- lookup / insert --------------------------------------------------------

    def take(self, layer: int, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Split ``nodes`` into cache hits and misses for ``layer``.

        Returns ``(hit_nodes, hit_values, miss_nodes)`` where ``hit_values``
        is a ``(len(hit_nodes), dim)`` array gathered out of the slab in one
        fancy-index (already a copy).  Hits are stamped most-recent in node
        order; stats are updated here and only here.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        hit_mask, values = self.take_mask(layer, nodes)
        return nodes[hit_mask], values, nodes[~hit_mask]

    def take_mask(self, layer: int, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """:meth:`take` returning a boolean *hit mask over* ``nodes``.

        ``(hit_mask, hit_values)`` — ``hit_values`` rows correspond to the
        masked positions in order.  A caller that already owns ``nodes`` in
        another index space (the worker's shard-local ids) recovers hits and
        misses with plain mask indexing: no ``searchsorted`` round-trip
        through global ids on the hot path.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        with self._lock:
            store = self._layers.get(layer) if self.enabled else None
            if store is None:
                self.stats.misses += len(nodes)
                return np.zeros(len(nodes), dtype=bool), np.empty((0, 0), dtype=np.float64)
            slots = store.lookup(nodes)
            hit = slots >= 0
            hit_slots = slots[hit]
            values = store.slab[hit_slots]  # single gather (fresh array)
            store.stamps[hit_slots] = self._tick + np.arange(len(hit_slots), dtype=np.int64)
            self._tick += len(hit_slots)
            self.stats.hits += len(hit_slots)
            self.stats.misses += len(nodes) - len(hit_slots)
            if self.policy == "degree-auto" and self._pinned is not None and len(nodes):
                flags = self._pinned_flags(nodes)
                pin_total = int(flags.sum())
                pin_hits = int((flags & hit).sum())
                self._win_pin_lookups += pin_total
                self._win_pin_hits += pin_hits
                self._win_unpin_lookups += len(nodes) - pin_total
                self._win_unpin_hits += len(hit_slots) - pin_hits
                if self._win_pin_lookups + self._win_unpin_lookups >= self._auto_interval:
                    self._retune()
            return hit, values

    def put(self, layer: int, nodes: Sequence[int], values: np.ndarray) -> None:
        """Insert one hidden vector per (distinct) node, evicting if full.

        Entries already present are refreshed in place; new entries claim free
        slots, displacing the policy's eviction victims when the global
        capacity would be exceeded.  A brand-new entry can itself be the best
        victim (e.g. an unpinned node arriving at a cache full of pinned
        hubs), in which case it is counted as inserted-then-evicted and never
        touches the slab — that is what lets degree-aware retention hold on
        to its hubs under a scan.
        """
        if not self.enabled:
            return
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or len(values) != len(nodes):
            raise ValueError("values must be a (len(nodes), dim) array")
        if len(nodes) == 0:
            return
        with self._lock:
            store = self._layers.get(layer)
            if store is None:
                slab = (
                    self._allocator(layer, (self.capacity, values.shape[1]))
                    if self._allocator is not None
                    else None
                )
                store = _LayerSlab(
                    self.capacity, values.shape[1], self._num_nodes, strict=self._strict, slab=slab
                )
                self._layers[layer] = store
            elif store.dim != values.shape[1]:
                raise ValueError(
                    f"layer {layer} slab holds {store.dim}-dim vectors, got {values.shape[1]}"
                )
            if not self._strict:
                store.ensure_nodes(int(nodes.max()) + 1)
            slots = store.lookup(nodes)
            existing = slots >= 0
            stamps = self._tick + np.arange(len(nodes), dtype=np.int64)
            self._tick += len(nodes)
            if existing.any():
                refreshed = slots[existing]
                store.slab[refreshed] = values[existing]
                store.stamps[refreshed] = stamps[existing]
            self.stats.insertions += len(nodes)
            fresh = ~existing
            n_new = int(fresh.sum())
            if n_new == 0:
                return
            overflow = self._size + n_new - self.capacity
            if overflow > 0:
                fresh = self._evict(overflow, layer, nodes, stamps, fresh)
            survivors = np.where(fresh)[0]
            if len(survivors) == 0:
                return
            new_slots = store.allocate(len(survivors))
            store.slab[new_slots] = values[survivors]
            store.slot_nodes[new_slots] = nodes[survivors]
            store.stamps[new_slots] = stamps[survivors]
            store.slot_of[nodes[survivors]] = new_slots
            self._size += len(survivors)

    def _pinned_flags(self, nodes: np.ndarray) -> np.ndarray:
        if self._pinned is None or self.policy not in ("degree", "degree-auto"):
            return np.zeros(len(nodes), dtype=bool)
        clipped = np.minimum(nodes, len(self._pinned) - 1)
        return self._pinned[clipped] & (clipped == nodes)

    def _evict(
        self,
        overflow: int,
        incoming_layer: int,
        incoming_nodes: np.ndarray,
        incoming_stamps: np.ndarray,
        fresh: np.ndarray,
    ) -> np.ndarray:
        """Select and free ``overflow`` victims; return the surviving mask.

        Candidates are every stored entry plus the incoming fresh entries;
        ``"lru"`` ranks them by access stamp alone (exactly the legacy
        ``OrderedDict`` order — stamps are globally monotone), ``"degree"``
        ranks unpinned before pinned at equal footing, so hubs outlive scans.
        """
        layer_keys = list(self._layers)
        slot_lists: List[np.ndarray] = []
        stamp_parts: List[np.ndarray] = []
        pinned_parts: List[np.ndarray] = []
        owner_parts: List[np.ndarray] = []
        for index, key in enumerate(layer_keys):
            store = self._layers[key]
            used = np.where(store.slot_nodes >= 0)[0]
            slot_lists.append(used)
            stamp_parts.append(store.stamps[used])
            pinned_parts.append(self._pinned_flags(store.slot_nodes[used]))
            owner_parts.append(np.full(len(used), index, dtype=np.int64))
        fresh_idx = np.where(fresh)[0]
        slot_lists.append(fresh_idx)  # positions into the put batch
        stamp_parts.append(incoming_stamps[fresh_idx])
        pinned_parts.append(self._pinned_flags(incoming_nodes[fresh_idx]))
        owner_parts.append(np.full(len(fresh_idx), -1, dtype=np.int64))

        slots_all = np.concatenate(slot_lists)
        stamps_all = np.concatenate(stamp_parts)
        pinned_all = np.concatenate(pinned_parts)
        owners_all = np.concatenate(owner_parts)
        # Victim *set* = the `overflow` entries with the smallest keys; only
        # the set matters (stamps are unique), so an O(n) partial partition
        # replaces a full sort.  Degree policy folds the pinned flag into the
        # key's top bit: every unpinned entry ranks below every pinned one.
        keys = stamps_all
        if self.policy in ("degree", "degree-auto"):
            keys = stamps_all + (pinned_all.astype(np.int64) << 62)
        if overflow < len(keys):
            victims = np.argpartition(keys, overflow - 1)[:overflow]
        else:
            victims = np.arange(len(keys))
        self.stats.evictions += overflow
        survivors = fresh.copy()
        for index, key in enumerate(layer_keys):
            mask = owners_all[victims] == index
            if mask.any():
                store = self._layers[key]
                store.release(slots_all[victims[mask]])
                self._size -= int(mask.sum())
        dropped_incoming = owners_all[victims] == -1
        if dropped_incoming.any():
            survivors[slots_all[victims[dropped_incoming]]] = False
        return survivors

    def contains(self, layer: int, node: int) -> bool:
        """Membership check that does not touch recency order or stats."""
        with self._lock:
            store = self._layers.get(layer)
            if store is None:
                return False
            return store.lookup(np.asarray([int(node)], dtype=np.int64))[0] >= 0


class HaloStore:
    """Shared, versioned slab tier of boundary ("halo") embeddings.

    Neighbouring shards overlap: every node within K hops of a partition cut
    is held — and, without exchange, independently recomputed — by each shard
    whose halo contains it.  A single ``HaloStore`` is shared by all of a
    server's workers; a worker *publishes* the layer-``k`` rows it computed
    for boundary nodes and *gathers* boundary rows another shard already
    computed, so a node computed by shard A is never recomputed by shard B.

    Storage is a dense per-layer slab over the fixed eligible-node set (the
    nodes held by two or more workers), with a presence bitmap instead of an
    eviction policy: the set is known at server build, bounded by the cut
    size, and every row in it is exact (bitwise equal to full-graph
    inference), so nothing ever needs replacing — memory is
    ``num_shared x dim`` floats per layer, allocated lazily on first publish.

    Versioning follows :class:`EmbeddingCache`: entries are tied to the
    model's weight signature and dropped wholesale (two ``fill`` calls per
    layer, slabs stay allocated) when a training step changes it.  Stats
    count *eligible* lookups only — a non-boundary node can never be
    exchanged, and counting it would misstate the tier's effectiveness.

    Fault isolation: the store carries an *epoch* that the engine bumps
    whenever a replica fails mid-flush.  Workers capture the epoch before
    computing and pass it to :meth:`publish`; a publish whose epoch is stale
    is discarded (counted in ``stats.discarded``), so rows computed alongside
    a failure — possibly by a replica that is itself dying — can never enter
    the shared tier after the failure was observed.  Together with the
    complete-row filter (only fully computed boundary rows are ever offered)
    this keeps the tier exact even under fault injection.

    Thread-safe: workers on different executor threads publish and gather
    concurrently under an internal ``RLock``.
    """

    def __init__(self, num_nodes: int, shared_nodes: np.ndarray) -> None:
        shared_nodes = np.unique(np.asarray(shared_nodes, dtype=np.int64))
        if len(shared_nodes) and (shared_nodes[0] < 0 or shared_nodes[-1] >= num_nodes):
            raise ValueError("shared nodes out of range")
        self._slot_of = np.full(int(num_nodes), -1, dtype=np.int64)
        self._slot_of[shared_nodes] = np.arange(len(shared_nodes), dtype=np.int64)
        self._shared = shared_nodes
        self._layers: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._signature: Optional[Hashable] = None
        self._lock = threading.RLock()
        self._epoch = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return int(sum(present.sum() for _, present in self._layers.values()))

    @property
    def num_shared(self) -> int:
        """Size of the eligible (boundary) node set."""
        return len(self._shared)

    @property
    def shared_nodes(self) -> np.ndarray:
        """Sorted global ids eligible for exchange (held by >= 2 workers)."""
        return self._shared

    @property
    def epoch(self) -> int:
        """Fault epoch; publishes captured before a bump are discarded."""
        with self._lock:
            return self._current_epoch()

    def _current_epoch(self) -> int:
        """Epoch storage hook (held under ``self._lock``); subclasses that
        keep the epoch elsewhere — e.g. a shared-memory cell visible to every
        worker process — override this and :meth:`bump_epoch` together."""
        return self._epoch

    def bump_epoch(self) -> int:
        """Invalidate in-flight publishes (the engine calls this on failure)."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    # -- versioning -----------------------------------------------------------

    def ensure_signature(self, signature: Hashable) -> bool:
        """Drop every entry if the weight signature changed since last use."""
        with self._lock:
            if self._signature is None:
                self._signature = signature
                return False
            if signature == self._signature:
                return False
            self._drop_entries()
            self._signature = signature
            self.stats.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._drop_entries()

    def _drop_entries(self) -> None:
        for _, present in self._layers.values():
            present.fill(False)

    # -- exchange ---------------------------------------------------------------

    def take_mask(self, layer: int, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """``(hit_mask over nodes, hit_values)`` for ``layer``.

        ``hit_values`` rows correspond to the masked positions in order —
        the same contract as :meth:`EmbeddingCache.take_mask`.  Only boundary
        nodes can hit; lookups of non-eligible nodes are not counted.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        with self._lock:
            slots = self._slot_of[nodes]
            eligible = slots >= 0
            n_eligible = int(eligible.sum())
            entry = self._layers.get(layer)
            if entry is None or n_eligible == 0:
                self.stats.misses += n_eligible
                return np.zeros(len(nodes), dtype=bool), np.empty((0, 0), dtype=np.float64)
            slab, present = entry
            hit = eligible.copy()
            hit[eligible] = present[slots[eligible]]
            values = slab[slots[hit]]  # single gather (fresh array)
            self.stats.hits += len(values)
            self.stats.misses += n_eligible - len(values)
            return hit, values

    def publish(
        self,
        layer: int,
        nodes: Sequence[int],
        values: np.ndarray,
        epoch: Optional[int] = None,
    ) -> None:
        """Store freshly computed layer rows; non-boundary nodes are ignored.

        ``epoch`` (when given) must match the store's current fault epoch —
        a mismatch means a replica failed while these rows were in flight,
        and the whole publish is discarded rather than trusted.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2 or len(values) != len(nodes):
            raise ValueError("values must be a (len(nodes), dim) array")
        with self._lock:
            if epoch is not None and epoch != self._current_epoch():
                self.stats.discarded += len(nodes)
                return
            slots = self._slot_of[nodes]
            mask = slots >= 0
            count = int(mask.sum())
            if count == 0:
                return
            entry = self._layers.get(layer)
            if entry is None:
                slab = np.empty((len(self._shared), values.shape[1]), dtype=np.float64)
                present = np.zeros(len(self._shared), dtype=bool)
                self._layers[layer] = (slab, present)
            else:
                slab, present = entry
                if slab.shape[1] != values.shape[1]:
                    raise ValueError(
                        f"layer {layer} halo slab holds {slab.shape[1]}-dim vectors, "
                        f"got {values.shape[1]}"
                    )
            slab[slots[mask]] = values[mask]
            present[slots[mask]] = True
            self.stats.insertions += count

    def contains(self, layer: int, node: int) -> bool:
        """Membership check that does not touch stats."""
        with self._lock:
            entry = self._layers.get(layer)
            if entry is None:
                return False
            slot = self._slot_of[int(node)]
            return bool(slot >= 0 and entry[1][slot])

    # -- bulk read-out (supervisor cache pre-warm) ------------------------------

    @property
    def signature(self) -> Optional[Hashable]:
        """The weight signature the resident rows were computed under."""
        with self._lock:
            return self._signature

    def layers(self) -> List[int]:
        """Layers with an allocated slab, sorted."""
        with self._lock:
            return sorted(self._layers)

    def resident(self, layer: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(global node ids, row values)`` currently present for ``layer``.

        Rows are copied out, so callers (a rebuilt worker pre-warming its
        private cache) can hold them without pinning the slab.  Does not
        touch hit/miss stats — this is a maintenance read, not a lookup.
        """
        with self._lock:
            entry = self._layers.get(layer)
            if entry is None:
                return np.empty(0, dtype=np.int64), np.empty((0, 0), dtype=np.float64)
            slab, present = entry
            slots = np.flatnonzero(present)
            return self._shared[slots], slab[slots].copy()


class LegacyEmbeddingCache:
    """The original per-row ``OrderedDict`` LRU cache (PR-2/PR-3 hot path).

    Kept as the reference the slab cache is benchmarked and property-tested
    against; selected at serve time via ``ServingConfig(hot_path="legacy")``.
    ``take`` returns hit rows as a list of read-only arrays (the shape the
    legacy worker path consumes with ``np.stack``).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
        self._signature: Optional[Hashable] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    # -- versioning -----------------------------------------------------------

    def ensure_signature(self, signature: Hashable) -> bool:
        """Drop every entry if the weight signature changed since last use."""
        with self._lock:
            if self._signature is None:
                self._signature = signature
                return False
            if signature == self._signature:
                return False
            self._entries.clear()
            self._signature = signature
            self.stats.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- lookup / insert --------------------------------------------------------

    def take(self, layer: int, nodes: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray], np.ndarray]:
        """Split ``nodes`` into cache hits and misses for ``layer``.

        Returns ``(hit_nodes, hit_rows, miss_nodes)`` where ``hit_rows[i]`` is
        the cached vector of ``hit_nodes[i]`` (already copied out).  Hits are
        touched in LRU order; stats are updated here and only here.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        with self._lock:
            if not self.enabled:
                self.stats.misses += len(nodes)
                return nodes[:0], [], nodes
            hit_nodes: List[int] = []
            hit_rows: List[np.ndarray] = []
            miss_nodes: List[int] = []
            for node in nodes.tolist():
                key = (layer, node)
                row = self._entries.get(key)
                if row is None:
                    miss_nodes.append(node)
                else:
                    self._entries.move_to_end(key)
                    hit_nodes.append(node)
                    hit_rows.append(row)
            self.stats.hits += len(hit_nodes)
            self.stats.misses += len(miss_nodes)
            return (
                np.asarray(hit_nodes, dtype=np.int64),
                hit_rows,
                np.asarray(miss_nodes, dtype=np.int64),
            )

    def put(self, layer: int, nodes: Sequence[int], values: np.ndarray) -> None:
        """Insert one hidden vector per node, evicting LRU entries if full."""
        if not self.enabled:
            return
        values = np.asarray(values)
        with self._lock:
            for node, row in zip(np.asarray(nodes, dtype=np.int64).tolist(), values):
                key = (layer, node)
                if key in self._entries:
                    self._entries.move_to_end(key)
                frozen = np.array(row, copy=True)
                frozen.flags.writeable = False
                self._entries[key] = frozen
                self.stats.insertions += 1
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def contains(self, layer: int, node: int) -> bool:
        """Membership check that does not touch LRU order or stats."""
        with self._lock:
            return (layer, int(node)) in self._entries
