"""Versioned LRU cache of per-layer node embeddings.

Exact per-node inference recomputes the same hidden states over and over when
requests' receptive fields overlap (the power-law access pattern GNNIE
exploits with its degree-aware cache).  :class:`EmbeddingCache` memoises
layer-``k`` hidden vectors per *global* node id so a warm request touches
only the layers whose inputs are not already known.

Invalidation follows the discipline introduced with the spectral weight cache
of :class:`repro.nn.BlockCirculantLinear`: every cached value is tied to the
model's *weight signature* — the tuple of ``Parameter.version`` counters
(see :meth:`repro.nn.Module.weight_signature`).  A training step bumps the
versions, the signature changes, and the whole cache is dropped on the next
access, so serving can never return embeddings computed with stale weights.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CacheStats", "EmbeddingCache"]


@dataclass
class CacheStats:
    """Counters describing cache effectiveness."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (used to aggregate per-worker stats)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            insertions=self.insertions + other.insertions,
            evictions=self.evictions + other.evictions,
            invalidations=self.invalidations + other.invalidations,
        )


class EmbeddingCache:
    """LRU cache of ``(layer, node) -> hidden vector`` with versioned drops.

    ``capacity`` bounds the number of cached vectors across all layers
    (``0`` disables the cache entirely).  :meth:`take` copies hit rows out
    eagerly, so later insertions evicting those entries cannot corrupt an
    in-flight batch.

    The cache is thread-safe: every mutating operation holds an internal
    ``RLock``, so a cache shared between workers served by the concurrent
    executor cannot corrupt its LRU order or stats (workers additionally
    serialise their own predict path, but the cache does not rely on that).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = int(capacity)
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
        self._signature: Optional[Hashable] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    # -- versioning -----------------------------------------------------------

    def ensure_signature(self, signature: Hashable) -> bool:
        """Drop every entry if the weight signature changed since last use.

        Returns ``True`` when an invalidation happened.  The first call simply
        records the signature (an empty cache has nothing stale in it).
        """
        with self._lock:
            if self._signature is None:
                self._signature = signature
                return False
            if signature == self._signature:
                return False
            self._entries.clear()
            self._signature = signature
            self.stats.invalidations += 1
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- lookup / insert --------------------------------------------------------

    def take(self, layer: int, nodes: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray], np.ndarray]:
        """Split ``nodes`` into cache hits and misses for ``layer``.

        Returns ``(hit_nodes, hit_rows, miss_nodes)`` where ``hit_rows[i]`` is
        the cached vector of ``hit_nodes[i]`` (already copied out).  Hits are
        touched in LRU order; stats are updated here and only here.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        with self._lock:
            if not self.enabled:
                self.stats.misses += len(nodes)
                return nodes[:0], [], nodes
            hit_nodes: List[int] = []
            hit_rows: List[np.ndarray] = []
            miss_nodes: List[int] = []
            for node in nodes.tolist():
                key = (layer, node)
                row = self._entries.get(key)
                if row is None:
                    miss_nodes.append(node)
                else:
                    self._entries.move_to_end(key)
                    hit_nodes.append(node)
                    hit_rows.append(row)
            self.stats.hits += len(hit_nodes)
            self.stats.misses += len(miss_nodes)
            return (
                np.asarray(hit_nodes, dtype=np.int64),
                hit_rows,
                np.asarray(miss_nodes, dtype=np.int64),
            )

    def put(self, layer: int, nodes: Sequence[int], values: np.ndarray) -> None:
        """Insert one hidden vector per node, evicting LRU entries if full."""
        if not self.enabled:
            return
        values = np.asarray(values)
        with self._lock:
            for node, row in zip(np.asarray(nodes, dtype=np.int64).tolist(), values):
                key = (layer, node)
                if key in self._entries:
                    self._entries.move_to_end(key)
                frozen = np.array(row, copy=True)
                frozen.flags.writeable = False
                self._entries[key] = frozen
                self.stats.insertions += 1
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def contains(self, layer: int, node: int) -> bool:
        """Membership check that does not touch LRU order or stats."""
        with self._lock:
            return (layer, int(node)) in self._entries
