"""The online inference server: routing, micro-batching, sharded execution.

Request lifecycle::

    submit(node, request_class=...) ──▶ RequestHandle (future: result(timeout=),
                     │  done(), typed terminal exceptions; awaitable under
                     │  ingress="thread", where a FrontDoor pump thread
                     │  drives the flush loop so arrivals land mid-round)
                     ▼
                     admission control (bounded per-shard queues:
                     │  reject / shed (lightest class first) / block)
                     ▼
                     route by node id to the owning shard's queue
                     │  (MicroBatcher: flush at max_batch_size, max_delay,
                     │   or the oldest request's deadline)
                     ▼
    Scheduler ──────▶ one flush task per due shard, dispatched through a
                     │  FlushExecutor (SerialExecutor inline, or
                     │  ConcurrentExecutor over a thread pool)
                     ▼
    InferenceRequest.status ∈ {completed, rejected, shed, expired, failed}
    ServerStats (p50/p95/p99, hit rate, per-shard load, overload counters)

The :class:`~repro.serving.scheduler.Scheduler` owns the flush loop; by
default it still polls after every ``submit()`` so size-triggered batches
flush immediately, but open-loop drivers can set
``server.scheduler.flush_on_submit = False`` and call ``poll()`` themselves.
All timing flows through a :class:`~repro.serving.clock.Clock`; with the
default ``SerialExecutor`` plus a ``ManualClock`` every run is bit-for-bit
deterministic, and with ``mode="exact"`` the served predictions are identical
to offline full-graph evaluation (``evaluate_accuracy(mode="full")``) under
*either* executor.

Fault tolerance (the no-lost-request contract): a flush round is crash-safe.
A replica that raises — for real, or through an injected
:class:`~repro.serving.faults.FaultPlan` — fails only its own batch's
*attempt*: the batch retries on a sibling replica with capped exponential
backoff (never past a request's deadline), dispatch consults a per-replica
:class:`~repro.serving.health.HealthTracker` circuit breaker to route around
repeat offenders, and a shard with zero dispatchable replicas either fails
its batch or (``degraded_policy="stale_ok"``) answers cache/halo-resident
rows as ``stale`` completions.  Whatever the fault schedule, every submitted
request terminates in exactly one terminal state and the other shards'
results commit.
"""

from __future__ import annotations

import contextlib
import threading
import time
import warnings
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..graph.graph import Graph
from ..models.base import GNNModel
from ..tensor.tensor import no_grad
from .batcher import (
    COMPLETED,
    EXPIRED,
    FAILED,
    REJECTED,
    SHED,
    InferenceRequest,
    MicroBatcher,
)
from ..graph.restriction import PlanCacheStats
from ..telemetry import Telemetry
from .cache import CacheStats, EmbeddingCache, HaloStore, LegacyEmbeddingCache
from .clock import Clock, SystemClock
from .config import ServingConfig
from .executor import make_executor
from .faults import InjectedFault, ReplicaDead, ReplicaHung
from .frontdoor import FrontDoor, RequestHandle
from .health import HealthTracker
from .metrics import ServingMetrics
from .procplane import ProcessDead, ProcessPlane, ProcessWorkerHandle
from .scheduler import DrainTimeout, Scheduler
from .shard import GraphShard, build_shards
from .stats import ServerStats, WorkerLoad
from .supervisor import ReplicaSupervisor, RetryBudget
from .timing import merge_stage_totals
from .worker import ShardWorker

__all__ = ["ServingConfig", "InferenceServer", "RequestHandle", "DrainTimeout"]

#: Sentinel distinguishing "no fault decision passed" from "decision is None"
#: in ``_attempt`` (hedged dispatch consults the plan before dispatching).
_UNSET = object()


class InferenceServer:
    """Serves per-node prediction requests for one trained model + graph."""

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config: Optional[ServingConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config if config is not None else ServingConfig()
        self.clock = clock if clock is not None else SystemClock()
        if self.config.mode == "sampled":
            fanouts = self.config.fanouts
            if fanouts is None or len(fanouts) != model.num_layers:
                raise ValueError("sampled serving needs config.fanouts, one per model layer")
        self._previous_fft_workers = None
        if self.config.fft_workers is not None:
            from ..compression.spectral import get_fft_workers, set_fft_workers

            # Applied process-wide (scipy.fft has one workers argument per
            # call site); the prior value is restored on shutdown so one
            # server's opt-in cannot leak into later servers or training.
            self._previous_fft_workers = get_fft_workers()
            set_fft_workers(self.config.fft_workers)

        halo_hops = (
            self.config.halo_hops if self.config.halo_hops is not None else model.num_layers
        )
        if self.config.mode == "exact" and halo_hops < model.num_layers:
            # A truncated halo silently corrupts boundary nodes' receptive
            # fields (and poisons the embedding cache with them).
            raise ValueError(
                f"exact serving needs halo_hops >= model depth "
                f"({halo_hops} < {model.num_layers})"
            )
        self.shards: List[GraphShard] = build_shards(
            graph,
            self.config.num_shards,
            halo_hops,
            method=self.config.partition_method,
            seed=self.config.seed,
        )
        self._owner = np.full(graph.num_nodes, -1, dtype=np.int64)
        for shard in self.shards:
            self._owner[shard.core_nodes] = shard.part_id

        # Multi-process plane (executor="process"): shard slabs move into
        # shared memory and replicas become worker *processes*.  Built before
        # the halo store (whose slabs the plane must own) and the workers
        # (which it spawns).
        self._procplane: Optional[ProcessPlane] = None
        if self.config.executor == "process":
            self._procplane = ProcessPlane(
                graph,
                self.shards,
                model,
                call_timeout=self.config.process_call_timeout,
                heartbeat_interval=self.config.process_heartbeat_interval,
            )

        self.halo_store = self._build_halo_store()
        full_degrees = graph.degrees() if self.halo_store is not None else None
        # Shard-local masks of rows whose full neighbour list is inside the
        # shard (the subgraph relabelling is monotone, so induced row i is
        # global node shard.nodes[i]).  Only those rows may be published to
        # the shared halo tier.  Kept for the supervisor: a rebuilt replica
        # needs the same mask its corpse was built with.
        self._publish_masks = [
            (
                shard.graph.degrees() == full_degrees[shard.nodes]
                if full_degrees is not None
                else None
            )
            for shard in self.shards
        ]
        self.workers: List[ShardWorker] = []
        self._replicas: List[List[ShardWorker]] = []
        for shard_id, _shard in enumerate(self.shards):
            group: List[ShardWorker] = []
            for _replica in range(self.config.num_replicas):
                worker = self._build_worker(shard_id, worker_id=len(self.workers))
                group.append(worker)
                self.workers.append(worker)
            self._replicas.append(group)

        self.batcher = MicroBatcher(
            len(self.shards),
            self.config.max_batch_size,
            self.config.max_delay,
            max_queue_depth=self.config.max_queue_depth,
        )
        executor_workers = (
            self.config.executor_workers
            if self.config.executor_workers is not None
            else len(self.workers)
        )
        self.executor = make_executor(self.config.executor, executor_workers)
        #: class name -> admission weight (the config normalises the spec).
        self._class_weights = self.config.class_weights()
        self.scheduler = Scheduler(
            self.batcher,
            self.clock,
            self._flush,
            self.executor,
            # With the background pump the frontdoor thread owns polling;
            # submit() just enqueues and wakes it.
            flush_on_submit=self.config.flush_on_submit and self.config.ingress == "sync",
            work_stealing=self.config.work_stealing,
            steal_source=self._steal_candidate,
            expire_overdue=self._expire_overdue,
            supervise=self.supervise,
        )

        # Engine-wide lock: guards queue admission, dispatcher state and the
        # stats accumulators.  Flush tasks run prediction *outside* it.
        self._lock = threading.RLock()
        # Capacity condition over the same lock: blocked submitters
        # (overload_policy="block") wait here and are woken when a flush
        # frees queue space, when an in-flight flush settles, or on shutdown.
        self._capacity = threading.Condition(self._lock)
        self._inflight_flushes = 0
        self._serving_depth = 0
        # Monotone per-shard dispatch counters: round_robin indexes the
        # *currently dispatchable* replica pool with counter % len(pool), so
        # rotation stays fair as breakers open and close.
        self._round_robin = [0] * len(self.shards)
        self.faults = self.config.fault_plan
        self.health = HealthTracker(
            [worker.worker_id for worker in self.workers],
            failure_threshold=self.config.health_failure_threshold,
            cooldown=self.config.health_cooldown,
            latency_threshold=self.config.health_latency_threshold,
        )
        self._request_counter = 0
        self._latencies: List[float] = []
        self._batch_sizes: List[int] = []
        self._first_enqueue: Optional[float] = None
        self._last_completion: Optional[float] = None
        self._closed = False

        # Dispatch-robustness primitives (PR 9).  The retry budget is
        # process-wide: one bucket across every shard, so a correlated flap
        # storm cannot multiply retries by the shard count.  The hedge
        # window keeps a rolling sample of successful attempt latencies per
        # shard — max(hedge_after, rolling p95) is the stall past which a
        # duplicate dispatch fires on a sibling replica.
        self.retry_budget: Optional[RetryBudget] = (
            RetryBudget(self.config.retry_budget, self.config.retry_budget_refill)
            if self.config.retry_budget is not None
            else None
        )
        self._hedge_window: Optional[List[deque]] = (
            [deque(maxlen=64) for _ in self.shards]
            if self.config.hedge_after is not None
            else None
        )
        self.supervisor = ReplicaSupervisor(
            self,
            failure_budget=self.config.supervisor_failure_budget,
            window=self.config.supervisor_window,
            auto=self.config.supervisor,
        )

        # Telemetry plane: every counter ServerStats reports lives in the
        # registry (ServerStats is a *view* over it); the tracer (telemetry
        # mode "trace") records per-request root spans and batch-level
        # dispatch attempts.  With telemetry "off" the registry is null and
        # the tracer is None, so the hot path degrades to no-op calls and
        # `is not None` checks.
        self.telemetry = Telemetry(self.config.telemetry, self.config.trace_capacity)
        self.tracer = self.telemetry.tracer
        self._metrics = ServingMetrics(
            self.telemetry.registry,
            len(self.shards),
            [w.worker_id for w in self.workers],
            class_names=[name for name, _ in self.config.request_classes],
        )
        if self.telemetry.enabled:
            self.batcher.bind_metrics(self._metrics.flushes)
            self.scheduler.bind_metrics(
                self._metrics.flush_rounds, self._metrics.stolen_batches
            )
            self.health.bind_metrics(
                self._metrics.replica_failures, self._metrics.breaker_opens
            )
            if self.faults is not None:
                self.faults.bind_metrics(self._metrics.faults)
            self.supervisor.bind_metrics(
                self._metrics.supervisor_restarts, self._metrics.supervisor_quarantines
            )
            for worker in self.workers:
                worker.timings.bind_histograms(
                    self._metrics.stage_seconds, worker.worker_id
                )
                if isinstance(worker, ProcessWorkerHandle):
                    # Child registries ship deltas over the control channel
                    # and merge by addition into the fleet registry.
                    worker.fleet_registry = self.telemetry.registry
            self.telemetry.add_collector(self._collect_gauges)

        # Background ingress pump (ingress="thread"): started last so it can
        # never observe a half-built server.
        self.frontdoor: Optional[FrontDoor] = None
        if self.config.ingress == "thread":
            self.frontdoor = FrontDoor(self, self.config.ingress_poll_interval)
            self.frontdoor.start()

    def _build_halo_store(self) -> Optional[HaloStore]:
        """The shared boundary-embedding tier, when the config and topology
        allow one.

        Eligible nodes are those held by two or more *shards* (their layer
        values would otherwise be recomputed on each side of the cut); with
        replicated shards every held node is eligible, since a shard's
        replicas keep independent embedding caches but compute identical
        rows.  Exact compiled serving only — the legacy path must stay the
        PR-3 reference, and sampled inference is stochastic (nothing it
        computes is exchangeable).
        """
        if (
            not self.config.halo_tier
            or self.config.mode != "exact"
            or self.config.hot_path != "compiled"
            or len(self.shards) * self.config.num_replicas < 2
        ):
            return None
        counts = np.zeros(self.graph.num_nodes, dtype=np.int64)
        for shard in self.shards:
            counts[shard.nodes] += 1
        threshold = 1 if self.config.num_replicas > 1 else 2
        shared = np.where(counts >= threshold)[0]
        if not len(shared):
            return None
        if self._procplane is not None:
            # Shared-memory tier: parent and every worker process see the
            # same slabs, and the fault epoch is a shared cell.
            return self._procplane.build_halo_store(shared)
        return HaloStore(self.graph.num_nodes, shared)

    def _build_cache(self, shard: GraphShard):
        """One embedding cache per worker, matched to the hot path and policy.

        The legacy hot path gets the legacy ``OrderedDict`` cache (so the
        benchmark reference really is the PR-3 implementation); the compiled
        path gets the slab cache.  Under ``cache_policy="degree"`` the
        shard's highest-degree held nodes are pinned (GNNIE's hot-hub
        retention), with node ids as the deterministic tie-break.  A pinned
        node can hold one entry *per layer*, so the node budget divides
        ``cache_pin_fraction * capacity`` by the model depth — pinned entries
        can never consume more than the configured fraction of the cache.
        ``cache_policy="degree-auto"`` passes the *full* ranked hub list
        (capped at one cache-fill of pinned entries) and lets the cache tune
        the active pin prefix online, starting from the configured fraction.
        """
        capacity = self.config.cache_capacity
        if self.config.hot_path == "legacy":
            return LegacyEmbeddingCache(capacity)
        pinned, initial = self._cache_pin_spec(shard)
        return EmbeddingCache(
            capacity,
            num_nodes=self.graph.num_nodes,
            policy=self.config.cache_policy,
            pinned_nodes=pinned,
            initial_pin_count=initial,
        )

    def _cache_pin_spec(self, shard: GraphShard):
        """``(pinned hub nodes, initial pin count)`` for the slab cache.

        Shared by in-process cache construction and the process plane (a
        spawned worker builds its own cache from this spec, so pinning is
        identical either side of the process boundary).
        """
        capacity = self.config.cache_capacity
        pinned = None
        initial = None
        depth = max(self.model.num_layers, 1)
        if (
            self.config.cache_policy in ("degree", "degree-auto")
            and capacity > 0
            and len(shard.nodes)
        ):
            budget = int(self.config.cache_pin_fraction * capacity) // depth
            limit = budget if self.config.cache_policy == "degree" else capacity // depth
            if limit > 0:
                degrees = self.graph.degrees()[shard.nodes]
                order = np.lexsort((shard.nodes, -degrees))
                pinned = shard.nodes[order[:limit]]
                if self.config.cache_policy == "degree-auto":
                    initial = max(budget, 1)
        return pinned, initial

    def _build_worker(
        self, shard_id: int, worker_id: int, epoch: int = 0
    ) -> ShardWorker:
        """One replica from the shard spec (initial build *and* supervisor
        rebuilds go through here, so a rebuilt worker is constructed exactly
        like its corpse was — same seed, same publish mask — plus a bumped
        epoch)."""
        shard = self.shards[shard_id]
        if self._procplane is not None:
            pinned, initial = self._cache_pin_spec(shard)
            return self._procplane.spawn_worker(
                shard_id=shard_id,
                worker_id=worker_id,
                epoch=epoch,
                seed=self.config.seed + 9176 * worker_id,
                mode=self.config.mode,
                hot_path=self.config.hot_path,
                plan_cache_size=self.config.plan_cache_size,
                fanouts=self.config.fanouts,
                halo_publish_mask=self._publish_masks[shard_id],
                cache_capacity=self.config.cache_capacity,
                cache_policy=self.config.cache_policy,
                cache_pinned=pinned,
                cache_initial_pins=initial,
            )
        return ShardWorker(
            worker_id=worker_id,
            shard=shard,
            model=self.model,
            cache=self._build_cache(shard),
            mode=self.config.mode,
            fanouts=self.config.fanouts,
            seed=self.config.seed + 9176 * worker_id,
            hot_path=self.config.hot_path,
            halo_store=self.halo_store,
            halo_publish_mask=self._publish_masks[shard_id],
            plan_cache_size=self.config.plan_cache_size,
            epoch=epoch,
        )

    # -- self-healing (ReplicaSupervisor mechanics) -------------------------------

    def supervise(self) -> int:
        """One supervisor tick: rebuild any replica over its failure budget.

        Wired into :meth:`poll` (and hence the front-door pump and every
        ``drain`` round), so supervision advances with the flush loop and
        needs no extra thread.  Inert unless ``config.supervisor`` is on.
        Process-backed replicas also get their heartbeat here: liveness is
        probed on the control channel, throttled to the configured interval,
        so a crashed process is discovered even between dispatches.
        """
        if self._procplane is not None:
            for worker in self.workers:
                beat = getattr(worker, "maybe_heartbeat", None)
                if beat is not None:
                    beat()
        return self.supervisor.tick(self.clock.now())

    def _rebuild_replica(self, shard_id: int, slot: int):
        """Swap one replica slot for a freshly built worker (same id, new
        epoch).

        The corpse is retired first, so any in-flight attempt against it
        raises :class:`~repro.serving.worker.WorkerRetired` and fails
        cleanly into the retry path; the halo epoch is bumped so publishes
        racing the swap are discarded rather than trusted.  The fresh
        worker's embedding cache is pre-warmed from the shared halo tier
        before it is re-registered with the health tracker and dispatch.
        Returns ``(worker, prewarmed_rows)``.
        """
        with self._lock:
            corpse = self._replicas[shard_id][slot]
            corpse.retire()
            if self.halo_store is not None:
                self.halo_store.bump_epoch()
            worker = self._build_worker(
                shard_id, worker_id=corpse.worker_id, epoch=corpse.epoch + 1
            )
            prewarmed = worker.prewarm_from_halo()
            self._replicas[shard_id][slot] = worker
            self.workers[corpse.worker_id] = worker
            self.health.reinstate(worker.worker_id)
            if self.faults is not None:
                self.faults.revive(worker.worker_id)
            if self.telemetry.enabled:
                worker.timings.bind_histograms(
                    self._metrics.stage_seconds, worker.worker_id
                )
                if isinstance(worker, ProcessWorkerHandle):
                    worker.fleet_registry = self.telemetry.registry
            return worker, prewarmed

    def restart_replica(self, shard_id: int, replica: int = 0) -> ShardWorker:
        """Operator-initiated rolling restart of one replica slot.

        The slot is quarantined first (no new dispatches), then the call
        waits out any batch the replica is currently serving before the
        supervisor rebuilds it — a rolling restart never abandons an
        in-flight batch.  Returns the replacement worker.
        """
        if not 0 <= shard_id < len(self.shards):
            raise ValueError(f"shard_id {shard_id} out of range (0..{len(self.shards) - 1})")
        group = self._replicas[shard_id]
        if not 0 <= replica < len(group):
            raise ValueError(f"replica {replica} out of range (0..{len(group) - 1})")
        worker = group[replica]
        self.health.quarantine(worker.worker_id)
        with self._capacity:
            # Drain the replica's in-flight batches: flush tasks bump the
            # worker's inflight gauge around predict() and notify _capacity
            # when a flush settles.
            while worker.inflight > 0:
                self._capacity.wait(timeout=self._BLOCK_WAIT_TIMEOUT)
        return self.supervisor.restart(shard_id, replica, self.clock.now())

    # -- request intake ----------------------------------------------------------

    @property
    def has_background_ingress(self) -> bool:
        """Is a FrontDoor pump running (so ``handle.result()`` may block)?"""
        return self.frontdoor is not None and self.frontdoor.running

    def submit(
        self,
        node: int,
        timeout: Optional[float] = None,
        request_class: Optional[str] = None,
    ) -> RequestHandle:
        """Enqueue one prediction request; returns a :class:`RequestHandle`.

        ``timeout`` (clock seconds, defaulting to ``config.default_timeout``)
        sets the request's deadline: if it is still queued when its deadline
        passes it terminates as ``expired`` instead of being executed.
        ``request_class`` picks the admission class (``config.default_class``
        when omitted) — heavier classes are batched first and shed last.

        Under admission control the returned handle may already be terminal
        (``status == "rejected"``); ``handle.result()`` then raises the
        mapped :class:`~repro.serving.frontdoor.RequestError`.  With
        ``ingress="sync"`` due batches flush inline before this returns;
        with ``ingress="thread"`` the background pump is woken instead and
        ``handle.result()`` waits for it.
        """
        node = int(node)
        if self._closed:
            raise RuntimeError("server is shut down")
        if not 0 <= node < self.graph.num_nodes:
            raise ValueError(f"node {node} is outside the graph (0..{self.graph.num_nodes - 1})")
        if timeout is None:
            timeout = self.config.default_timeout
        elif timeout <= 0:
            raise ValueError("timeout must be positive (or None for no deadline)")
        class_name = self.config.default_class if request_class is None else str(request_class)
        weight = self._class_weights.get(class_name)
        if weight is None:
            raise ValueError(
                f"unknown request_class {class_name!r}; configured classes: "
                f"{[name for name, _ in self.config.request_classes]}"
            )
        now = self.clock.now()
        request = InferenceRequest(
            request_id=self._request_counter,
            node=node,
            shard_id=int(self._owner[node]),
            enqueue_time=now,
            deadline=None if timeout is None else now + timeout,
            request_class=class_name,
            weight=weight,
            _event=threading.Event(),
        )
        self._request_counter += 1
        if self._first_enqueue is None:
            self._first_enqueue = now
        if self.tracer is not None:
            # Before admission: rejected requests get a root span too.
            self.tracer.on_submit(request.request_id, node, request.shard_id, now)
        if self._admit(request):
            if self.frontdoor is not None:
                self.frontdoor.notify()
            else:
                self.scheduler.on_submit()
        return RequestHandle(request, self)

    def submit_legacy(
        self, node: int, timeout: Optional[float] = None
    ) -> InferenceRequest:
        """Deprecated: the pre-handle return shape of :meth:`submit`.

        ``submit()`` now returns a :class:`RequestHandle`; the raw record is
        its ``.request`` attribute.  This shim exists for one transition
        release.
        """
        warnings.warn(
            "InferenceServer.submit_legacy() is deprecated: submit() returns a "
            "RequestHandle whose .request attribute is the old InferenceRequest",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.submit(node, timeout=timeout).request

    def submit_many(
        self,
        nodes: Sequence[int],
        timeout: Optional[float] = None,
        request_class: Optional[str] = None,
    ) -> List[RequestHandle]:
        return [
            self.submit(node, timeout=timeout, request_class=request_class)
            for node in nodes
        ]

    #: Lost-wakeup safety net for blocked submitters, in wall seconds.  Every
    #: capacity transition notifies the condition, so the timeout should never
    #: be the thing that wakes a waiter — it only bounds the damage if a future
    #: change forgets a notify.
    _BLOCK_WAIT_TIMEOUT = 0.05

    def _terminal(self, request: InferenceRequest, status: str, now: float) -> None:
        """One request reaches its terminal state: ledger counter + root span.

        Callers hold the engine lock (or are otherwise serialised for this
        request); ``request._finish`` enforces exactly-once.
        """
        request._finish(status, now)
        self._metrics.requests[status][request.shard_id].inc()
        class_children = self._metrics.class_requests.get(request.request_class)
        if class_children is not None:
            class_children[status].inc()
        if self.tracer is not None:
            self.tracer.on_terminal(
                request.request_id,
                status,
                now,
                worker_id=request.worker_id,
                retries=request.retries,
                stale=request.stale,
            )

    def _admit(self, request: InferenceRequest) -> bool:
        """Apply the overload policy; returns False when ``request`` was rejected."""
        shard_id = request.shard_id
        if self.batcher.is_full(shard_id):
            policy = self.config.overload_policy
            if policy == "reject":
                with self._lock:
                    self._terminal(request, REJECTED, self.clock.now())
                return False
            if policy == "shed_oldest":
                with self._lock:
                    victim = self.batcher.shed_victim(shard_id)
                    self._terminal(victim, SHED, self.clock.now())
            else:  # block: backpressure — wait for room (or make it ourselves)
                return self._admit_blocking(request)
        with self._lock:
            self.batcher.enqueue(request)
        return True

    def _admit_blocking(self, request: InferenceRequest) -> bool:
        """``overload_policy="block"``: a real wait, not a busy spin.

        While another thread has a flush in flight the submitter parks on the
        capacity condition and is woken when queue depth drops (or the server
        shuts down, which rejects the request deterministically).  When *no*
        flush is in flight anywhere — the single-threaded case — waiting
        would deadlock, so the submitter force-flushes the shard itself
        (counted separately, so tests can assert no busy-spin happened).
        """
        shard_id = request.shard_id
        while True:
            flush_self = False
            with self._capacity:
                if self._closed:
                    self._terminal(request, REJECTED, self.clock.now())
                    return False
                if not self.batcher.is_full(shard_id):
                    self.batcher.enqueue(request)
                    return True
                if self._inflight_flushes > 0:
                    self._metrics.block_waits.inc()
                    self._capacity.wait(timeout=self._BLOCK_WAIT_TIMEOUT)
                else:
                    self._metrics.block_self_flushes.inc()
                    flush_self = True
            if flush_self:
                self._flush(shard_id, forced=True)

    # -- execution ---------------------------------------------------------------

    def _steal_candidate(self) -> Optional[int]:
        """The hottest *due* shard for a work-stealing executor thread.

        Hottest = deepest queue among the shards due right now (lowest shard
        id on ties, which keeps serial stealing deterministic).  ``None``
        ends the steal loop.  Raced picks are harmless: the loser's
        ``pop_batch`` comes up empty under the engine lock.
        """
        with self._lock:
            due = self.batcher.due_shards(self.clock.now())
            if not due:
                return None
            return max(due, key=self.batcher.queue_depth)

    def _expire_overdue(self) -> int:
        """Expire every queued request whose deadline has passed (the
        scheduler's post-steal-pass re-check)."""
        with self._lock:
            now = self.clock.now()
            overdue = self.batcher.expire_due(now)
            for request in overdue:
                self._terminal(request, EXPIRED, now)
            if overdue:
                self._capacity.notify_all()  # expiry freed queue space
        return len(overdue)

    def poll(self) -> int:
        """Flush every queue that is due at the current clock time."""
        self.supervise()
        return self.scheduler.poll()

    def drain(self, timeout: Optional[float] = None) -> int:
        """Force-flush until no request is pending (end of a request stream).

        Every request submitted before this call is terminal when it
        returns.  With a background ingress pump the drain must also wait
        out in-flight flushes: ``batcher.pending`` only counts *queued*
        requests, so a batch the pump already popped but has not finished
        serving would otherwise race past the check.

        ``timeout`` (wall seconds) bounds the whole call: past it a
        :class:`~repro.serving.scheduler.DrainTimeout` is raised carrying a
        ledger snapshot (queue depths, in-flight flushes, terminal counts)
        so a wedged drain reports *what* is stuck.  The server stays usable
        — pending requests remain queued for a later ``drain()``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            self.supervise()
            flushed = self.scheduler.drain(deadline)
            if not self.has_background_ingress:
                return flushed
            while True:
                # _capacity shares the engine lock, and the pump pops a batch
                # and bumps _inflight_flushes inside one locked region — so
                # observing "nothing in flight and nothing queued" here really
                # is idle.
                with self._capacity:
                    while self._inflight_flushes > 0:
                        if deadline is not None and time.monotonic() >= deadline:
                            raise DrainTimeout(
                                "drain deadline passed with a flush still in flight"
                            )
                        self._capacity.wait(timeout=self._BLOCK_WAIT_TIMEOUT)
                    if not self.batcher.pending:
                        return flushed
                self.supervise()
                flushed += self.scheduler.drain(deadline)
        except DrainTimeout as exc:
            raise DrainTimeout(str(exc), snapshot=self._ledger_snapshot()) from None

    def _ledger_snapshot(self) -> dict:
        """Point-in-time view of where every request stands (DrainTimeout
        payload)."""
        with self._lock:
            metrics = self._metrics
            return {
                "pending": self.batcher.pending,
                "queue_depths": {
                    shard_id: self.batcher.queue_depth(shard_id)
                    for shard_id in range(len(self.shards))
                },
                "inflight_flushes": self._inflight_flushes,
                "terminal": {
                    status: metrics.status_total(status)
                    for status in (COMPLETED, REJECTED, SHED, EXPIRED, FAILED)
                },
            }

    def predict(self, nodes: Sequence[int]) -> np.ndarray:
        """Synchronous convenience: submit ``nodes``, drain, return predictions.

        Raises when admission control turned any of the requests away — use
        ``submit_many``/``drain`` and inspect per-request ``status`` when
        serving with bounded queues.
        """
        requests = self.submit_many(nodes)
        self.drain()
        incomplete = sum(1 for request in requests if not request.completed)
        if incomplete:
            raise RuntimeError(
                f"{incomplete} of {len(requests)} requests did not complete "
                "(rejected/shed/expired by admission control, or failed); "
                "use submit_many() + drain() and check request.status"
            )
        return np.array([request.result() for request in requests], dtype=np.int64)

    def shutdown(self) -> None:
        """Deterministic teardown: every in-flight request reaches a terminal
        state before executor threads are released (idempotent).

        Order matters: the server closes *first* (new submits raise, blocked
        submitters wake and reject), then pending queues drain, then the
        call waits for any flush still in flight on another thread to
        settle — so a shutdown racing a mid-flight round can never leave a
        request non-terminal — and drains once more to catch requests that
        were admitted while the round was settling.
        """
        if self._closed:
            return
        with self._capacity:
            self._closed = True
            self._capacity.notify_all()  # blocked submitters wake up and reject
        if self.frontdoor is not None:
            # Quiesce the ingress pump before draining so the final drains
            # cannot race a background poll.
            self.frontdoor.stop()
        self.drain()
        with self._capacity:
            while self._inflight_flushes > 0:
                self._capacity.wait(timeout=self._BLOCK_WAIT_TIMEOUT)
        self.drain()
        self.scheduler.shutdown()
        if self._procplane is not None:
            # Bounded teardown: each close escalates shutdown-message →
            # SIGTERM → SIGKILL, so a wedged child can never hang shutdown;
            # final stats are pulled first while the pipes still work.
            for worker in self.workers:
                if isinstance(worker, ProcessWorkerHandle):
                    worker.sync(timeout=1.0)
                    worker.close(timeout=5.0)
            self._procplane.shutdown()
        if self.config.fft_workers is not None:
            from ..compression.spectral import set_fft_workers

            set_fft_workers(self._previous_fft_workers)

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @contextlib.contextmanager
    def _serving_mode(self) -> Iterator[None]:
        """Hold the model in eval/no-grad for a whole flush round.

        The save/restore of ``model.training`` happens once, in the driving
        thread, so concurrent flush tasks never observe (or cause) a
        transition mid-batch.
        """
        with self._lock:
            first = self._serving_depth == 0
            self._serving_depth += 1
            if first:
                self._was_training = self.model.training
                self.model.eval()
        try:
            with no_grad():
                yield
        finally:
            with self._lock:
                self._serving_depth -= 1
                if self._serving_depth == 0:
                    self.model.train(self._was_training)

    def _flush(self, shard_id: int, forced: bool = False) -> int:
        """Pop and serve one batch; crash-safe (never raises on worker failure).

        Whatever happens inside — injected faults, a replica raising mid
        batch, every replica unhealthy — the popped requests all reach a
        terminal state here, so a failure on one shard can never take down a
        flush round's other shards or strand a request in ``pending``.
        """
        with self._lock:
            batch = self.batcher.pop_batch(shard_id, forced=forced)
            if not batch:
                return 0
            self._capacity.notify_all()  # queue depth dropped: wake blocked submitters
            now = self.clock.now()
            if self.telemetry.enabled:
                waits = [now - request.enqueue_time for request in batch]
                self._metrics.queue_wait[shard_id].observe_many(waits)
                waits_by_class: Dict[str, List[float]] = {}
                for request, wait in zip(batch, waits):
                    waits_by_class.setdefault(request.request_class, []).append(wait)
                for class_name, class_waits in waits_by_class.items():
                    class_wait = self._metrics.class_queue_wait.get(class_name)
                    if class_wait is not None:
                        class_wait.observe_many(class_waits)
                if self.tracer is not None:
                    self.tracer.on_dequeue(
                        [request.request_id for request in batch], now
                    )
            live: List[InferenceRequest] = []
            for request in batch:
                if request.deadline is not None and now >= request.deadline:
                    self._terminal(request, EXPIRED, now)
                else:
                    live.append(request)
            if not live:
                return 1
            self._inflight_flushes += 1
        try:
            self._serve_batch(shard_id, live)
        except BaseException:
            # Retry/failover handles worker errors; only non-Exception escapes
            # (KeyboardInterrupt and kin) reach here.  Even then, nothing may
            # stay stranded in "pending".
            with self._lock:
                now = self.clock.now()
                for request in live:
                    if not request.done:
                        self._terminal(request, FAILED, now)
            raise
        finally:
            with self._lock:
                self._inflight_flushes -= 1
                self._capacity.notify_all()  # unblock waiters and shutdown()
        return 1

    def _serve_batch(self, shard_id: int, live: List[InferenceRequest]) -> None:
        """Serve a dequeued batch with health-gated dispatch and failover.

        Attempt loop: pick a dispatchable replica (circuit breakers
        consulted, already-failed replicas excluded while siblings remain),
        serve, and on failure retry with capped exponential backoff — expiring
        any request whose deadline cannot survive the backoff, so a retry
        never runs past a deadline.  When no replica is dispatchable the
        batch falls through to the degraded path.

        Two robustness layers sit on top (PR 9):

        * **Hedged dispatch** (``config.hedge_after``): the fault plan is
          consulted *before* dispatching, so a primary that drew a stall
          longer than the hedge threshold duplicates the batch onto a healthy
          sibling — first finisher wins, the loser is cancelled and counted.
        * **Retry budget** (``config.retry_budget``): each retry spends one
          process-wide token; with the bucket empty the batch degrades
          immediately (``stale_ok`` rows or fail-fast) instead of feeding a
          retry storm.
        """
        tried: set = set()
        attempt = 0
        tracer = self.tracer
        while live:
            worker = self._pick_worker(shard_id, self.clock.now(), exclude=tried)
            if worker is None:
                self._serve_degraded(shard_id, live)
                return
            primary = worker
            nodes = np.array([request.node for request in live], dtype=np.int64)
            start = self.clock.now()
            record = None
            fault_info: dict = {}
            if tracer is not None:
                # One attempt record per batch dispatch — the granularity at
                # which the fault plan and the health tracker are consulted,
                # so failed attempt records and HealthTracker failure counts
                # match one for one.
                record = tracer.attempt(
                    shard_id,
                    worker.worker_id,
                    [request.request_id for request in live],
                    attempt,
                    self.health.state(worker.worker_id, start),
                    start,
                )
                stages_before = worker.timings.snapshot()
            # The plan is consulted here (not inside _attempt) so hedging can
            # see the primary's stall before committing to it; the consult
            # order per worker is unchanged, so runs with hedging off are
            # bit-identical to the pre-hedging engine.
            decision = (
                self.faults.decide(worker.worker_id, start)
                if self.faults is not None
                else None
            )
            threshold = self._hedge_threshold(shard_id)
            try:
                if (
                    threshold is not None
                    and decision is not None
                    and decision.kind in ("slow", "hang")
                    and decision.seconds > threshold
                ):
                    predictions, worker = self._serve_hedged(
                        shard_id, worker, decision, nodes, fault_info, tried, start, threshold
                    )
                else:
                    predictions = self._attempt(
                        worker, nodes, fault_info, decision=decision
                    )
            except Exception as exc:
                now = self.clock.now()
                self.health.record_failure(worker.worker_id, now)
                if self.halo_store is not None:
                    # Epoch guard: in-flight publishes that raced with this
                    # failure (possibly from the dying replica itself) are
                    # discarded rather than trusted.
                    self.halo_store.bump_epoch()
                tried.add(worker.worker_id)
                attempt += 1
                fault = fault_info.get("kind", type(exc).__name__)
                backoff = 0.0
                budget_denied = False
                survivors: List[InferenceRequest] = []
                with self._lock:
                    self._metrics.worker_failures.inc()
                    if attempt > self.config.max_retries:
                        for request in live:
                            self._terminal(request, FAILED, now)
                        if record is not None:
                            tracer.end_attempt(record, now, "error", fault=fault)
                        return
                    if self.retry_budget is not None and not self.retry_budget.try_spend():
                        # Budget empty: no more retries anywhere in the
                        # process — degrade this batch right now.
                        budget_denied = True
                        self._metrics.retry_budget_exhausted.inc()
                    else:
                        self._metrics.retry_attempts.inc()
                        backoff = min(
                            self.config.retry_backoff * (2 ** (attempt - 1)),
                            self.config.retry_backoff_cap,
                        )
                        for request in live:
                            if request.deadline is not None and request.deadline <= now + backoff:
                                self._terminal(request, EXPIRED, now)
                            else:
                                request.retries += 1
                                survivors.append(request)
                        if survivors:
                            self._metrics.retries[shard_id].inc(len(survivors))
                if record is not None:
                    tracer.end_attempt(
                        record,
                        now,
                        "error",
                        fault=fault,
                        backoff=backoff if survivors else 0.0,
                    )
                if budget_denied:
                    self._serve_degraded(shard_id, live)
                    return
                live = survivors
                if live and backoff > 0:
                    self.clock.sleep(backoff)
                continue

            end = self.clock.now()
            latency = end - start
            self.health.record_success(worker.worker_id, end, latency)
            if self.retry_budget is not None:
                self.retry_budget.on_success()
            if self._hedge_window is not None:
                # Rolling latency sample feeding the adaptive p95 threshold.
                self._hedge_window[shard_id].append(latency)
            if record is not None:
                if worker is primary:
                    after = worker.timings.snapshot()
                    stages = {
                        name: after[name] - stages_before.get(name, 0.0)
                        for name in after
                    }
                else:
                    # A hedge won: the before-snapshot belongs to the primary,
                    # so a stage delta would be meaningless.
                    stages = None
                tracer.end_attempt(
                    record, end, "ok", fault=fault_info.get("kind"), stages=stages
                )
            with self._lock:
                now = self.clock.now()
                if tried and worker.worker_id not in tried:
                    self._metrics.failovers[shard_id].inc()
                for request, prediction in zip(live, predictions):
                    request.prediction = int(prediction)
                    request.worker_id = worker.worker_id
                    request.batch_size = len(live)
                    self._terminal(request, COMPLETED, now)
                    self._latencies.append(request.latency)
                self._batch_sizes.append(len(live))
                if self.telemetry.enabled:
                    self._metrics.latency[shard_id].observe_many(
                        self._latencies[-len(live):]
                    )
                    self._metrics.batch_size[shard_id].observe(len(live))
                self._last_completion = now
            return

    # -- hedged dispatch ----------------------------------------------------------

    def _hedge_threshold(self, shard_id: int) -> Optional[float]:
        """The stall (clock seconds) past which a hedge fires, or ``None``
        when hedging is off.

        The floor is ``config.hedge_after``; once the shard's rolling window
        holds enough successful-attempt latencies, the threshold adapts
        upward to their p95 so routine tail latency never triggers a hedge.
        """
        if self._hedge_window is None:
            return None
        threshold = self.config.hedge_after
        window = self._hedge_window[shard_id]
        if len(window) >= 16:
            threshold = max(
                threshold, float(np.percentile(np.asarray(window, dtype=np.float64), 95))
            )
        return threshold

    def _hedge_candidate(
        self, shard_id: int, primary: ShardWorker, tried: set, now: float
    ) -> Optional[ShardWorker]:
        """A healthy sibling to duplicate a stalled batch onto.

        Never the primary itself and never a replica that already failed
        this batch — unlike ``_pick_worker``, whose single-replica fallback
        may legitimately return an excluded worker.  ``None`` means no
        sibling is dispatchable and the primary just runs un-hedged.
        """
        group = self._replicas[shard_id]
        exclude = set(tried)
        exclude.add(primary.worker_id)
        ids = [worker.worker_id for worker in group]
        closed, probing = self.health.partition(ids, now)
        pool_ids = [i for i in closed if i not in exclude] or [
            i for i in probing if i not in exclude
        ]
        if not pool_ids:
            return None
        by_id = {worker.worker_id: worker for worker in group}
        pool = [by_id[worker_id] for worker_id in pool_ids]
        return min(pool, key=lambda worker: (worker.nodes_served, worker.worker_id))

    def _serve_hedged(
        self,
        shard_id: int,
        primary: ShardWorker,
        decision,
        nodes: np.ndarray,
        fault_info: dict,
        tried: set,
        start: float,
        threshold: float,
    ):
        """The primary drew a stall past the hedge threshold: race a sibling.

        Under a :class:`~repro.serving.clock.ManualClock` computation costs
        no clock time, so injected stalls are the *only* latency signal —
        the race resolves deterministically from finish stamps
        (``start + primary_stall`` vs ``fired_at + hedge_stall``).  Both
        replicas hold the same shard and compute bitwise-identical logits,
        so first-result-wins cannot change any prediction.  The loser is
        cancelled (no health record: it neither succeeded nor failed) and
        counted in ``serving_hedges_cancelled_total``.  Returns
        ``(predictions, winning_worker)``; raises like a plain attempt when
        the primary hangs and the hedge cannot win.
        """
        fault_info["kind"] = decision.kind
        hedge = self._hedge_candidate(shard_id, primary, tried, self.clock.now())
        if hedge is None:
            # Nothing to hedge onto: behave exactly like an un-hedged attempt.
            return (
                self._attempt(primary, nodes, fault_info, decision=decision),
                primary,
            )
        # Wait out the trigger, then consult the plan for the hedge dispatch
        # (same once-per-dispatch discipline as any attempt).
        self.clock.sleep(threshold)
        fired_at = self.clock.now()
        self._metrics.hedges[shard_id].inc()
        hedge_decision = (
            self.faults.decide(hedge.worker_id, fired_at)
            if self.faults is not None
            else None
        )
        hedge_kind = hedge_decision.kind if hedge_decision is not None else None
        if hedge_kind is not None:
            fault_info["hedge_kind"] = hedge_kind
        primary_finishes = decision.kind == "slow"  # a hang never returns
        primary_finish = start + decision.seconds
        hedge_stall = hedge_decision.seconds if hedge_kind == "slow" else 0.0
        hedge_finish = fired_at + hedge_stall
        hedge_wins = hedge_kind in (None, "slow") and (
            not primary_finishes or hedge_finish < primary_finish
        )
        if hedge_wins:
            if hedge_stall > 0:
                self.clock.sleep(hedge_stall)
            predictions = self._attempt(hedge, nodes, None, decision=None)
            self._metrics.hedges_won[shard_id].inc()
            self._metrics.hedges_cancelled[shard_id].inc()  # the primary
            return predictions, hedge
        # The hedge lost.  A fast failure (raise/die) is a real dispatch
        # failure: the breaker sees it and the batch's retry loop must not
        # re-pick this replica.  A hung or slower hedge is simply cancelled.
        if hedge_kind in ("raise", "die", "kill"):
            if hedge_kind == "kill":
                kill = getattr(hedge, "kill", None)
                if kill is not None:
                    kill()
            now = self.clock.now()
            self.health.record_failure(hedge.worker_id, now)
            tried.add(hedge.worker_id)
            with self._lock:
                self._metrics.worker_failures.inc()
        else:
            self._metrics.hedges_cancelled[shard_id].inc()
        # The primary still owes the rest of its stall.
        remaining = decision.seconds - threshold
        if remaining > 0:
            self.clock.sleep(remaining)
        if decision.kind == "hang":
            raise ReplicaHung(
                f"worker {primary.worker_id} hung for {decision.seconds * 1e3:.1f} ms"
            )
        return self._attempt(primary, nodes, None, decision=None), primary

    def _attempt(
        self,
        worker: ShardWorker,
        nodes: np.ndarray,
        fault_info: Optional[dict] = None,
        decision=_UNSET,
    ) -> np.ndarray:
        """One dispatch to one replica, with the fault plan consulted first.

        ``fault_info`` (when given) surfaces the injected-fault kind to the
        tracer: it gains a ``"kind"`` entry whenever the plan fired.
        ``decision`` lets a caller that already consulted the plan (the
        hedging path) pass the outcome in — the plan must be consulted
        exactly once per dispatch or fault sequences lose determinism.
        """
        if decision is _UNSET:
            decision = (
                self.faults.decide(worker.worker_id, self.clock.now())
                if self.faults is not None
                else None
            )
        if decision is not None:
            if fault_info is not None:
                fault_info["kind"] = decision.kind
            if decision.kind == "raise":
                raise InjectedFault(
                    f"injected failure on worker {worker.worker_id}"
                )
            if decision.kind == "die":
                # Permanent: the plan keeps this worker dead until the
                # supervisor rebuilds the replica (FaultPlan.revive).
                raise ReplicaDead(
                    f"worker {worker.worker_id} died (killed by the fault plan)"
                )
            if decision.kind == "kill":
                # A *process* kill: deliver a real SIGKILL when the replica
                # is a worker process; in-process workers degrade to die
                # semantics so kill_rate plans run under any executor.
                kill = getattr(worker, "kill", None)
                if kill is not None:
                    kill()
                    raise ProcessDead(
                        f"worker {worker.worker_id} killed (SIGKILL by the fault plan)"
                    )
                raise ReplicaDead(
                    f"worker {worker.worker_id} died (kill fault, in-process replica)"
                )
            if decision.kind == "hang":
                # The hang burns clock time past any sane deadline before
                # the dispatch is declared dead (a timeout, simulated).
                self.clock.sleep(decision.seconds)
                raise ReplicaHung(
                    f"worker {worker.worker_id} hung for "
                    f"{decision.seconds * 1e3:.1f} ms"
                )
            # "slow": extra latency, then a normal (correct) answer — the
            # signal the health tracker's latency EWMA watches.
            self.clock.sleep(decision.seconds)
        with self._serving_mode():
            return worker.predict(nodes)

    def _pick_worker(
        self, shard_id: int, now: float, exclude: Optional[set] = None
    ) -> Optional[ShardWorker]:
        """Health-gated dispatch among a shard's replicas.

        Closed-breaker replicas are preferred; half-open ones (cooldown
        elapsed, awaiting a probe) are the fallback.  Replicas that already
        failed this batch (``exclude``) are skipped while any other
        dispatchable sibling exists — but with a single replica a transient
        fault retries in place rather than giving up.  Returns ``None`` only
        when the shard has zero dispatchable replicas (degraded territory).
        """
        group = self._replicas[shard_id]
        ids = [worker.worker_id for worker in group]
        closed, probing = self.health.partition(ids, now)
        if exclude:
            pool_ids = [i for i in closed if i not in exclude] or [
                i for i in probing if i not in exclude
            ]
            if not pool_ids:
                pool_ids = closed or probing
        else:
            pool_ids = closed or probing
        if not pool_ids:
            return None
        by_id = {worker.worker_id: worker for worker in group}
        pool = [by_id[worker_id] for worker_id in pool_ids]
        if len(pool) == 1:
            return pool[0]
        if self.config.dispatch == "round_robin":
            with self._lock:
                counter = self._round_robin[shard_id]
                self._round_robin[shard_id] = counter + 1
            return pool[counter % len(pool)]
        # least_loaded: fewest nodes served so far, lowest worker id on ties.
        return min(pool, key=lambda worker: (worker.nodes_served, worker.worker_id))

    def _serve_degraded(self, shard_id: int, live: List[InferenceRequest]) -> None:
        """Zero dispatchable replicas: apply ``degraded_policy`` to the batch.

        ``"fail"`` fails everything; ``"stale_ok"`` answers the rows whose
        final-layer logits are already resident in a replica's embedding
        cache or the shared halo tier — flagged ``stale``, since nothing was
        recomputed — and fails only the true misses.
        """
        start = self.clock.now()
        nodes = np.array([request.node for request in live], dtype=np.int64)
        hit = np.zeros(len(nodes), dtype=bool)
        predictions = np.full(len(nodes), -1, dtype=np.int64)
        if self.config.degraded_policy == "stale_ok":
            for worker in self._replicas[shard_id]:
                if hit.all():
                    break
                mask, values = worker.degraded_logits(nodes)
                fresh = mask & ~hit
                predictions[fresh] = values[fresh]
                hit |= fresh
        with self._lock:
            now = self.clock.now()
            served = int(hit.sum())
            for request, ok, prediction in zip(live, hit, predictions):
                if ok:
                    request.prediction = int(prediction)
                    request.stale = True
                    request.batch_size = served
                    self._terminal(request, COMPLETED, now)
                    self._latencies.append(request.latency)
                else:
                    self._terminal(request, FAILED, now)
            if served:
                self._metrics.degraded[shard_id].inc(served)
                self._batch_sizes.append(served)
                if self.telemetry.enabled:
                    self._metrics.latency[shard_id].observe_many(
                        self._latencies[-served:]
                    )
                    self._metrics.batch_size[shard_id].observe(served)
                self._last_completion = now
        if self.tracer is not None:
            record = self.tracer.attempt(
                shard_id,
                None,
                [request.request_id for request in live],
                0,
                None,
                start,
            )
            self.tracer.end_attempt(record, now, "degraded")

    # -- introspection -----------------------------------------------------------

    def _collect_gauges(self) -> None:
        """Pull-hook run before every telemetry export.

        Cache/halo/plan counters and executor state live in their own
        structs on the hot path; exports mirror them into gauges here
        instead of paying per-event metric increments.
        """
        metrics = self._metrics
        self._sync_process_workers()
        cache = CacheStats()
        plans = PlanCacheStats()
        for worker in self.workers:
            cache = cache.merge(worker.cache.stats)
            if worker.plan_cache is not None:
                plans = plans.merge(worker.plan_cache.stats)
        for event, value in cache.as_dict().items():
            metrics.cache_gauge.labels(event).set(value)
        for event, value in plans.as_dict().items():
            metrics.plan_gauge.labels(event).set(value)
        if self.halo_store is not None:
            for event, value in self.halo_store.stats.as_dict().items():
                metrics.halo_gauge.labels(event).set(value)
        metrics.executor_peak.set(self.executor.peak_concurrency)
        for shard_id in range(len(self.shards)):
            metrics.queue_depth.labels(str(shard_id)).set(
                self.batcher.queue_depth(shard_id)
            )

    @property
    def swept_segments(self) -> tuple:
        """Stale shared-memory segments reclaimed at this server's startup
        (names of segments whose creator process was dead; empty unless
        ``executor="process"``)."""
        if self._procplane is None:
            return ()
        return tuple(self._procplane.swept_stale)

    def _sync_process_workers(self) -> None:
        """Pull stats/registry deltas from live worker processes (no-op
        otherwise; dead or retired handles keep their last synced view)."""
        if self._procplane is None:
            return
        for worker in self.workers:
            if isinstance(worker, ProcessWorkerHandle):
                worker.sync(timeout=1.0)

    def stats(self) -> ServerStats:
        self._sync_process_workers()
        cache = CacheStats()
        plans = PlanCacheStats()
        for worker in self.workers:
            cache = cache.merge(worker.cache.stats)
            if worker.plan_cache is not None:
                plans = plans.merge(worker.plan_cache.stats)
        halo = CacheStats()
        if self.halo_store is not None:
            halo = halo.merge(self.halo_store.stats)
            # Worker processes keep their own halo hit/miss counters; each
            # handle mirrors its child's on sync.
            for worker in self.workers:
                child_halo = getattr(worker, "halo_stats", None)
                if child_halo is not None:
                    halo = halo.merge(child_halo)
        now = self.clock.now()
        loads = []
        for worker in self.workers:
            record = self.health.snapshot(worker.worker_id)
            loads.append(
                WorkerLoad(
                    worker_id=worker.worker_id,
                    shard_id=worker.shard.part_id,
                    batches=worker.batches_served,
                    nodes=worker.nodes_served,
                    core_nodes=worker.shard.num_core,
                    halo_nodes=worker.shard.num_halo,
                    peak_concurrency=worker.peak_inflight,
                    health=self.health.state(worker.worker_id, now),
                    failures=record.failures,
                    breaker_opens=record.opens,
                    latency_ewma=record.latency_ewma,
                    epoch=worker.epoch,
                    pid=getattr(worker, "pid", None),
                    heartbeat_age=getattr(worker, "heartbeat_age", None),
                    rss_bytes=getattr(worker, "rss_bytes", None),
                )
            )
        loads = tuple(loads)
        if self._first_enqueue is not None and self._last_completion is not None:
            duration = self._last_completion - self._first_enqueue
        else:
            duration = 0.0
        # ServerStats is a *view over the registry*: every ledger counter
        # below reads the metric children the serving paths incremented (all
        # zero under telemetry="off").  Supervisor and retry-budget numbers
        # come from their owning objects instead, so they survive
        # telemetry="off" (the bench gates assert on them exactly).
        metrics = self._metrics
        hedged, hedges_won, hedges_cancelled = metrics.hedge_totals()
        return ServerStats(
            mode=self.config.mode,
            hot_path=self.config.hot_path,
            cache_policy=self.config.cache_policy,
            stage_seconds=merge_stage_totals(worker.timings for worker in self.workers),
            completed_requests=metrics.status_total(COMPLETED),
            latencies=np.asarray(self._latencies, dtype=np.float64),
            batch_sizes=np.asarray(self._batch_sizes, dtype=np.int64),
            cache=cache,
            workers=loads,
            size_flushes=self.batcher.size_flushes,
            delay_flushes=self.batcher.delay_flushes,
            forced_flushes=self.batcher.forced_flushes,
            duration=duration,
            executor=self.executor.name,
            peak_concurrency=self.executor.peak_concurrency,
            rejected_requests=metrics.status_total(REJECTED),
            shed_requests=metrics.status_total(SHED),
            expired_requests=metrics.status_total(EXPIRED),
            failed_requests=metrics.status_total(FAILED),
            retried_requests=metrics.retried_total(),
            failovers=metrics.failover_total(),
            degraded_requests=metrics.degraded_total(),
            worker_failures=metrics.worker_failures.value,
            injected_faults=self.faults.total_injected if self.faults is not None else 0,
            block_waits=metrics.block_waits.value,
            block_self_flushes=metrics.block_self_flushes.value,
            halo=halo,
            halo_tier=self.halo_store is not None,
            plans=plans,
            class_requests=metrics.class_totals(),
            stolen_batches=self.scheduler.stolen_batches,
            steal_rounds=self.scheduler.steal_rounds,
            ingress=self.config.ingress,
            work_stealing=self.scheduler.work_stealing,
            supervisor_restarts=self.supervisor.restarts,
            supervisor_quarantines=self.supervisor.quarantines,
            prewarmed_rows=self.supervisor.prewarmed_rows,
            hedged_batches=hedged,
            hedges_won=hedges_won,
            hedges_cancelled=hedges_cancelled,
            retry_attempts=metrics.retry_attempts.value,
            retry_budget_capacity=(
                self.retry_budget.capacity if self.retry_budget is not None else None
            ),
            retry_budget_spent=(
                self.retry_budget.spent if self.retry_budget is not None else 0
            ),
            retry_budget_exhausted=(
                self.retry_budget.denied if self.retry_budget is not None else 0
            ),
            retry_budget_tokens=(
                self.retry_budget.tokens if self.retry_budget is not None else 0.0
            ),
        )

    def reset_stats(self) -> None:
        """Zero every counter while keeping cache *contents* (warm state).

        Used to measure warm-cache behaviour separately from the cold pass
        that populated the caches.
        """
        self._latencies.clear()
        self._batch_sizes.clear()
        self.telemetry.reset()
        self._first_enqueue = None
        self._last_completion = None
        self.batcher.size_flushes = 0
        self.batcher.delay_flushes = 0
        self.batcher.forced_flushes = 0
        self.scheduler.stolen_batches = 0
        self.scheduler.steal_rounds = 0
        self.executor.reset_peak()
        for worker in self.workers:
            reset = getattr(worker, "reset_stats", None)
            if reset is not None:
                # Process-backed replicas zero parent mirrors and ship a
                # reset to the child over the control channel.
                reset()
                continue
            worker.batches_served = 0
            worker.nodes_served = 0
            worker.peak_inflight = 0
            worker.cache.stats = CacheStats()
            if worker.plan_cache is not None:
                worker.plan_cache.stats = PlanCacheStats()
            worker.timings.reset()
        if self.halo_store is not None:
            self.halo_store.stats = CacheStats()
        self.supervisor.reset_counters()
        if self.retry_budget is not None:
            self.retry_budget.reset_counters()

    def describe(self) -> str:
        depth = (
            "unbounded"
            if self.config.max_queue_depth is None
            else f"<= {self.config.max_queue_depth} ({self.config.overload_policy})"
        )
        halo = (
            f"halo tier over {self.halo_store.num_shared} boundary nodes"
            if self.halo_store is not None
            else "halo tier off"
        )
        lines = [
            f"InferenceServer[{self.config.mode}/{self.config.hot_path}] over {self.graph.name}: "
            f"{len(self.shards)} shards x {self.config.num_replicas} replicas, "
            f"batch<= {self.config.max_batch_size}, delay<= {self.config.max_delay * 1e3:.1f} ms, "
            f"cache {self.config.cache_capacity} entries/worker ({self.config.cache_policy}), "
            f"{halo}, plan cache {self.config.plan_cache_size} plans/worker, "
            f"executor {self.executor.name}, queues {depth}, "
            f"ingress {self.config.ingress}"
            + (", work stealing" if self.config.work_stealing else "")
            + f", classes {{{', '.join(f'{n}={w:g}' for n, w in self.config.request_classes)}}}"
        ]
        lines.extend(f"  {shard.summary()}" for shard in self.shards)
        return "\n".join(lines)
