"""The online inference server: routing, micro-batching, sharded execution.

Request lifecycle::

    submit(node) ──▶ route by node id to the owning shard's queue
                     │  (MicroBatcher: flush at max_batch_size or max_delay)
                     ▼
    poll()/drain() ──▶ dispatcher picks a shard replica (round-robin or
                     │  least-loaded) ──▶ ShardWorker.predict(batch)
                     ▼
    InferenceRequest.prediction / .latency      ServerStats (p50/p95, cache
                                                hit rate, per-shard load)

The engine is single-threaded and simulation-friendly: all timing flows
through a :class:`~repro.serving.clock.Clock`, and with ``mode="exact"`` the
served predictions are identical to offline full-graph evaluation
(``evaluate_accuracy(mode="full")``) for the same nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph.graph import Graph
from ..models.base import GNNModel
from .batcher import InferenceRequest, MicroBatcher
from .cache import CacheStats, EmbeddingCache
from .clock import Clock, SystemClock
from .config import ServingConfig
from .shard import GraphShard, build_shards
from .stats import ServerStats, WorkerLoad
from .worker import ShardWorker

__all__ = ["ServingConfig", "InferenceServer"]


class InferenceServer:
    """Serves per-node prediction requests for one trained model + graph."""

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config: Optional[ServingConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config if config is not None else ServingConfig()
        self.clock = clock if clock is not None else SystemClock()
        if self.config.mode == "sampled":
            fanouts = self.config.fanouts
            if fanouts is None or len(fanouts) != model.num_layers:
                raise ValueError("sampled serving needs config.fanouts, one per model layer")

        halo_hops = (
            self.config.halo_hops if self.config.halo_hops is not None else model.num_layers
        )
        if self.config.mode == "exact" and halo_hops < model.num_layers:
            # A truncated halo silently corrupts boundary nodes' receptive
            # fields (and poisons the embedding cache with them).
            raise ValueError(
                f"exact serving needs halo_hops >= model depth "
                f"({halo_hops} < {model.num_layers})"
            )
        self.shards: List[GraphShard] = build_shards(
            graph,
            self.config.num_shards,
            halo_hops,
            method=self.config.partition_method,
            seed=self.config.seed,
        )
        self._owner = np.full(graph.num_nodes, -1, dtype=np.int64)
        for shard in self.shards:
            self._owner[shard.core_nodes] = shard.part_id

        self.workers: List[ShardWorker] = []
        self._replicas: List[List[ShardWorker]] = []
        for shard in self.shards:
            group: List[ShardWorker] = []
            for replica in range(self.config.num_replicas):
                worker = ShardWorker(
                    worker_id=len(self.workers),
                    shard=shard,
                    model=model,
                    cache=EmbeddingCache(self.config.cache_capacity),
                    mode=self.config.mode,
                    fanouts=self.config.fanouts,
                    seed=self.config.seed + 9176 * len(self.workers),
                )
                group.append(worker)
                self.workers.append(worker)
            self._replicas.append(group)

        self.batcher = MicroBatcher(
            len(self.shards), self.config.max_batch_size, self.config.max_delay
        )
        self._round_robin = [0] * len(self.shards)
        self._request_counter = 0
        self._latencies: List[float] = []
        self._batch_sizes: List[int] = []
        self._completed = 0
        self._first_enqueue: Optional[float] = None
        self._last_completion: Optional[float] = None

    # -- request intake ----------------------------------------------------------

    def submit(self, node: int) -> InferenceRequest:
        """Enqueue one prediction request; flushes any batch that became due."""
        node = int(node)
        if not 0 <= node < self.graph.num_nodes:
            raise ValueError(f"node {node} is outside the graph (0..{self.graph.num_nodes - 1})")
        now = self.clock.now()
        request = InferenceRequest(
            request_id=self._request_counter,
            node=node,
            shard_id=int(self._owner[node]),
            enqueue_time=now,
        )
        self._request_counter += 1
        if self._first_enqueue is None:
            self._first_enqueue = now
        self.batcher.enqueue(request)
        self.poll()
        return request

    def submit_many(self, nodes: Sequence[int]) -> List[InferenceRequest]:
        return [self.submit(node) for node in nodes]

    # -- execution ---------------------------------------------------------------

    def poll(self) -> int:
        """Flush every queue that is due at the current clock time."""
        flushed = 0
        for shard_id in self.batcher.due_shards(self.clock.now()):
            flushed += self._flush(shard_id)
        return flushed

    def drain(self) -> int:
        """Force-flush until no request is pending (end of a request stream)."""
        flushed = 0
        while self.batcher.pending:
            for shard_id in self.batcher.nonempty_shards():
                flushed += self._flush(shard_id, forced=True)
        return flushed

    def predict(self, nodes: Sequence[int]) -> np.ndarray:
        """Synchronous convenience: submit ``nodes``, drain, return predictions."""
        requests = self.submit_many(nodes)
        self.drain()
        return np.array([request.result() for request in requests], dtype=np.int64)

    def _flush(self, shard_id: int, forced: bool = False) -> int:
        batch = self.batcher.pop_batch(shard_id, forced=forced)
        if not batch:
            return 0
        worker = self._pick_worker(shard_id)
        nodes = np.array([request.node for request in batch], dtype=np.int64)
        predictions = worker.predict(nodes)
        now = self.clock.now()
        for request, prediction in zip(batch, predictions):
            request.prediction = int(prediction)
            request.completion_time = now
            request.worker_id = worker.worker_id
            request.batch_size = len(batch)
            self._latencies.append(request.latency)
        self._completed += len(batch)
        self._batch_sizes.append(len(batch))
        self._last_completion = now
        return 1

    def _pick_worker(self, shard_id: int) -> ShardWorker:
        """Dispatch among a shard's replicas (trivial when num_replicas == 1)."""
        group = self._replicas[shard_id]
        if len(group) == 1:
            return group[0]
        if self.config.dispatch == "round_robin":
            index = self._round_robin[shard_id]
            self._round_robin[shard_id] = (index + 1) % len(group)
            return group[index]
        # least_loaded: fewest nodes served so far, lowest worker id on ties.
        return min(group, key=lambda worker: (worker.nodes_served, worker.worker_id))

    # -- introspection -----------------------------------------------------------

    def stats(self) -> ServerStats:
        cache = CacheStats()
        for worker in self.workers:
            cache = cache.merge(worker.cache.stats)
        loads = tuple(
            WorkerLoad(
                worker_id=worker.worker_id,
                shard_id=worker.shard.part_id,
                batches=worker.batches_served,
                nodes=worker.nodes_served,
                core_nodes=worker.shard.num_core,
                halo_nodes=worker.shard.num_halo,
            )
            for worker in self.workers
        )
        if self._first_enqueue is not None and self._last_completion is not None:
            duration = self._last_completion - self._first_enqueue
        else:
            duration = 0.0
        return ServerStats(
            mode=self.config.mode,
            completed_requests=self._completed,
            latencies=np.asarray(self._latencies, dtype=np.float64),
            batch_sizes=np.asarray(self._batch_sizes, dtype=np.int64),
            cache=cache,
            workers=loads,
            size_flushes=self.batcher.size_flushes,
            delay_flushes=self.batcher.delay_flushes,
            forced_flushes=self.batcher.forced_flushes,
            duration=duration,
        )

    def reset_stats(self) -> None:
        """Zero every counter while keeping cache *contents* (warm state).

        Used to measure warm-cache behaviour separately from the cold pass
        that populated the caches.
        """
        self._latencies.clear()
        self._batch_sizes.clear()
        self._completed = 0
        self._first_enqueue = None
        self._last_completion = None
        self.batcher.size_flushes = 0
        self.batcher.delay_flushes = 0
        self.batcher.forced_flushes = 0
        for worker in self.workers:
            worker.batches_served = 0
            worker.nodes_served = 0
            worker.cache.stats = CacheStats()

    def describe(self) -> str:
        lines = [
            f"InferenceServer[{self.config.mode}] over {self.graph.name}: "
            f"{len(self.shards)} shards x {self.config.num_replicas} replicas, "
            f"batch<= {self.config.max_batch_size}, delay<= {self.config.max_delay * 1e3:.1f} ms, "
            f"cache {self.config.cache_capacity} entries/worker"
        ]
        lines.extend(f"  {shard.summary()}" for shard in self.shards)
        return "\n".join(lines)
