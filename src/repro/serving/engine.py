"""The online inference server: routing, micro-batching, sharded execution.

Request lifecycle::

    submit(node) ──▶ admission control (bounded per-shard queues:
                     │  reject / shed_oldest / block on overload)
                     ▼
                     route by node id to the owning shard's queue
                     │  (MicroBatcher: flush at max_batch_size, max_delay,
                     │   or the oldest request's deadline)
                     ▼
    Scheduler ──────▶ one flush task per due shard, dispatched through a
                     │  FlushExecutor (SerialExecutor inline, or
                     │  ConcurrentExecutor over a thread pool)
                     ▼
    InferenceRequest.status ∈ {completed, rejected, shed, expired}
    ServerStats (p50/p95/p99, hit rate, per-shard load, overload counters)

The :class:`~repro.serving.scheduler.Scheduler` owns the flush loop; by
default it still polls after every ``submit()`` so size-triggered batches
flush immediately, but open-loop drivers can set
``server.scheduler.flush_on_submit = False`` and call ``poll()`` themselves.
All timing flows through a :class:`~repro.serving.clock.Clock`; with the
default ``SerialExecutor`` plus a ``ManualClock`` every run is bit-for-bit
deterministic, and with ``mode="exact"`` the served predictions are identical
to offline full-graph evaluation (``evaluate_accuracy(mode="full")``) under
*either* executor.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..graph.graph import Graph
from ..models.base import GNNModel
from ..tensor.tensor import no_grad
from .batcher import (
    COMPLETED,
    EXPIRED,
    FAILED,
    REJECTED,
    SHED,
    InferenceRequest,
    MicroBatcher,
)
from ..graph.restriction import PlanCacheStats
from .cache import CacheStats, EmbeddingCache, HaloStore, LegacyEmbeddingCache
from .clock import Clock, SystemClock
from .config import ServingConfig
from .executor import make_executor
from .scheduler import Scheduler
from .shard import GraphShard, build_shards
from .stats import ServerStats, WorkerLoad
from .timing import merge_stage_totals
from .worker import ShardWorker

__all__ = ["ServingConfig", "InferenceServer"]


class InferenceServer:
    """Serves per-node prediction requests for one trained model + graph."""

    def __init__(
        self,
        model: GNNModel,
        graph: Graph,
        config: Optional[ServingConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.config = config if config is not None else ServingConfig()
        self.clock = clock if clock is not None else SystemClock()
        if self.config.mode == "sampled":
            fanouts = self.config.fanouts
            if fanouts is None or len(fanouts) != model.num_layers:
                raise ValueError("sampled serving needs config.fanouts, one per model layer")
        self._previous_fft_workers = None
        if self.config.fft_workers is not None:
            from ..compression.spectral import get_fft_workers, set_fft_workers

            # Applied process-wide (scipy.fft has one workers argument per
            # call site); the prior value is restored on shutdown so one
            # server's opt-in cannot leak into later servers or training.
            self._previous_fft_workers = get_fft_workers()
            set_fft_workers(self.config.fft_workers)

        halo_hops = (
            self.config.halo_hops if self.config.halo_hops is not None else model.num_layers
        )
        if self.config.mode == "exact" and halo_hops < model.num_layers:
            # A truncated halo silently corrupts boundary nodes' receptive
            # fields (and poisons the embedding cache with them).
            raise ValueError(
                f"exact serving needs halo_hops >= model depth "
                f"({halo_hops} < {model.num_layers})"
            )
        self.shards: List[GraphShard] = build_shards(
            graph,
            self.config.num_shards,
            halo_hops,
            method=self.config.partition_method,
            seed=self.config.seed,
        )
        self._owner = np.full(graph.num_nodes, -1, dtype=np.int64)
        for shard in self.shards:
            self._owner[shard.core_nodes] = shard.part_id

        self.halo_store = self._build_halo_store()
        full_degrees = graph.degrees() if self.halo_store is not None else None
        self.workers: List[ShardWorker] = []
        self._replicas: List[List[ShardWorker]] = []
        for shard in self.shards:
            # Shard-local mask of rows whose full neighbour list is inside
            # the shard (the subgraph relabelling is monotone, so induced row
            # i is global node shard.nodes[i]).  Only those rows may be
            # published to the shared halo tier.
            publish_mask = (
                shard.graph.degrees() == full_degrees[shard.nodes]
                if full_degrees is not None
                else None
            )
            group: List[ShardWorker] = []
            for _replica in range(self.config.num_replicas):
                worker = ShardWorker(
                    worker_id=len(self.workers),
                    shard=shard,
                    model=model,
                    cache=self._build_cache(shard),
                    mode=self.config.mode,
                    fanouts=self.config.fanouts,
                    seed=self.config.seed + 9176 * len(self.workers),
                    hot_path=self.config.hot_path,
                    halo_store=self.halo_store,
                    halo_publish_mask=publish_mask,
                    plan_cache_size=self.config.plan_cache_size,
                )
                group.append(worker)
                self.workers.append(worker)
            self._replicas.append(group)

        self.batcher = MicroBatcher(
            len(self.shards),
            self.config.max_batch_size,
            self.config.max_delay,
            max_queue_depth=self.config.max_queue_depth,
        )
        executor_workers = (
            self.config.executor_workers
            if self.config.executor_workers is not None
            else len(self.workers)
        )
        self.executor = make_executor(self.config.executor, executor_workers)
        self.scheduler = Scheduler(self.batcher, self.clock, self._flush, self.executor)

        # Engine-wide lock: guards queue admission, dispatcher state and the
        # stats accumulators.  Flush tasks run prediction *outside* it.
        self._lock = threading.RLock()
        self._serving_depth = 0
        self._round_robin = [0] * len(self.shards)
        self._request_counter = 0
        self._latencies: List[float] = []
        self._batch_sizes: List[int] = []
        self._completed = 0
        self._rejected = 0
        self._shed = 0
        self._expired = 0
        self._first_enqueue: Optional[float] = None
        self._last_completion: Optional[float] = None
        self._closed = False

    def _build_halo_store(self) -> Optional[HaloStore]:
        """The shared boundary-embedding tier, when the config and topology
        allow one.

        Eligible nodes are those held by two or more *shards* (their layer
        values would otherwise be recomputed on each side of the cut); with
        replicated shards every held node is eligible, since a shard's
        replicas keep independent embedding caches but compute identical
        rows.  Exact compiled serving only — the legacy path must stay the
        PR-3 reference, and sampled inference is stochastic (nothing it
        computes is exchangeable).
        """
        if (
            not self.config.halo_tier
            or self.config.mode != "exact"
            or self.config.hot_path != "compiled"
            or len(self.shards) * self.config.num_replicas < 2
        ):
            return None
        counts = np.zeros(self.graph.num_nodes, dtype=np.int64)
        for shard in self.shards:
            counts[shard.nodes] += 1
        threshold = 1 if self.config.num_replicas > 1 else 2
        shared = np.where(counts >= threshold)[0]
        if not len(shared):
            return None
        return HaloStore(self.graph.num_nodes, shared)

    def _build_cache(self, shard: GraphShard):
        """One embedding cache per worker, matched to the hot path and policy.

        The legacy hot path gets the legacy ``OrderedDict`` cache (so the
        benchmark reference really is the PR-3 implementation); the compiled
        path gets the slab cache.  Under ``cache_policy="degree"`` the
        shard's highest-degree held nodes are pinned (GNNIE's hot-hub
        retention), with node ids as the deterministic tie-break.  A pinned
        node can hold one entry *per layer*, so the node budget divides
        ``cache_pin_fraction * capacity`` by the model depth — pinned entries
        can never consume more than the configured fraction of the cache.
        ``cache_policy="degree-auto"`` passes the *full* ranked hub list
        (capped at one cache-fill of pinned entries) and lets the cache tune
        the active pin prefix online, starting from the configured fraction.
        """
        capacity = self.config.cache_capacity
        if self.config.hot_path == "legacy":
            return LegacyEmbeddingCache(capacity)
        pinned = None
        initial = None
        depth = max(self.model.num_layers, 1)
        if (
            self.config.cache_policy in ("degree", "degree-auto")
            and capacity > 0
            and len(shard.nodes)
        ):
            budget = int(self.config.cache_pin_fraction * capacity) // depth
            limit = budget if self.config.cache_policy == "degree" else capacity // depth
            if limit > 0:
                degrees = self.graph.degrees()[shard.nodes]
                order = np.lexsort((shard.nodes, -degrees))
                pinned = shard.nodes[order[:limit]]
                if self.config.cache_policy == "degree-auto":
                    initial = max(budget, 1)
        return EmbeddingCache(
            capacity,
            num_nodes=self.graph.num_nodes,
            policy=self.config.cache_policy,
            pinned_nodes=pinned,
            initial_pin_count=initial,
        )

    # -- request intake ----------------------------------------------------------

    def submit(self, node: int, timeout: Optional[float] = None) -> InferenceRequest:
        """Enqueue one prediction request; the scheduler flushes due batches.

        ``timeout`` (clock seconds, defaulting to ``config.default_timeout``)
        sets the request's deadline: if it is still queued when its deadline
        passes it terminates as ``expired`` instead of being executed.  Under
        admission control the returned request may already be terminal
        (``status == "rejected"``) — check ``request.completed`` before
        calling ``result()``.
        """
        node = int(node)
        if self._closed:
            raise RuntimeError("server is shut down")
        if not 0 <= node < self.graph.num_nodes:
            raise ValueError(f"node {node} is outside the graph (0..{self.graph.num_nodes - 1})")
        if timeout is None:
            timeout = self.config.default_timeout
        elif timeout <= 0:
            raise ValueError("timeout must be positive (or None for no deadline)")
        now = self.clock.now()
        request = InferenceRequest(
            request_id=self._request_counter,
            node=node,
            shard_id=int(self._owner[node]),
            enqueue_time=now,
            deadline=None if timeout is None else now + timeout,
        )
        self._request_counter += 1
        if self._first_enqueue is None:
            self._first_enqueue = now
        if self._admit(request):
            self.scheduler.on_submit()
        return request

    def submit_many(
        self, nodes: Sequence[int], timeout: Optional[float] = None
    ) -> List[InferenceRequest]:
        return [self.submit(node, timeout=timeout) for node in nodes]

    def _admit(self, request: InferenceRequest) -> bool:
        """Apply the overload policy; returns False when ``request`` was rejected."""
        shard_id = request.shard_id
        if self.batcher.is_full(shard_id):
            policy = self.config.overload_policy
            if policy == "reject":
                with self._lock:
                    request._finish(REJECTED, self.clock.now())
                    self._rejected += 1
                return False
            if policy == "shed_oldest":
                with self._lock:
                    victim = self.batcher.shed_oldest(shard_id)
                    victim._finish(SHED, self.clock.now())
                    self._shed += 1
            else:  # block: synchronous backpressure — serve until there is room
                while self.batcher.is_full(shard_id):
                    self._flush(shard_id, forced=True)
        with self._lock:
            self.batcher.enqueue(request)
        return True

    # -- execution ---------------------------------------------------------------

    def poll(self) -> int:
        """Flush every queue that is due at the current clock time."""
        return self.scheduler.poll()

    def drain(self) -> int:
        """Force-flush until no request is pending (end of a request stream)."""
        return self.scheduler.drain()

    def predict(self, nodes: Sequence[int]) -> np.ndarray:
        """Synchronous convenience: submit ``nodes``, drain, return predictions.

        Raises when admission control turned any of the requests away — use
        ``submit_many``/``drain`` and inspect per-request ``status`` when
        serving with bounded queues.
        """
        requests = self.submit_many(nodes)
        self.drain()
        incomplete = sum(1 for request in requests if not request.completed)
        if incomplete:
            raise RuntimeError(
                f"{incomplete} of {len(requests)} requests did not complete "
                "(rejected/shed/expired by admission control); "
                "use submit_many() + drain() and check request.status"
            )
        return np.array([request.result() for request in requests], dtype=np.int64)

    def shutdown(self) -> None:
        """Drain pending work, then release executor threads (idempotent)."""
        if self._closed:
            return
        self.drain()
        self._closed = True
        self.scheduler.shutdown()
        if self.config.fft_workers is not None:
            from ..compression.spectral import set_fft_workers

            set_fft_workers(self._previous_fft_workers)

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @contextlib.contextmanager
    def _serving_mode(self) -> Iterator[None]:
        """Hold the model in eval/no-grad for a whole flush round.

        The save/restore of ``model.training`` happens once, in the driving
        thread, so concurrent flush tasks never observe (or cause) a
        transition mid-batch.
        """
        with self._lock:
            first = self._serving_depth == 0
            self._serving_depth += 1
            if first:
                self._was_training = self.model.training
                self.model.eval()
        try:
            with no_grad():
                yield
        finally:
            with self._lock:
                self._serving_depth -= 1
                if self._serving_depth == 0:
                    self.model.train(self._was_training)

    def _flush(self, shard_id: int, forced: bool = False) -> int:
        with self._lock:
            batch = self.batcher.pop_batch(shard_id, forced=forced)
            if not batch:
                return 0
            now = self.clock.now()
            live: List[InferenceRequest] = []
            for request in batch:
                if request.deadline is not None and now >= request.deadline:
                    request._finish(EXPIRED, now)
                    self._expired += 1
                else:
                    live.append(request)
            if not live:
                return 1
            worker = self._pick_worker(shard_id)

        nodes = np.array([request.node for request in live], dtype=np.int64)
        try:
            with self._serving_mode():
                predictions = worker.predict(nodes)
        except BaseException:
            # The batch was already dequeued; a crash must not strand it in
            # "pending" (the exactly-once-termination contract).
            with self._lock:
                now = self.clock.now()
                for request in live:
                    request._finish(FAILED, now)
            raise

        with self._lock:
            now = self.clock.now()
            for request, prediction in zip(live, predictions):
                request.prediction = int(prediction)
                request.worker_id = worker.worker_id
                request.batch_size = len(live)
                request._finish(COMPLETED, now)
                self._latencies.append(request.latency)
            self._completed += len(live)
            self._batch_sizes.append(len(live))
            self._last_completion = now
        return 1

    def _pick_worker(self, shard_id: int) -> ShardWorker:
        """Dispatch among a shard's replicas (trivial when num_replicas == 1)."""
        group = self._replicas[shard_id]
        if len(group) == 1:
            return group[0]
        if self.config.dispatch == "round_robin":
            index = self._round_robin[shard_id]
            self._round_robin[shard_id] = (index + 1) % len(group)
            return group[index]
        # least_loaded: fewest nodes served so far, lowest worker id on ties.
        return min(group, key=lambda worker: (worker.nodes_served, worker.worker_id))

    # -- introspection -----------------------------------------------------------

    def stats(self) -> ServerStats:
        cache = CacheStats()
        plans = PlanCacheStats()
        for worker in self.workers:
            cache = cache.merge(worker.cache.stats)
            if worker.plan_cache is not None:
                plans = plans.merge(worker.plan_cache.stats)
        halo = CacheStats()
        if self.halo_store is not None:
            halo = halo.merge(self.halo_store.stats)
        loads = tuple(
            WorkerLoad(
                worker_id=worker.worker_id,
                shard_id=worker.shard.part_id,
                batches=worker.batches_served,
                nodes=worker.nodes_served,
                core_nodes=worker.shard.num_core,
                halo_nodes=worker.shard.num_halo,
                peak_concurrency=worker.peak_inflight,
            )
            for worker in self.workers
        )
        if self._first_enqueue is not None and self._last_completion is not None:
            duration = self._last_completion - self._first_enqueue
        else:
            duration = 0.0
        return ServerStats(
            mode=self.config.mode,
            hot_path=self.config.hot_path,
            cache_policy=self.config.cache_policy,
            stage_seconds=merge_stage_totals(worker.timings for worker in self.workers),
            completed_requests=self._completed,
            latencies=np.asarray(self._latencies, dtype=np.float64),
            batch_sizes=np.asarray(self._batch_sizes, dtype=np.int64),
            cache=cache,
            workers=loads,
            size_flushes=self.batcher.size_flushes,
            delay_flushes=self.batcher.delay_flushes,
            forced_flushes=self.batcher.forced_flushes,
            duration=duration,
            executor=self.executor.name,
            peak_concurrency=self.executor.peak_concurrency,
            rejected_requests=self._rejected,
            shed_requests=self._shed,
            expired_requests=self._expired,
            halo=halo,
            halo_tier=self.halo_store is not None,
            plans=plans,
        )

    def reset_stats(self) -> None:
        """Zero every counter while keeping cache *contents* (warm state).

        Used to measure warm-cache behaviour separately from the cold pass
        that populated the caches.
        """
        self._latencies.clear()
        self._batch_sizes.clear()
        self._completed = 0
        self._rejected = 0
        self._shed = 0
        self._expired = 0
        self._first_enqueue = None
        self._last_completion = None
        self.batcher.size_flushes = 0
        self.batcher.delay_flushes = 0
        self.batcher.forced_flushes = 0
        self.executor.reset_peak()
        for worker in self.workers:
            worker.batches_served = 0
            worker.nodes_served = 0
            worker.peak_inflight = 0
            worker.cache.stats = CacheStats()
            if worker.plan_cache is not None:
                worker.plan_cache.stats = PlanCacheStats()
            worker.timings.reset()
        if self.halo_store is not None:
            self.halo_store.stats = CacheStats()

    def describe(self) -> str:
        depth = (
            "unbounded"
            if self.config.max_queue_depth is None
            else f"<= {self.config.max_queue_depth} ({self.config.overload_policy})"
        )
        halo = (
            f"halo tier over {self.halo_store.num_shared} boundary nodes"
            if self.halo_store is not None
            else "halo tier off"
        )
        lines = [
            f"InferenceServer[{self.config.mode}/{self.config.hot_path}] over {self.graph.name}: "
            f"{len(self.shards)} shards x {self.config.num_replicas} replicas, "
            f"batch<= {self.config.max_batch_size}, delay<= {self.config.max_delay * 1e3:.1f} ms, "
            f"cache {self.config.cache_capacity} entries/worker ({self.config.cache_policy}), "
            f"{halo}, plan cache {self.config.plan_cache_size} plans/worker, "
            f"executor {self.executor.name}, queues {depth}"
        ]
        lines.extend(f"  {shard.summary()}" for shard in self.shards)
        return "\n".join(lines)
