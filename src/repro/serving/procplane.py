"""Crash-isolated multi-process serving plane (ROADMAP item 1).

Everything before this module simulated failure inside one interpreter: a
real segfault, OOM kill, or wedged C extension in any
:class:`~repro.serving.worker.ShardWorker` still took the whole server down,
and the GIL capped the thread executor on pure-python flush paths.  Here a
shard replica becomes a *worker process*:

* :class:`SharedSlabArena` owns named ``multiprocessing.shared_memory``
  segments — shard CSRs, feature matrices, embedding-cache slabs and the
  :class:`SharedHaloStore` all live in ``/dev/shm`` with a 16-byte
  magic+epoch header, so a respawned process re-attaches the same bytes
  instead of re-pickling a graph.  Lifecycle is hardened three ways:
  ``weakref.finalize`` per segment, an ``atexit`` sweep of live arenas, and
  a *startup stale-segment sweep* that unlinks segments whose creator pid is
  dead (a SIGKILL'd run cannot leak into the next one).
* :func:`_child_main` is the spawn-safe process entry point: it attaches
  the segments, rebuilds the :class:`~repro.serving.shard.GraphShard` over
  zero-copy views, and runs a real ``ShardWorker`` behind a length-prefixed
  request/response protocol over pipes.  A daemon *control* thread answers
  heartbeats, stats syncs, pre-warms and resets while the main thread is
  busy predicting — liveness stays observable independent of the request
  path, in the spirit of DGL KVStore's pull/push control channel.
* :class:`ProcessWorkerHandle` is the parent-side proxy speaking that
  protocol with per-call timeouts.  It exposes the full worker surface the
  engine dispatches against (``predict``/``retire``/``prewarm_from_halo``/
  ``degraded_logits``/load counters), raising typed :class:`ProcessDead` /
  :class:`ProcessTimeout` errors that feed the existing ``HealthTracker`` →
  retry/failover → ``stale_ok`` chain; a timed-out child is killed so the
  pipe can never desynchronise.  Per-process ``MetricsRegistry`` snapshots
  ship back over the control channel as reset-on-read deltas and merge by
  addition into the parent fleet view (the PR-7 seam built for this).
* :class:`ProcessExecutor` implements the ``FlushExecutor`` interface
  (including ``map_stealing``) with parent threads that block in pipe I/O —
  the GIL is released while child processes compute in true parallel.
* :class:`ProcessPlane` ties it together for the engine: publishes each
  shard's slabs once, spawns/respawns workers under bumped epochs, and
  sweeps every segment (its own and its children's) at shutdown.

Spawn-safety caveats: the model is pickled once per spawn (weights must not
be mutated mid-serving — each child checks its own weight signature), and
``fork`` is never used, so the plane behaves identically on every start
method and never inherits locks mid-acquisition.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import signal
import struct
import threading
import time
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import connection, get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.graph import Graph
from ..graph.restriction import PlanCacheStats
from .cache import CacheStats, EmbeddingCache, HaloStore
from .executor import ConcurrentExecutor
from .faults import ReplicaDead, ReplicaHung
from .shard import GraphShard
from .worker import ShardWorker, WorkerRetired

__all__ = [
    "SEGMENT_PREFIX",
    "SharedSlabArena",
    "SharedHaloStore",
    "ProcessPlane",
    "ProcessWorkerHandle",
    "ProcessExecutor",
    "ProcessDead",
    "ProcessTimeout",
    "WorkerSpec",
    "list_segments",
]


class ProcessDead(ReplicaDead):
    """The worker process exited (or its pipe broke) while a call was due.

    Subclasses :class:`~repro.serving.faults.ReplicaDead`, so every existing
    health/retry/failover/supervisor path treats a real process crash exactly
    like an injected ``die`` fault.
    """


class ProcessTimeout(ReplicaHung):
    """A call outlived its per-call timeout; the child was killed.

    Subclasses :class:`~repro.serving.faults.ReplicaHung` — a wedged process
    is the real-world event the simulated ``hang`` fault stood in for.  The
    handle SIGKILLs the child before raising, so a late reply can never be
    mistaken for the answer to a newer request.
    """


# ---------------------------------------------------------------------------
# Shared-memory segments: naming, headers, lifecycle.
# ---------------------------------------------------------------------------

#: Every segment this plane creates is named ``bgnn-<creator pid>-<token>-…``
#: so the stale sweep can attribute ownership by pid liveness alone.
SEGMENT_PREFIX = "bgnn"

_MAGIC = b"BLKGNN01"
#: magic (8 bytes) + little-endian int64 epoch; 16 keeps float64 views aligned.
_HEADER_BYTES = 16


def _segment_nbytes(shape, dtype) -> int:
    payload = math.prod(shape) * np.dtype(dtype).itemsize if len(shape) else np.dtype(dtype).itemsize
    return _HEADER_BYTES + max(int(payload), 8)


def _create_segment(name: str, shape, dtype, epoch: int = 0):
    """Create + header-stamp one named segment; returns ``(shm, view)``."""
    shm = SharedMemory(name=name, create=True, size=_segment_nbytes(shape, dtype))
    shm.buf[:8] = _MAGIC
    struct.pack_into("<q", shm.buf, 8, int(epoch))
    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=_HEADER_BYTES)
    return shm, view


def _attach_segment(name: str, shape, dtype):
    """Attach an existing segment, validating its header; ``(shm, view)``."""
    shm = SharedMemory(name=name)
    if bytes(shm.buf[:8]) != _MAGIC:
        shm.close()
        raise ValueError(f"shared segment {name!r} has no {_MAGIC!r} header")
    view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=_HEADER_BYTES)
    return shm, view


def segment_epoch(shm: SharedMemory) -> int:
    """The epoch stamped into a segment's header at creation."""
    return struct.unpack_from("<q", shm.buf, 8)[0]


def _unlink_by_name(name: str) -> bool:
    """Unlink a segment by name (idempotent; safe on already-gone names)."""
    try:
        shm = SharedMemory(name=name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    finally:
        shm.close()
    return True


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def list_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """Plane-owned ``/dev/shm`` entries (the leak-check the benches assert on)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(entry for entry in os.listdir(shm_dir) if entry.startswith(prefix))


_ARENAS: "weakref.WeakSet[SharedSlabArena]" = weakref.WeakSet()
_ATEXIT_ARMED = False


def _atexit_sweep() -> None:
    for arena in list(_ARENAS):
        arena.unlink_all()


class SharedSlabArena:
    """Named shared-memory segments with unlink guards and a stale sweep.

    One arena per server; every segment it creates is named
    ``bgnn-<pid>-<token>-<label>`` and carries the magic+epoch header.  Three
    independent guards keep ``/dev/shm`` clean: a ``weakref.finalize`` per
    segment (GC'd arena → segments unlinked), one ``atexit`` hook sweeping
    all live arenas (interpreter exit), and :meth:`sweep_stale` at the next
    startup (SIGKILL — nothing in-process ran — cannot leak past the next
    server build on the same machine).
    """

    def __init__(self, token: Optional[str] = None) -> None:
        global _ATEXIT_ARMED
        self.pid = os.getpid()
        self.token = token if token is not None else os.urandom(3).hex()
        self.base = f"{SEGMENT_PREFIX}-{self.pid}-{self.token}"
        self._segments: Dict[str, SharedMemory] = {}
        self._finalizers: Dict[str, weakref.finalize] = {}
        self._lock = threading.Lock()
        _ARENAS.add(self)
        if not _ATEXIT_ARMED:
            atexit.register(_atexit_sweep)
            _ATEXIT_ARMED = True

    def segment_name(self, label: str) -> str:
        return f"{self.base}-{label}"

    def create(self, label: str, shape, dtype, epoch: int = 0) -> Tuple[str, np.ndarray]:
        """Create one segment; returns ``(segment name, ndarray view)``."""
        name = self.segment_name(label)
        shm, view = _create_segment(name, shape, dtype, epoch=epoch)
        with self._lock:
            self._segments[name] = shm
            self._finalizers[name] = weakref.finalize(self, _unlink_by_name, name)
        return name, view

    @staticmethod
    def attach(name: str, shape, dtype):
        """Attach an existing segment by name; ``(shm, view)``."""
        return _attach_segment(name, shape, dtype)

    def unlink_all(self) -> None:
        """Unlink every segment this arena created (idempotent)."""
        with self._lock:
            segments = dict(self._segments)
            finalizers = dict(self._finalizers)
            self._segments.clear()
            self._finalizers.clear()
        for name, shm in segments.items():
            finalizer = finalizers.get(name)
            if finalizer is not None:
                finalizer.detach()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            try:
                shm.close()
            except BufferError:  # a live view pins the map; the unlink stands
                pass

    @staticmethod
    def unlink_prefix(prefix: str) -> List[str]:
        """Unlink every segment whose name starts with ``prefix``."""
        removed = []
        for entry in list_segments(prefix):
            if _unlink_by_name(entry):
                removed.append(entry)
        return removed

    @staticmethod
    def sweep_stale(keep_pids=()) -> List[str]:
        """Unlink plane segments whose creator pid is dead (startup guard)."""
        removed = []
        keep = {os.getpid(), *keep_pids}
        for entry in list_segments():
            parts = entry.split("-")
            try:
                pid = int(parts[1])
            except (IndexError, ValueError):
                continue
            if pid in keep or _pid_alive(pid):
                continue
            if _unlink_by_name(entry):
                removed.append(entry)
        return removed


# ---------------------------------------------------------------------------
# Shared halo tier: the HaloStore's slabs + epoch cell in named segments.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HaloSegmentSpec:
    """Everything a child needs to attach the shared halo tier by name."""

    num_nodes: int
    shared_nodes: np.ndarray
    epoch_segment: str
    #: ``(layer, dim, slab segment, present-bitmap segment)`` per layer.
    layer_segments: Tuple[Tuple[int, int, str, str], ...]


class SharedHaloStore(HaloStore):
    """A :class:`~repro.serving.cache.HaloStore` over shared-memory slabs.

    The slab/bitmap layout is byte-identical to the in-process store (the
    PR-4/5 design was sized for exactly this move); only allocation changes:
    every layer's slab and presence bitmap — and the fault-epoch cell — live
    in named segments, pre-allocated for layers ``1..K`` at server build
    (dims are known from the model), so parent and every worker process read
    and write the same bytes.  The epoch is a shared int64 cell: only the
    parent bumps it (on observed failures), children read it before
    publishing, so the epoch guard spans the whole fleet.

    Locks and the weight signature stay per-process: publishes of the same
    exact row are idempotent-identical, and weights are frozen while the
    process plane serves (the documented spawn-safety caveat).
    """

    def __init__(
        self,
        num_nodes: int,
        shared_nodes: np.ndarray,
        epoch_cell: np.ndarray,
        layer_views: Dict[int, Tuple[np.ndarray, np.ndarray]],
        segments: List[SharedMemory],
        spec: HaloSegmentSpec,
    ) -> None:
        super().__init__(num_nodes, shared_nodes)
        self._epoch_cell = epoch_cell
        self._layers = dict(layer_views)
        self._segments = segments  # keeps the attached maps alive
        self.spec = spec

    # The base class routes every epoch read through _current_epoch().
    def _current_epoch(self) -> int:
        return int(self._epoch_cell[0])

    def bump_epoch(self) -> int:
        with self._lock:
            self._epoch_cell[0] += 1
            return int(self._epoch_cell[0])

    @classmethod
    def create(
        cls,
        arena: SharedSlabArena,
        num_nodes: int,
        shared_nodes: np.ndarray,
        layer_dims: Dict[int, int],
    ) -> "SharedHaloStore":
        shared_nodes = np.unique(np.asarray(shared_nodes, dtype=np.int64))
        epoch_name, epoch_cell = arena.create("halo-epoch", (1,), np.int64)
        epoch_cell[0] = 0
        layer_views: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        layer_segments = []
        for layer, dim in sorted(layer_dims.items()):
            slab_name, slab = arena.create(f"halo-l{layer}", (len(shared_nodes), dim), np.float64)
            present_name, present = arena.create(f"halo-p{layer}", (len(shared_nodes),), np.bool_)
            present[:] = False
            layer_views[layer] = (slab, present)
            layer_segments.append((layer, dim, slab_name, present_name))
        spec = HaloSegmentSpec(
            num_nodes=int(num_nodes),
            shared_nodes=shared_nodes,
            epoch_segment=epoch_name,
            layer_segments=tuple(layer_segments),
        )
        return cls(num_nodes, shared_nodes, epoch_cell, layer_views, [], spec)

    @classmethod
    def attach(cls, spec: HaloSegmentSpec) -> "SharedHaloStore":
        segments: List[SharedMemory] = []
        shm, epoch_cell = _attach_segment(spec.epoch_segment, (1,), np.int64)
        segments.append(shm)
        layer_views: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for layer, dim, slab_name, present_name in spec.layer_segments:
            shape = (len(spec.shared_nodes), dim)
            slab_shm, slab = _attach_segment(slab_name, shape, np.float64)
            present_shm, present = _attach_segment(present_name, (shape[0],), np.bool_)
            segments.extend((slab_shm, present_shm))
            layer_views[layer] = (slab, present)
        return cls(spec.num_nodes, spec.shared_nodes, epoch_cell, layer_views, segments, spec)


# ---------------------------------------------------------------------------
# Length-prefixed request/response protocol.
# ---------------------------------------------------------------------------

_MSG_PREDICT = 1
_MSG_RESULT = 2
_MSG_ERROR = 3
_MSG_PING = 4
_MSG_SYNC = 5
_MSG_PREWARM = 6
_MSG_RESET = 7
_MSG_SHUTDOWN = 8
_MSG_READY = 9

#: envelope: message kind (u8), request id (u32), body length (u64).
_ENVELOPE = struct.Struct("!BIQ")


def _pack(kind: int, req_id: int, payload) -> bytes:
    body = b"" if payload is None else pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _ENVELOPE.pack(kind, req_id, len(body)) + body


def _unpack(data: bytes):
    kind, req_id, length = _ENVELOPE.unpack_from(data)
    body = bytes(data[_ENVELOPE.size: _ENVELOPE.size + length])
    if len(body) != length:
        raise OSError(f"truncated envelope: declared {length} bytes, got {len(body)}")
    return kind, req_id, pickle.loads(body) if length else None


def _send(conn, kind: int, req_id: int, payload) -> None:
    conn.send_bytes(_pack(kind, req_id, payload))


def _rss_bytes() -> Optional[int]:
    """Resident set size from /proc (no psutil dependency)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Worker spec + spawn-safe child entry point.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a spawned child needs to rebuild its ShardWorker.

    Big arrays (CSR, features, halo slabs, cache slabs) travel by segment
    *name*; only the model and the small shard-index arrays are pickled.
    """

    worker_id: int
    shard_id: int
    epoch: int
    seed: int
    mode: str
    hot_path: str
    plan_cache_size: int
    fanouts: Optional[Tuple[int, ...]]
    model: object
    graph_name: str
    #: field -> (segment name, shape, dtype string) for indptr/indices/features.
    graph_segments: Dict[str, Tuple[str, Tuple[int, ...], str]]
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    core_nodes: np.ndarray
    shard_nodes: np.ndarray
    halo_hops: int
    halo: Optional[HaloSegmentSpec]
    halo_publish_mask: Optional[np.ndarray]
    cache_capacity: int
    cache_policy: str
    cache_pinned: Optional[np.ndarray]
    cache_initial_pins: Optional[int]
    cache_num_nodes: int
    #: prefix for the child-created embedding-cache slab segments.
    cache_segment_base: str


def _child_request_loop(conn, worker: ShardWorker) -> None:
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            return  # parent went away: exit cleanly
        kind, req_id, payload = _unpack(data)
        if kind == _MSG_SHUTDOWN:
            return
        if kind != _MSG_PREDICT:
            continue
        try:
            predictions = worker.predict(np.asarray(payload, dtype=np.int64))
            reply = _pack(_MSG_RESULT, req_id, predictions)
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            reply = _pack(_MSG_ERROR, req_id, exc)
        try:
            conn.send_bytes(reply)
        except (BrokenPipeError, OSError):
            return


def _child_control_loop(conn, worker: ShardWorker, halo, registry) -> None:
    """Daemon thread: liveness + stats stay answerable during slow predicts."""
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            return
        kind, req_id, _ = _unpack(data)
        try:
            if kind == _MSG_PING:
                reply = {"pid": os.getpid(), "rss": _rss_bytes()}
            elif kind == _MSG_SYNC:
                snapshot = registry.snapshot() if registry is not None else None
                if registry is not None:
                    registry.reset()  # ship deltas: parent merges by addition
                reply = {
                    "cache_stats": worker.cache.stats,
                    "plan_stats": worker.plan_cache.stats if worker.plan_cache else None,
                    "halo_stats": halo.stats if halo is not None else None,
                    "timings": dict(worker.timings.totals),
                    "registry": snapshot,
                    "rss": _rss_bytes(),
                    "pid": os.getpid(),
                }
            elif kind == _MSG_PREWARM:
                reply = worker.prewarm_from_halo()
            elif kind == _MSG_RESET:
                worker.batches_served = 0
                worker.nodes_served = 0
                worker.peak_inflight = 0
                worker.cache.stats = CacheStats()
                if worker.plan_cache is not None:
                    worker.plan_cache.stats = PlanCacheStats()
                if halo is not None:
                    halo.stats = CacheStats()
                worker.timings.reset()
                if registry is not None:
                    registry.reset()
                reply = True
            else:
                reply = None
            envelope = _pack(_MSG_RESULT, req_id, reply)
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            envelope = _pack(_MSG_ERROR, req_id, exc)
        try:
            conn.send_bytes(envelope)
        except (BrokenPipeError, OSError):
            return


def _child_main(spec: WorkerSpec, request_conn, control_conn) -> None:
    """Process entry point (spawn-safe: module top-level, arguments pickled)."""
    created: List[SharedMemory] = []
    attached: List[SharedMemory] = []
    try:
        views = {}
        for field, (name, shape, dtype) in spec.graph_segments.items():
            shm, view = _attach_segment(name, shape, np.dtype(dtype))
            attached.append(shm)
            views[field] = view
        graph = Graph(
            indptr=views["indptr"],
            indices=views["indices"],
            features=views["features"],
            labels=spec.labels,
            train_mask=spec.train_mask,
            val_mask=spec.val_mask,
            test_mask=spec.test_mask,
            name=spec.graph_name,
        )
        shard = GraphShard(
            part_id=spec.shard_id,
            core_nodes=spec.core_nodes,
            nodes=spec.shard_nodes,
            graph=graph,
            halo_hops=spec.halo_hops,
        )
        halo = SharedHaloStore.attach(spec.halo) if spec.halo is not None else None

        def cache_allocator(layer: int, shape: Tuple[int, int]) -> np.ndarray:
            shm_slab, slab = _create_segment(
                f"{spec.cache_segment_base}cl{layer}", shape, np.float64, epoch=spec.epoch
            )
            created.append(shm_slab)
            return slab

        cache = EmbeddingCache(
            spec.cache_capacity,
            num_nodes=spec.cache_num_nodes,
            policy=spec.cache_policy,
            pinned_nodes=spec.cache_pinned,
            initial_pin_count=spec.cache_initial_pins,
            allocator=cache_allocator,
        )
        registry = None
        stage_family = None
        try:
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
            stage_family = registry.histogram(
                "serving_stage_seconds",
                "Per-flush wall-clock seconds by hot-path stage and worker",
                labels=("stage", "worker"),
            )
        except Exception:  # registry is best-effort: serving must not depend on it
            registry = None
        worker = ShardWorker(
            spec.worker_id,
            shard,
            spec.model,
            cache,
            mode=spec.mode,
            fanouts=spec.fanouts,
            seed=spec.seed,
            hot_path=spec.hot_path,
            halo_store=halo,
            halo_publish_mask=spec.halo_publish_mask,
            plan_cache_size=spec.plan_cache_size,
            epoch=spec.epoch,
        )
        if stage_family is not None:
            worker.timings.bind_histograms(stage_family, spec.worker_id)
        _send(control_conn, _MSG_READY, 0, {"pid": os.getpid()})
        control = threading.Thread(
            target=_child_control_loop,
            args=(control_conn, worker, halo, registry),
            name=f"serving-proc-control-{spec.worker_id}",
            daemon=True,
        )
        control.start()
        _child_request_loop(request_conn, worker)
    except BaseException:
        traceback.print_exc()
        for shm in created:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        os._exit(1)
    # Clean exit: unlink the slabs this child created, then leave without
    # interpreter teardown — shared-memory views still reference the maps and
    # a GC-ordered close() would raise spurious BufferErrors on stderr.
    for shm in created:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
    os._exit(0)


# ---------------------------------------------------------------------------
# Parent-side worker proxy.
# ---------------------------------------------------------------------------


class _HandleTimings:
    """Parent mirror of a child's StageTimer (replaced wholesale on sync)."""

    def __init__(self) -> None:
        from .timing import STAGES

        self.totals: Dict[str, float] = {name: 0.0 for name in STAGES}

    def bind_histograms(self, family, worker_id: int) -> None:
        """No-op: the child binds its own registry; deltas merge on sync."""

    def snapshot(self) -> Dict[str, float]:
        return dict(self.totals)

    def reset(self) -> None:
        for name in list(self.totals):
            self.totals[name] = 0.0


class _StatsCarrier:
    """Bare ``.stats`` holder standing in for the child's cache objects."""

    def __init__(self, stats) -> None:
        self.stats = stats
        self.enabled = True


class ProcessWorkerHandle:
    """Parent-side proxy for one worker process (the ShardWorker surface).

    Request RPCs (``predict``) run on the request pipe under a per-call
    timeout; control RPCs (heartbeat, stats sync, pre-warm, reset) run on a
    second pipe answered by the child's daemon control thread, so liveness
    is observable *while* a slow predict runs — heartbeat failure is a
    distinct signal from request-path failure.  Every receive waits on the
    pipe *and* the process sentinel, so a crashed child fails the call
    immediately instead of burning the timeout; a timed-out child is
    SIGKILLed before :class:`ProcessTimeout` is raised, so the pipe can
    never carry a stale reply into a later request.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        process,
        request_conn,
        control_conn,
        shard: GraphShard,
        num_model_layers: int,
        halo_store: Optional[SharedHaloStore],
        call_timeout: float,
        heartbeat_interval: float,
        ready_timeout: float = 120.0,
    ) -> None:
        self.spec = spec
        self.worker_id = spec.worker_id
        self.epoch = spec.epoch
        self.shard = shard
        self.retired = False
        self.halo_store = halo_store
        self._num_model_layers = int(num_model_layers)
        self._proc = process
        self._request_conn = request_conn
        self._control_conn = control_conn
        self._call_timeout = float(call_timeout)
        self._heartbeat_interval = float(heartbeat_interval)
        self._ready_timeout = float(ready_timeout)
        self._rpc_lock = threading.Lock()
        self._control_lock = threading.Lock()
        self._gauge_lock = threading.Lock()
        self._req_counter = 0
        self._ready = False
        self._dead = False
        self._closed = False
        self._last_beat: Optional[float] = None
        self._rss: Optional[int] = None
        # Parent-side mirrors of the child's load counters: incremented on
        # every successful RPC so least-loaded dispatch and ServerStats stay
        # synchronous (no pipe round-trip on the dispatch path).
        self.batches_served = 0
        self.nodes_served = 0
        self.peak_inflight = 0
        self._inflight = 0
        self.timings = _HandleTimings()
        self.cache = _StatsCarrier(CacheStats())
        self.plan_cache = _StatsCarrier(PlanCacheStats()) if spec.plan_cache_size > 0 else None
        self.halo_stats = CacheStats()
        #: set by the engine: fleet registry the child's delta snapshots merge into.
        self.fleet_registry = None

    # -- identity / liveness ---------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid

    @property
    def inflight(self) -> int:
        with self._gauge_lock:
            return self._inflight

    @property
    def alive(self) -> bool:
        return not self._dead and self._proc.is_alive()

    @property
    def heartbeat_age(self) -> Optional[float]:
        """Wall seconds since the child last answered on the control channel."""
        if self._last_beat is None:
            return None
        return time.monotonic() - self._last_beat

    @property
    def rss_bytes(self) -> Optional[int]:
        return self._rss

    # -- plumbing ----------------------------------------------------------------

    def _next_id(self) -> int:
        self._req_counter = (self._req_counter + 1) % (2**32)
        return self._req_counter

    def _describe(self) -> str:
        return f"worker {self.worker_id} (shard {self.spec.shard_id}, epoch {self.epoch}, pid {self.pid})"

    def _recv(self, conn, timeout: float):
        """One envelope off ``conn``, or a typed error; kills a wedged child."""
        try:
            ready = connection.wait([conn, self._proc.sentinel], timeout)
        except OSError:
            self._dead = True
            raise ProcessDead(f"{self._describe()}: pipe closed") from None
        if conn in ready:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                self._dead = True
                raise ProcessDead(f"{self._describe()}: pipe closed mid-call") from None
            return _unpack(data)
        if ready:  # only the sentinel fired: the process exited under us
            self._dead = True
            raise ProcessDead(f"{self._describe()}: process exited (code {self._proc.exitcode})")
        # Timeout: the child is wedged (its control thread could not answer
        # either).  Kill it — leaving it alive would desynchronise the pipe:
        # the eventual late reply would answer the *next* request.
        self.kill()
        raise ProcessTimeout(f"{self._describe()}: no reply within {timeout:g}s (killed)")

    def _ensure_ready(self) -> None:
        if self._ready:
            return
        with self._control_lock:
            if self._ready:
                return
            kind, _, _ = self._recv(self._control_conn, self._ready_timeout)
            if kind != _MSG_READY:
                self._dead = True
                raise ProcessDead(f"{self._describe()}: expected READY, got message kind {kind}")
            self._ready = True
            self._last_beat = time.monotonic()

    def _control_rpc(self, kind: int, payload=None, timeout: Optional[float] = None):
        self._ensure_ready()
        if self._dead:
            raise ProcessDead(f"{self._describe()}: process is dead")
        with self._control_lock:
            req_id = self._next_id()
            try:
                _send(self._control_conn, kind, req_id, payload)
            except (BrokenPipeError, OSError):
                self._dead = True
                raise ProcessDead(f"{self._describe()}: control pipe closed") from None
            rkind, _, rpayload = self._recv(
                self._control_conn, self._call_timeout if timeout is None else timeout
            )
        if rkind == _MSG_ERROR:
            raise rpayload
        return rpayload

    # -- the ShardWorker surface -------------------------------------------------

    def predict(self, global_nodes: np.ndarray) -> np.ndarray:
        if self.retired:
            raise WorkerRetired(
                f"worker {self.worker_id} epoch {self.epoch} was retired by the supervisor"
            )
        if self._dead:
            raise ProcessDead(f"{self._describe()}: process is dead")
        nodes = np.asarray(global_nodes, dtype=np.int64)
        with self._gauge_lock:
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
        try:
            with self._rpc_lock:
                self._ensure_ready()
                if self._dead:
                    raise ProcessDead(f"{self._describe()}: process is dead")
                req_id = self._next_id()
                try:
                    _send(self._request_conn, _MSG_PREDICT, req_id, nodes)
                except (BrokenPipeError, OSError):
                    self._dead = True
                    raise ProcessDead(f"{self._describe()}: request pipe closed") from None
                kind, _, payload = self._recv(self._request_conn, self._call_timeout)
        finally:
            with self._gauge_lock:
                self._inflight -= 1
        if kind == _MSG_ERROR:
            raise payload
        with self._gauge_lock:
            self.batches_served += 1
            self.nodes_served += len(nodes)
        return payload

    def prewarm_from_halo(self) -> int:
        try:
            warmed = self._control_rpc(_MSG_PREWARM)
        except (ProcessDead, ProcessTimeout):
            return 0
        return int(warmed or 0)

    def degraded_logits(self, global_nodes: np.ndarray):
        """Stale-read path that works with the child dead: the halo slabs are
        shared memory, so the parent argmaxes resident final-layer rows
        directly — exactly what ``stale_ok`` degraded serving needs from a
        crashed shard."""
        nodes = np.asarray(global_nodes, dtype=np.int64)
        hit = np.zeros(len(nodes), dtype=bool)
        predictions = np.full(len(nodes), -1, dtype=np.int64)
        if self.halo_store is None or not len(nodes):
            return hit, predictions
        halo_mask, halo_values = self.halo_store.take_mask(self._num_model_layers, nodes)
        if len(halo_values):
            hit |= halo_mask
            predictions[halo_mask] = halo_values.argmax(axis=-1)
        return hit, predictions

    def retire(self) -> None:
        """Supervisor replacement: mark retired and tear the process down."""
        self.retired = True
        self.close(timeout=0.0)

    # -- heartbeat / stats -------------------------------------------------------

    def maybe_heartbeat(self) -> None:
        """Ping the control channel if the liveness interval elapsed.

        Failure marks the handle dead (the next dispatch fails fast with
        :class:`ProcessDead`) without counting as a request-path failure —
        liveness and request health are separate signals.
        """
        if self.retired or self._dead or self._closed or not self._ready:
            return
        now = time.monotonic()
        if self._last_beat is not None and now - self._last_beat < self._heartbeat_interval:
            return
        try:
            payload = self._control_rpc(_MSG_PING)
        except (ProcessDead, ProcessTimeout, OSError):
            return  # _dead is set; dispatch will observe it
        self._last_beat = time.monotonic()
        if isinstance(payload, dict):
            self._rss = payload.get("rss", self._rss)

    def sync(self, timeout: Optional[float] = None) -> bool:
        """Pull the child's stats/registry deltas into the parent mirrors."""
        if self.retired or self._dead or self._closed:
            return False
        try:
            payload = self._control_rpc(_MSG_SYNC, timeout=timeout)
        except (ProcessDead, ProcessTimeout, OSError):
            return False
        if not isinstance(payload, dict):
            return False
        if payload.get("cache_stats") is not None:
            self.cache.stats = payload["cache_stats"]
        if self.plan_cache is not None and payload.get("plan_stats") is not None:
            self.plan_cache.stats = payload["plan_stats"]
        if payload.get("halo_stats") is not None:
            self.halo_stats = payload["halo_stats"]
        if payload.get("timings"):
            self.timings.totals = dict(payload["timings"])
        self._rss = payload.get("rss", self._rss)
        self._last_beat = time.monotonic()
        snapshot = payload.get("registry")
        if snapshot and self.fleet_registry is not None:
            self.fleet_registry.merge_snapshot(snapshot)
        return True

    def reset_stats(self) -> None:
        with self._gauge_lock:
            self.batches_served = 0
            self.nodes_served = 0
            self.peak_inflight = self._inflight
        self.cache.stats = CacheStats()
        if self.plan_cache is not None:
            self.plan_cache.stats = PlanCacheStats()
        self.halo_stats = CacheStats()
        self.timings.reset()
        if not self.retired and not self._dead and self._ready:
            try:
                self._control_rpc(_MSG_RESET)
            except (ProcessDead, ProcessTimeout, OSError):
                pass

    # -- teardown ----------------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL the child (idempotent; real fault injection uses this)."""
        pid = self._proc.pid
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
        self._dead = True
        self._proc.join(0.5)

    def close(self, timeout: float = 5.0) -> None:
        """Bounded teardown: graceful shutdown, escalating terminate → kill.

        Never hangs on a wedged child: the graceful join is bounded by
        ``timeout``, SIGTERM gets half a second, SIGKILL ends the matter.
        Finally the child's cache-slab segments are swept, so a killed
        worker's slabs cannot outlive its handle.
        """
        if self._closed:
            return
        self._closed = True
        if self._proc.is_alive() and not self._dead and self._ready and timeout > 0:
            got = self._rpc_lock.acquire(timeout=min(timeout, 1.0))
            if got:
                try:
                    _send(self._request_conn, _MSG_SHUTDOWN, 0, None)
                except (BrokenPipeError, OSError):
                    pass
                finally:
                    self._rpc_lock.release()
                self._proc.join(timeout)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(0.5)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(0.5)
        self._dead = True
        for conn in (self._request_conn, self._control_conn):
            try:
                conn.close()
            except OSError:
                pass
        SharedSlabArena.unlink_prefix(self.spec.cache_segment_base)


# ---------------------------------------------------------------------------
# Executor + plane.
# ---------------------------------------------------------------------------


class ProcessExecutor(ConcurrentExecutor):
    """Thread-pool front for process-backed workers.

    Each flush task is a pipe RPC to a worker process: the parent thread
    blocks in ``recv`` with the GIL released while the child computes, so —
    unlike the plain thread executor on pure-python flush paths — shard
    flushes genuinely overlap across cores.  Inherits the barrier and
    work-stealing semantics unchanged.
    """

    name = "process"


class ProcessPlane:
    """Owns the multi-process serving machinery for one InferenceServer.

    Publishes each shard's CSR/feature slabs into the arena once (replicas
    and respawns re-attach the same segments), builds the shared halo tier,
    spawns workers under a spawn (never fork) context, and sweeps every
    segment at shutdown.  Construction runs the stale-segment sweep, so a
    previously SIGKILL'd run's segments are reclaimed before new ones are
    created.
    """

    def __init__(
        self,
        graph: Graph,
        shards: List[GraphShard],
        model,
        call_timeout: float = 30.0,
        heartbeat_interval: float = 1.0,
    ) -> None:
        self.graph = graph
        self.shards = shards
        self.model = model
        self.call_timeout = float(call_timeout)
        self.heartbeat_interval = float(heartbeat_interval)
        self.swept_stale = SharedSlabArena.sweep_stale()
        self.arena = SharedSlabArena()
        self._ctx = get_context("spawn")
        self._shard_segments: Dict[int, Dict[str, Tuple[str, Tuple[int, ...], str]]] = {}
        self.halo_store: Optional[SharedHaloStore] = None
        self._closed = False

    def _publish_shard(self, shard: GraphShard) -> Dict[str, Tuple[str, Tuple[int, ...], str]]:
        cached = self._shard_segments.get(shard.part_id)
        if cached is not None:
            return cached
        segments: Dict[str, Tuple[str, Tuple[int, ...], str]] = {}
        graph = shard.graph
        for field, array, dtype in (
            ("indptr", graph.indptr, np.int64),
            ("indices", graph.indices, np.int64),
            ("features", graph.features, np.float64),
        ):
            source = np.ascontiguousarray(np.asarray(array, dtype=dtype))
            name, view = self.arena.create(f"s{shard.part_id}-{field}", source.shape, dtype)
            view[...] = source
            segments[field] = (name, tuple(source.shape), np.dtype(dtype).str)
        self._shard_segments[shard.part_id] = segments
        return segments

    def build_halo_store(self, shared_nodes: np.ndarray) -> SharedHaloStore:
        """The fleet-shared halo tier, slabs pre-allocated for layers 1..K."""
        layer_dims = {
            k: self.model.layers[k - 1].out_features
            for k in range(1, self.model.num_layers + 1)
        }
        self.halo_store = SharedHaloStore.create(
            self.arena, self.graph.num_nodes, shared_nodes, layer_dims
        )
        return self.halo_store

    def spawn_worker(
        self,
        shard_id: int,
        worker_id: int,
        epoch: int,
        seed: int,
        mode: str,
        hot_path: str,
        plan_cache_size: int,
        fanouts: Optional[Tuple[int, ...]],
        halo_publish_mask: Optional[np.ndarray],
        cache_capacity: int,
        cache_policy: str,
        cache_pinned: Optional[np.ndarray],
        cache_initial_pins: Optional[int],
    ) -> ProcessWorkerHandle:
        shard = self.shards[shard_id]
        segments = self._publish_shard(shard)
        graph = shard.graph
        spec = WorkerSpec(
            worker_id=worker_id,
            shard_id=shard_id,
            epoch=epoch,
            seed=seed,
            mode=mode,
            hot_path=hot_path,
            plan_cache_size=plan_cache_size,
            fanouts=tuple(fanouts) if fanouts is not None else None,
            model=self.model,
            graph_name=graph.name,
            graph_segments=segments,
            labels=graph.labels,
            train_mask=graph.train_mask,
            val_mask=graph.val_mask,
            test_mask=graph.test_mask,
            core_nodes=shard.core_nodes,
            shard_nodes=shard.nodes,
            halo_hops=shard.halo_hops,
            halo=self.halo_store.spec if self.halo_store is not None else None,
            halo_publish_mask=halo_publish_mask,
            cache_capacity=cache_capacity,
            cache_policy=cache_policy,
            cache_pinned=cache_pinned,
            cache_initial_pins=cache_initial_pins,
            cache_num_nodes=self.graph.num_nodes,
            cache_segment_base=f"{self.arena.base}-w{worker_id}-e{epoch}-",
        )
        request_parent, request_child = self._ctx.Pipe(duplex=True)
        control_parent, control_child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_child_main,
            args=(spec, request_child, control_child),
            name=f"serving-worker-{worker_id}-e{epoch}",
            daemon=True,
        )
        process.start()
        request_child.close()
        control_child.close()
        return ProcessWorkerHandle(
            spec,
            process,
            request_parent,
            control_parent,
            shard,
            self.model.num_layers,
            self.halo_store,
            self.call_timeout,
            self.heartbeat_interval,
        )

    def shutdown(self) -> None:
        """Unlink every segment (the arena's and any child stragglers)."""
        if self._closed:
            return
        self._closed = True
        self.arena.unlink_all()
        SharedSlabArena.unlink_prefix(self.arena.base)
