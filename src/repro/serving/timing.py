"""Per-stage wall-clock accounting for the serving hot path.

A flush spends its time in seven places: gathering cached rows, gathering
boundary rows another shard already computed (the halo tier), building or
patching the restriction plan, aggregating neighbour features, combining
them through the (possibly FFT-based) weight matrices, scattering fresh rows
back into the cache, and publishing boundary rows for the other shards.
:class:`StageTimer` attributes worker time to those buckets so `serve-bench`
(and future perf PRs) can see *where* a flush goes, not just how long it
took.

The timer is deliberately dependency-free on the model side: layers receive
it as an opaque object exposing ``stage(name)`` (see
:func:`repro.models.base.stage_scope`), so ``repro.models`` never imports the
serving package.

Allocation discipline: ``stage(name)`` returns a **cached** scope per stage
name — after the first flush touches a stage, re-entering it allocates
nothing (one dict lookup, two clock reads, one float add).  The scopes are
not re-entrant, which is fine: a worker's predict lock serialises its
flushes, and a stage never nests inside itself.  When the serving plane runs
with telemetry, :meth:`StageTimer.bind_histograms` additionally points each
scope at a labelled :class:`~repro.telemetry.LogHistogram` child so every
scope exit feeds the per-(stage, worker) distribution; unbound scopes pay a
single ``is not None`` check.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

__all__ = ["STAGES", "StageTimer", "merge_stage_totals"]

#: Bucket names in presentation order.
STAGES = (
    "cache_gather",
    "halo_gather",
    "plan_build",
    "aggregation",
    "combination",
    "cache_scatter",
    "halo_publish",
)


class _StageScope:
    """Hand-rolled context manager: a generator-based one costs ~3x as much
    to enter/exit, which matters at several scopes per flush."""

    __slots__ = ("_timer", "_name", "_start", "_hist")

    def __init__(self, timer: "StageTimer", name: str) -> None:
        self._timer = timer
        self._name = name
        self._hist = None

    def __enter__(self) -> None:
        self._start = self._timer._clock()

    def __exit__(self, *exc_info) -> None:
        timer = self._timer
        elapsed = timer._clock() - self._start
        totals = timer.totals
        totals[self._name] = totals.get(self._name, 0.0) + elapsed
        if self._hist is not None:
            self._hist.observe(elapsed)


class StageTimer:
    """Accumulates wall-clock seconds per named serving stage.

    One instance per worker; the worker's predict lock serialises access, so
    no internal synchronisation is needed.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.totals: Dict[str, float] = {name: 0.0 for name in STAGES}
        # One scope per stage, allocated eagerly for the known stages so the
        # very first flush is already allocation-free on the stage() path.
        self._scopes: Dict[str, _StageScope] = {
            name: _StageScope(self, name) for name in STAGES
        }

    def stage(self, name: str) -> _StageScope:
        scope = self._scopes.get(name)
        if scope is None:  # ad-hoc stage outside STAGES: cache it too
            scope = _StageScope(self, name)
            self._scopes[name] = scope
        return scope

    def bind_histograms(self, family, worker_id: int) -> None:
        """Point every scope at its ``(stage, worker)`` histogram child."""
        for name, scope in self._scopes.items():
            scope._hist = family.labels(name, str(worker_id))

    def reset(self) -> None:
        for name in list(self.totals):
            self.totals[name] = 0.0

    def snapshot(self) -> Dict[str, float]:
        return dict(self.totals)


def merge_stage_totals(
    timers, out: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Element-wise sum of several timers' totals (engine-level aggregation).

    ``out`` lets callers reuse one accumulator dict across calls instead of
    allocating a fresh one each time; it is zeroed, filled and returned.
    """
    if out is None:
        merged: Dict[str, float] = {name: 0.0 for name in STAGES}
    else:
        merged = out
        for name in STAGES:
            merged[name] = 0.0
        for name in list(merged):
            if name not in STAGES:
                merged[name] = 0.0
    for timer in timers:
        for name, seconds in timer.totals.items():
            merged[name] = merged.get(name, 0.0) + seconds
    return merged
