"""Per-stage wall-clock accounting for the serving hot path.

A flush spends its time in seven places: gathering cached rows, gathering
boundary rows another shard already computed (the halo tier), building or
patching the restriction plan, aggregating neighbour features, combining
them through the (possibly FFT-based) weight matrices, scattering fresh rows
back into the cache, and publishing boundary rows for the other shards.
:class:`StageTimer` attributes worker time to those buckets so `serve-bench`
(and future perf PRs) can see *where* a flush goes, not just how long it
took.

The timer is deliberately dependency-free on the model side: layers receive
it as an opaque object exposing ``stage(name)`` (see
:func:`repro.models.base.stage_scope`), so ``repro.models`` never imports the
serving package.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

__all__ = ["STAGES", "StageTimer", "merge_stage_totals"]

#: Bucket names in presentation order.
STAGES = (
    "cache_gather",
    "halo_gather",
    "plan_build",
    "aggregation",
    "combination",
    "cache_scatter",
    "halo_publish",
)


class _StageScope:
    """Hand-rolled context manager: a generator-based one costs ~3x as much
    to enter/exit, which matters at several scopes per flush."""

    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: "StageTimer", name: str) -> None:
        self._timer = timer
        self._name = name

    def __enter__(self) -> None:
        self._start = self._timer._clock()

    def __exit__(self, *exc_info) -> None:
        timer = self._timer
        elapsed = timer._clock() - self._start
        totals = timer.totals
        totals[self._name] = totals.get(self._name, 0.0) + elapsed


class StageTimer:
    """Accumulates wall-clock seconds per named serving stage.

    One instance per worker; the worker's predict lock serialises access, so
    no internal synchronisation is needed.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.totals: Dict[str, float] = {name: 0.0 for name in STAGES}

    def stage(self, name: str) -> _StageScope:
        return _StageScope(self, name)

    def reset(self) -> None:
        for name in list(self.totals):
            self.totals[name] = 0.0

    def snapshot(self) -> Dict[str, float]:
        return dict(self.totals)


def merge_stage_totals(timers) -> Dict[str, float]:
    """Element-wise sum of several timers' totals (engine-level aggregation)."""
    merged: Dict[str, float] = {name: 0.0 for name in STAGES}
    for timer in timers:
        for name, seconds in timer.totals.items():
            merged[name] = merged.get(name, 0.0) + seconds
    return merged
