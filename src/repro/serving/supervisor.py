"""Self-healing serving: replica supervision and the process-wide retry budget.

The PR-6 fault plane *survives* a dying replica (breakers, failover,
``stale_ok``) but never heals it: a replica whose breaker keeps re-opening
stays dark until process restart.  This module closes the loop:

:class:`ReplicaSupervisor`
    Driven from the scheduler/pump tick (``InferenceServer.supervise()``).
    When a replica's breaker has re-opened ``failure_budget`` times within
    ``window`` clock seconds, the supervisor **quarantines** it (pulled from
    dispatch, no cooldown re-admission) and **rebuilds** it: the old
    :class:`~repro.serving.worker.ShardWorker` is retired — in-flight
    attempts against the corpse raise
    :class:`~repro.serving.worker.WorkerRetired` and fail cleanly into the
    engine's retry path — and a fresh worker is built from the shard spec
    under a bumped epoch, its embedding cache pre-warmed from the shared
    :class:`~repro.serving.cache.HaloStore`, then re-registered with the
    :class:`~repro.serving.health.HealthTracker` and dispatch.  The same
    machinery backs operator-initiated rolling restarts
    (``InferenceServer.restart_replica``), which drain the replica's
    in-flight batches first.  Every action lands in a structured event log
    (exported by the supervisor bench as a CI artifact).

:class:`RetryBudget`
    A process-wide token bucket capping *total* retries across all shards:
    each batch retry spends one token; each successful dispatch refills
    ``refill`` tokens (never above capacity).  When the bucket is empty the
    engine stops retrying and degrades immediately — ``stale_ok`` rows or
    fail-fast — so a correlated flap storm cannot amplify into a retry storm
    (the failure mode real inference fleets budget against).

This is deliberately the seam ROADMAP item 1 (multi-process workers) slots
into: a respawned worker *process* registers through exactly
``ReplicaSupervisor.rebuild`` — quarantine, epoch bump, halo pre-warm,
re-registration — with only the worker construction swapped out.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = ["ReplicaSupervisor", "RetryBudget"]


class RetryBudget:
    """Token bucket bounding total batch retries across the whole server.

    ``capacity`` tokens are available up front; a retry spends one
    (:meth:`try_spend`), a successful dispatch refills ``refill`` tokens
    (:meth:`on_success`), and the bucket never exceeds capacity.  With
    ``refill=0`` the capacity is an exact ceiling on retries — what the
    supervisor bench asserts under :class:`~repro.serving.clock.ManualClock`.

    Thread-safe; ``spent`` / ``denied`` are cumulative counters.
    """

    def __init__(self, capacity: int, refill: float = 0.25) -> None:
        if capacity < 0:
            raise ValueError("retry budget capacity must be non-negative")
        if refill < 0:
            raise ValueError("retry budget refill must be non-negative")
        self.capacity = int(capacity)
        self.refill = float(refill)
        self._tokens = float(capacity)
        self.spent = 0
        self.denied = 0
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self) -> bool:
        """Take one token if available; a ``False`` means degrade, not retry."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    def on_success(self) -> None:
        """Successes earn retries back (bounded by the original capacity)."""
        if self.refill <= 0.0:
            return
        with self._lock:
            self._tokens = min(float(self.capacity), self._tokens + self.refill)

    def reset_counters(self) -> None:
        """Zero the cumulative counters (token level is left untouched)."""
        with self._lock:
            self.spent = 0
            self.denied = 0


class ReplicaSupervisor:
    """Watches breaker churn and rebuilds replicas that exceed their budget.

    The supervisor holds *policy* (when to quarantine, the event ledger);
    the *mechanics* of a rebuild — retire, epoch bump, fresh worker, halo
    pre-warm, re-registration — live in
    ``InferenceServer._rebuild_replica`` so the engine's locking rules stay
    in one place.  ``auto=False`` (the default) keeps ticks inert while the
    operator path (``restart_replica``) still works.
    """

    def __init__(
        self,
        server,
        failure_budget: int = 2,
        window: float = 1.0,
        auto: bool = False,
    ) -> None:
        if failure_budget < 1:
            raise ValueError("supervisor failure_budget must be >= 1")
        if window <= 0:
            raise ValueError("supervisor window must be positive")
        self._server = server
        self.failure_budget = int(failure_budget)
        self.window = float(window)
        self.auto = bool(auto)
        self.restarts = 0
        self.quarantines = 0
        self.prewarmed_rows = 0
        self._events: List[dict] = []
        self._seen_opens = 0
        self._lock = threading.RLock()
        # Optional per-replica counter sinks (telemetry), resolved at bind.
        self._restart_counters: Dict[int, object] = {}
        self._quarantine_counters: Dict[int, object] = {}

    def bind_metrics(self, restarts_family, quarantines_family) -> None:
        """Mirror rebuilds / quarantines into per-replica registry counters."""
        with self._lock:
            worker_ids = [worker.worker_id for worker in self._server.workers]
            self._restart_counters = {
                worker_id: restarts_family.labels(str(worker_id)) for worker_id in worker_ids
            }
            self._quarantine_counters = {
                worker_id: quarantines_family.labels(str(worker_id)) for worker_id in worker_ids
            }

    # ------------------------------------------------------------------- ticks

    def tick(self, now: float) -> int:
        """Quarantine + rebuild every replica over its failure budget.

        Called from ``poll()``/``drain()`` and the front-door pump.  Cheap
        when nothing changed: the health tracker's monotone ``total_opens``
        gates the scan, so an idle tick is two attribute reads.
        Returns the number of replicas rebuilt.
        """
        if not self.auto:
            return 0
        health = self._server.health
        if health.total_opens == self._seen_opens:
            return 0
        rebuilt = 0
        with self._lock:
            self._seen_opens = health.total_opens
            since = now - self.window
            for shard_id, group in enumerate(self._server._replicas):
                for slot, worker in enumerate(group):
                    if health.state(worker.worker_id, now) == "quarantined":
                        continue
                    opens = health.opens_in_window(worker.worker_id, since)
                    if opens >= self.failure_budget:
                        self._heal(
                            shard_id,
                            slot,
                            now,
                            event="rebuild",
                            reason=(
                                f"{opens} breaker opens within {self.window:g}s "
                                f"(budget {self.failure_budget})"
                            ),
                        )
                        rebuilt += 1
        return rebuilt

    def restart(self, shard_id: int, slot: int, now: float):
        """Operator-initiated rebuild of one (already drained) replica slot."""
        with self._lock:
            return self._heal(shard_id, slot, now, event="restart", reason="operator restart")

    # ---------------------------------------------------------------- internals

    def _heal(self, shard_id: int, slot: int, now: float, event: str, reason: str):
        """Quarantine one slot and swap in a rebuilt worker (lock held)."""
        server = self._server
        corpse = server._replicas[shard_id][slot]
        server.health.quarantine(corpse.worker_id)
        self.quarantines += 1
        counter = self._quarantine_counters.get(corpse.worker_id)
        if counter is not None:
            counter.inc()
        self._events.append(
            {
                "time": now,
                "event": "quarantine",
                "shard": shard_id,
                "replica": slot,
                "worker": corpse.worker_id,
                "epoch": corpse.epoch,
                "reason": reason,
            }
        )
        worker, prewarmed = server._rebuild_replica(shard_id, slot)
        self.restarts += 1
        self.prewarmed_rows += prewarmed
        counter = self._restart_counters.get(worker.worker_id)
        if counter is not None:
            counter.inc()
        self._events.append(
            {
                "time": now,
                "event": event,
                "shard": shard_id,
                "replica": slot,
                "worker": worker.worker_id,
                "epoch": worker.epoch,
                "reason": reason,
                "prewarmed_rows": prewarmed,
            }
        )
        return worker

    # ----------------------------------------------------------------- plumbing

    def event_log(self) -> List[dict]:
        """A copy of the structured supervision ledger, oldest first."""
        with self._lock:
            return [dict(event) for event in self._events]

    def last_event(self) -> Optional[dict]:
        with self._lock:
            return dict(self._events[-1]) if self._events else None

    def reset_counters(self) -> None:
        """Zero counters and the event log (rebuilt workers stay in place)."""
        with self._lock:
            self.restarts = 0
            self.quarantines = 0
            self.prewarmed_rows = 0
            self._events.clear()

    def describe(self) -> str:
        mode = "auto" if self.auto else "manual"
        return (
            f"ReplicaSupervisor({mode}: budget {self.failure_budget} opens "
            f"per {self.window:g}s, {self.restarts} restarts)"
        )
