"""Deterministic, seedable fault injection for the serving plane.

Production serving has to survive replicas that raise, hang, slow down or
flap — but those failure modes are miserable to test against wall-clock
threads.  A :class:`FaultPlan` makes every one of them a *simulated*,
reproducible event: the engine consults the plan once per batch dispatch
(``decide(worker_id, now)``), and the plan answers from per-replica counters
and seeded RNG streams, so with the :class:`~repro.serving.clock.ManualClock`
and the serial executor an entire chaos scenario replays bit-for-bit.

Failure modes (one decision per dispatch, first matching spec wins):

``raise``
    The dispatch fails immediately, as if the replica raised mid-batch (or —
    once workers become processes — died).  Drawn with ``fail_rate`` or
    forced by the deterministic ``flap_period``/``flap_down`` schedule.
``hang``
    The dispatch consumes ``hang_seconds`` of clock time (past any sane
    deadline) and then fails, as a stuck replica caught by a timeout would.
``slow``
    The dispatch succeeds but takes ``slow_seconds`` longer — the input the
    health tracker's latency EWMA exists to notice.
``die``
    Permanent crash: once drawn (``die_rate``), *every* later dispatch to
    that replica fails too, regardless of spec windows — the replica is a
    corpse until :meth:`FaultPlan.revive` (called by the supervisor when it
    rebuilds the worker, modelling a fresh process).

Specs can be windowed in clock time (``after``/``until``) and restricted to
specific replicas (``workers``), so a test can script "replica 2 dies at
t=1.0 and recovers at t=3.0" exactly.

The plan is injected through :attr:`repro.serving.ServingConfig.fault_plan`
or the ``serve-bench --fault-*`` CLI flags; it never touches the worker's
compute, so a run with a plan whose rates are all zero is byte-identical to
a run without one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "FaultSpec",
    "FaultDecision",
    "FaultPlan",
    "InjectedFault",
    "ReplicaHung",
    "ReplicaDead",
    "FAULT_KINDS",
]

FAULT_KINDS = ("raise", "hang", "slow", "die", "kill")


class InjectedFault(RuntimeError):
    """Raised (by the engine, on the plan's behalf) in place of a worker crash."""


class ReplicaHung(RuntimeError):
    """A dispatch that consumed its hang budget without answering (timeout)."""


class ReplicaDead(RuntimeError):
    """A dispatch to a permanently crashed replica (``kind="die"`` fired)."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: who it hits, when it is live, and how it fails.

    Parameters
    ----------
    workers:
        Worker ids the spec applies to (``None`` = every replica).
    fail_rate, hang_rate, slow_rate:
        Per-dispatch probabilities of each failure mode; their sum must not
        exceed 1 (a single uniform draw picks among them).
    hang_seconds:
        Simulated clock time a hung dispatch burns before it is declared
        dead — choose it larger than any request deadline under test.
    slow_seconds:
        Extra latency of a slow (but successful) dispatch.
    die_rate:
        Per-dispatch probability of a *permanent* crash: once it fires the
        replica stays dead (every later dispatch fails with ``die``) until
        the plan is told the worker was rebuilt via
        :meth:`FaultPlan.revive`.
    kill_rate:
        Per-dispatch probability of a *process* kill: the engine delivers a
        real ``SIGKILL`` to the worker's pid when the replica is a process
        (``executor="process"``), and degrades to ``die`` semantics for
        in-process workers.  Like ``die``, the replica stays dead until
        revived by a supervisor rebuild.
    flap_period, flap_down:
        Deterministic flapping: out of every ``flap_period`` dispatches to a
        replica, the first ``flap_down`` fail (``raise``).  ``0`` disables
        flapping.  Flap failures are checked before the random draw, so a
        flapping replica flaps identically under any seed.
    after, until:
        Clock window in which the spec is active (``until=None`` = forever).
    """

    workers: Optional[Tuple[int, ...]] = None
    fail_rate: float = 0.0
    hang_rate: float = 0.0
    slow_rate: float = 0.0
    die_rate: float = 0.0
    kill_rate: float = 0.0
    hang_seconds: float = 0.05
    slow_seconds: float = 0.005
    flap_period: int = 0
    flap_down: int = 0
    after: float = 0.0
    until: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("fail_rate", "hang_rate", "slow_rate", "die_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")
        total = self.fail_rate + self.hang_rate + self.slow_rate + self.die_rate + self.kill_rate
        if total > 1.0 + 1e-12:
            raise ValueError(
                "fail_rate + hang_rate + slow_rate + die_rate + kill_rate must not exceed 1"
            )
        if self.hang_seconds < 0 or self.slow_seconds < 0:
            raise ValueError("hang_seconds and slow_seconds must be non-negative")
        if self.flap_period < 0 or self.flap_down < 0:
            raise ValueError("flap_period and flap_down must be non-negative")
        if self.flap_period and self.flap_down > self.flap_period:
            raise ValueError("flap_down cannot exceed flap_period")
        if self.until is not None and self.until < self.after:
            raise ValueError("until must be >= after")
        if self.workers is not None:
            object.__setattr__(self, "workers", tuple(int(w) for w in self.workers))

    def applies_to(self, worker_id: int) -> bool:
        return self.workers is None or worker_id in self.workers

    def active_at(self, now: float) -> bool:
        return now >= self.after and (self.until is None or now < self.until)


@dataclass(frozen=True)
class FaultDecision:
    """What the plan chose for one dispatch: the mode and its time cost."""

    kind: str           # one of FAULT_KINDS
    seconds: float = 0.0


class FaultPlan:
    """A seedable schedule of replica faults, consulted once per dispatch.

    Determinism: each worker gets its own RNG stream seeded from
    ``(seed, worker_id)`` plus a dispatch counter, so the decision sequence a
    replica sees depends only on the plan's seed and how many times that
    replica was dispatched — not on thread interleaving of *other* replicas.
    Under the serial executor the whole run is therefore reproducible.

    Thread-safe (the concurrent executor dispatches from pool threads); the
    ``injected`` counters record how many faults of each kind actually fired.
    """

    def __init__(self, specs: Union[FaultSpec, Sequence[FaultSpec]], seed: int = 0) -> None:
        if isinstance(specs, FaultSpec):
            specs = (specs,)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        if not self.specs:
            raise ValueError("a FaultPlan needs at least one FaultSpec")
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._rngs: Dict[int, np.random.Generator] = {}
        self._dispatches: Dict[int, int] = {}
        self._dead: set = set()  # workers whose "die" fired and were not revived
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        # Optional per-kind counter sinks (telemetry); a plan can be shared
        # with at most one instrumented server at a time (last bind wins).
        self._kind_counters: Dict[str, object] = {}

    def bind_metrics(self, kind_family) -> None:
        """Mirror injected faults into per-kind registry counters."""
        with self._lock:
            self._kind_counters = {kind: kind_family.labels(kind) for kind in FAULT_KINDS}

    def _record(self, kind: str) -> None:
        """Count one injected fault (caller holds the lock)."""
        self.injected[kind] += 1
        counter = self._kind_counters.get(kind)
        if counter is not None:
            counter.inc()

    @classmethod
    def replica_failures(
        cls, rate: float, seed: int = 0, workers: Optional[Sequence[int]] = None
    ) -> "FaultPlan":
        """Convenience: every dispatch independently raises with ``rate``."""
        spec_workers = None if workers is None else tuple(workers)
        return cls(FaultSpec(workers=spec_workers, fail_rate=rate), seed=seed)

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def dead_workers(self) -> Tuple[int, ...]:
        """Worker ids currently held dead by a fired ``die`` fault."""
        with self._lock:
            return tuple(sorted(self._dead))

    def revive(self, worker_id: int) -> None:
        """Clear a worker's permanent-crash flag (its process was rebuilt).

        Only the dead flag is dropped — RNG streams and dispatch counters are
        kept, so the rest of the schedule stays deterministic across revivals.
        """
        with self._lock:
            self._dead.discard(int(worker_id))

    def reset(self) -> None:
        """Forget dispatch counters and RNG state (fresh, replayable plan)."""
        with self._lock:
            self._rngs.clear()
            self._dispatches.clear()
            self._dead.clear()
            self.injected = {kind: 0 for kind in FAULT_KINDS}

    def decide(self, worker_id: int, now: float) -> Optional[FaultDecision]:
        """The fault (if any) to inject into this dispatch of ``worker_id``."""
        worker_id = int(worker_id)
        with self._lock:
            dispatch = self._dispatches.get(worker_id, 0)
            self._dispatches[worker_id] = dispatch + 1
            rng = self._rngs.get(worker_id)
            if rng is None:
                rng = np.random.default_rng([self.seed, worker_id])
                self._rngs[worker_id] = rng
            if worker_id in self._dead:
                # A corpse fails every dispatch, regardless of spec windows.
                self._record("die")
                return FaultDecision("die")
            for spec in self.specs:
                if not spec.applies_to(worker_id) or not spec.active_at(now):
                    continue
                if spec.flap_period and dispatch % spec.flap_period < spec.flap_down:
                    self._record("raise")
                    return FaultDecision("raise")
                draw = float(rng.random())
                if draw < spec.die_rate:
                    self._dead.add(worker_id)
                    self._record("die")
                    return FaultDecision("die")
                if draw < spec.die_rate + spec.fail_rate:
                    self._record("raise")
                    return FaultDecision("raise")
                if draw < spec.die_rate + spec.fail_rate + spec.hang_rate:
                    self._record("hang")
                    return FaultDecision("hang", seconds=spec.hang_seconds)
                if draw < spec.die_rate + spec.fail_rate + spec.hang_rate + spec.slow_rate:
                    self._record("slow")
                    return FaultDecision("slow", seconds=spec.slow_seconds)
                # kill draws last so adding kill_rate never perturbs which
                # dispatches an existing seeded plan fails with other kinds.
                if draw < (
                    spec.die_rate
                    + spec.fail_rate
                    + spec.hang_rate
                    + spec.slow_rate
                    + spec.kill_rate
                ):
                    self._dead.add(worker_id)
                    self._record("kill")
                    return FaultDecision("kill")
            return None

    def describe(self) -> str:
        parts = []
        for spec in self.specs:
            scope = "all replicas" if spec.workers is None else f"workers {list(spec.workers)}"
            window = "" if spec.until is None and spec.after == 0.0 else (
                f", window [{spec.after:g}, {'inf' if spec.until is None else f'{spec.until:g}'})"
            )
            flap = (
                f", flap {spec.flap_down}/{spec.flap_period}" if spec.flap_period else ""
            )
            die = f", die {spec.die_rate:.0%}" if spec.die_rate else ""
            kill = f", kill {spec.kill_rate:.0%}" if spec.kill_rate else ""
            parts.append(
                f"{scope}: raise {spec.fail_rate:.0%}, hang {spec.hang_rate:.0%}"
                f" ({spec.hang_seconds * 1e3:g} ms), slow {spec.slow_rate:.0%}"
                f" (+{spec.slow_seconds * 1e3:g} ms){die}{kill}{flap}{window}"
            )
        return f"FaultPlan(seed={self.seed}): " + "; ".join(parts)
