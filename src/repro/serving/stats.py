"""Latency / load / cache metrics of the serving engine, plus the perfmodel
bridge that prices a request in accelerator cycles per shard.

``ServerStats`` is an immutable snapshot assembled by
:meth:`repro.serving.InferenceServer.stats`; ``render()`` gives the text
surface printed by the ``serve-bench`` CLI command and saved by
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.datasets import DatasetStats
from ..graph.restriction import PlanCacheStats
from ..hardware.config import CirCoreConfig
from ..perfmodel.model import PerformanceEstimate, estimate_performance
from ..workloads.builder import build_workload
from .cache import CacheStats
from .shard import GraphShard

__all__ = ["WorkerLoad", "ServerStats", "estimate_shard_request_cycles"]


def _percentile(values: np.ndarray, q: float) -> float:
    return float(np.percentile(values, q)) if len(values) else float("nan")


@dataclass(frozen=True)
class WorkerLoad:
    """Work executed by one worker (one shard replica)."""

    worker_id: int
    shard_id: int
    batches: int
    nodes: int
    core_nodes: int
    halo_nodes: int
    peak_concurrency: int = 0    # max batches in flight on this worker at once
    health: str = "closed"       # circuit-breaker state at snapshot time
    failures: int = 0            # dispatch attempts that failed on this replica
    breaker_opens: int = 0       # times the replica's breaker tripped
    latency_ewma: Optional[float] = None  # smoothed dispatch latency (seconds)
    epoch: int = 0               # replica incarnation (bumped per supervisor rebuild)
    pid: Optional[int] = None    # worker process id (executor="process" only)
    heartbeat_age: Optional[float] = None  # seconds since last control-channel beat
    rss_bytes: Optional[int] = None        # worker-process resident set size


@dataclass(frozen=True)
class ServerStats:
    """Snapshot of a serving run: latency percentiles, cache, per-shard load."""

    mode: str
    completed_requests: int
    latencies: np.ndarray            # seconds, one entry per completed request
    batch_sizes: np.ndarray          # executed batch sizes, one per flush
    cache: CacheStats
    workers: Tuple[WorkerLoad, ...]
    size_flushes: int
    delay_flushes: int
    forced_flushes: int
    duration: float                  # clock time from first submit to last completion
    executor: str = "serial"         # which FlushExecutor served the run
    peak_concurrency: int = 0        # max flush tasks running simultaneously
    rejected_requests: int = 0       # turned away at admission (queue full)
    shed_requests: int = 0           # evicted from a full queue (shed_oldest)
    expired_requests: int = 0        # flushed after their deadline passed
    hot_path: str = "compiled"       # exact-mode implementation that served the run
    cache_policy: str = "lru"        # slab-cache retention policy
    #: wall-clock seconds per hot-path stage, summed over workers (exact mode)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: cross-shard halo tier counters (eligible boundary lookups only)
    halo: CacheStats = field(default_factory=CacheStats)
    halo_tier: bool = False          # was a shared HaloStore active for the run?
    #: restriction-plan cache counters, summed over workers
    plans: PlanCacheStats = field(default_factory=PlanCacheStats)
    failed_requests: int = 0         # retries exhausted / degraded misses
    retried_requests: int = 0        # request-attempts that were retried
    failovers: int = 0               # batches completed on a sibling after a failure
    degraded_requests: int = 0       # completed stale from the degraded path
    worker_failures: int = 0         # dispatch attempts that raised (real or injected)
    injected_faults: int = 0         # faults the FaultPlan actually fired
    block_waits: int = 0             # condition waits by blocked submitters
    block_self_flushes: int = 0      # blocked submitters that flushed for themselves
    #: per-class terminal ledger: {class: {status: count}} (empty = classless)
    class_requests: Dict[str, Dict[str, int]] = field(default_factory=dict)
    stolen_batches: int = 0          # batches flushed by work-stealing passes
    steal_rounds: int = 0            # rounds in which at least one steal landed
    ingress: str = "sync"            # arrival path ("sync" or "thread")
    work_stealing: bool = False      # was round-barrier stealing enabled?
    supervisor_restarts: int = 0     # replica rebuilds (auto + operator)
    supervisor_quarantines: int = 0  # replicas pulled from dispatch pending rebuild
    prewarmed_rows: int = 0          # cache rows pre-warmed from the halo tier on rebuild
    hedged_batches: int = 0          # hedged dispatches fired
    hedges_won: int = 0              # hedges that finished before their primary
    hedges_cancelled: int = 0        # losing attempts cancelled before completion
    retry_attempts: int = 0          # batch retries actually performed
    retry_budget_capacity: Optional[int] = None  # token-bucket capacity (None = unbudgeted)
    retry_budget_spent: int = 0      # tokens spent on retries
    retry_budget_exhausted: int = 0  # failed batches denied a retry (bucket empty)
    retry_budget_tokens: float = 0.0  # tokens left at snapshot time

    # -- accounting --------------------------------------------------------------

    @property
    def submitted_requests(self) -> int:
        """Every request that reached a terminal state (nothing is dropped)."""
        return (
            self.completed_requests
            + self.rejected_requests
            + self.shed_requests
            + self.expired_requests
            + self.failed_requests
        )

    # -- latency ---------------------------------------------------------------

    @property
    def p50_latency(self) -> float:
        return _percentile(self.latencies, 50.0)

    @property
    def p95_latency(self) -> float:
        return _percentile(self.latencies, 95.0)

    @property
    def p99_latency(self) -> float:
        return _percentile(self.latencies, 99.0)

    @property
    def p999_latency(self) -> float:
        return _percentile(self.latencies, 99.9)

    @property
    def mean_latency(self) -> float:
        return float(self.latencies.mean()) if len(self.latencies) else float("nan")

    @property
    def throughput(self) -> float:
        """Completed requests per clock second.

        Guarded denominators: a run that completed nothing has throughput
        0.0 (not a division error, not a misleading ``inf``); a run that
        completed work in zero clock time (ManualClock that never advanced)
        is genuinely instantaneous — ``inf``.
        """
        if self.duration > 0:
            return self.completed_requests / self.duration
        return float("inf") if self.completed_requests else 0.0

    @property
    def mean_batch_size(self) -> float:
        return float(self.batch_sizes.mean()) if len(self.batch_sizes) else float("nan")

    # -- cache / load ------------------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        return self.cache.hit_rate

    @property
    def halo_hit_rate(self) -> float:
        """Hit rate of the cross-shard halo tier over its eligible lookups."""
        return self.halo.hit_rate

    @property
    def plan_hit_rate(self) -> float:
        """Fraction of restriction plans served from (or patched off) the cache."""
        return self.plans.hit_rate

    @property
    def load_imbalance(self) -> float:
        """Max over mean nodes served per worker (1.0 = perfectly balanced)."""
        nodes = np.array([worker.nodes for worker in self.workers], dtype=np.float64)
        busy = nodes[nodes > 0]
        if len(busy) == 0:
            return float("nan")
        mean = nodes.mean()
        return float(nodes.max() / mean) if mean > 0 else float("nan")

    @property
    def stage_total(self) -> float:
        """Total seconds attributed to hot-path stages across all workers."""
        return float(sum(self.stage_seconds.values()))

    @staticmethod
    def _rate(numerator: int, denominator: int) -> str:
        """A percentage, or ``n/a`` when nothing was measured.

        A run in which every request failed or was shed makes zero lookups;
        rendering that as a 0.0% hit-rate would misread as "the cache was
        cold", so empty denominators render ``n/a`` instead.
        """
        if denominator <= 0:
            return "n/a"
        return f"{numerator / denominator * 100:.1f}%"

    @staticmethod
    def _ms(seconds: float) -> str:
        """Milliseconds, or ``n/a`` for the NaN of an empty latency sample."""
        if not np.isfinite(seconds):
            return "n/a"
        return f"{seconds * 1e3:.3f} ms"

    def render(self) -> str:
        if self.duration > 0 and np.isfinite(self.throughput):
            throughput = f"{self.throughput:.1f} req/s"
        elif self.completed_requests:
            throughput = "inf req/s (zero clock duration)"
        else:
            throughput = "n/a (nothing completed)"
        lines = [
            f"mode {self.mode} ({self.hot_path}, {self.cache_policy} cache): "
            f"{self.completed_requests} requests in "
            f"{len(self.batch_sizes)} batches (mean size "
            f"{'n/a' if not len(self.batch_sizes) else f'{self.mean_batch_size:.1f}'})",
            f"  executor {self.executor} (peak concurrency {self.peak_concurrency})",
            f"  latency p50 {self._ms(self.p50_latency)}   "
            f"p95 {self._ms(self.p95_latency)}   "
            f"p99 {self._ms(self.p99_latency)}   "
            f"p99.9 {self._ms(self.p999_latency)}   mean {self._ms(self.mean_latency)}",
            f"  throughput {throughput} over {self.duration * 1e3:.1f} ms",
            f"  flushes: {self.size_flushes} size, {self.delay_flushes} delay, "
            f"{self.forced_flushes} forced",
            f"  admission: {self.rejected_requests} rejected, {self.shed_requests} shed, "
            f"{self.expired_requests} expired, {self.failed_requests} failed "
            f"({self.submitted_requests} requests accounted for)",
            f"  embedding cache: {self.cache.hits} hits / {self.cache.lookups} lookups "
            f"({self._rate(self.cache.hits, self.cache.lookups)}), "
            f"{self.cache.evictions} evictions, "
            f"{self.cache.invalidations} invalidations",
        ]
        if (
            self.worker_failures
            or self.retried_requests
            or self.failovers
            or self.degraded_requests
            or self.injected_faults
        ):
            lines.append(
                f"  faults: {self.worker_failures} worker failures "
                f"({self.injected_faults} injected), {self.retried_requests} retried, "
                f"{self.failovers} failovers, {self.degraded_requests} served stale"
            )
        if self.supervisor_restarts or self.supervisor_quarantines:
            lines.append(
                f"  self-healing: {self.supervisor_restarts} replica rebuilds "
                f"({self.supervisor_quarantines} quarantined), "
                f"{self.prewarmed_rows} cache rows pre-warmed from the halo tier"
            )
        if self.hedged_batches:
            lines.append(
                f"  hedging: {self.hedged_batches} fired, {self.hedges_won} won "
                f"({self._rate(self.hedges_won, self.hedged_batches)}), "
                f"{self.hedges_cancelled} losers cancelled"
            )
        if self.retry_budget_capacity is not None:
            lines.append(
                f"  retry budget: {self.retry_budget_spent}/{self.retry_budget_capacity} "
                f"tokens spent ({self.retry_budget_tokens:.1f} left), "
                f"{self.retry_budget_exhausted} retries denied "
                f"({self._rate(self.retry_budget_exhausted, self.retry_attempts + self.retry_budget_exhausted)} of attempts)"
            )
        if self.block_waits or self.block_self_flushes:
            lines.append(
                f"  backpressure: {self.block_waits} waits, "
                f"{self.block_self_flushes} self-flushes by blocked submitters"
            )
        active_classes = {
            name: counts
            for name, counts in self.class_requests.items()
            if sum(counts.values())
        }
        if len(active_classes) > 1:
            for name, counts in active_classes.items():
                lines.append(
                    f"  class {name}: {counts.get('completed', 0)} completed, "
                    f"{counts.get('shed', 0)} shed, {counts.get('expired', 0)} expired, "
                    f"{counts.get('rejected', 0)} rejected, "
                    f"{counts.get('failed', 0)} failed"
                )
        if self.stolen_batches:
            lines.append(
                f"  work stealing: {self.stolen_batches} stolen batches "
                f"across {self.steal_rounds} rounds"
            )
        if self.halo_tier:
            lines.append(
                f"  halo tier: {self.halo.hits} hits / {self.halo.lookups} boundary lookups "
                f"({self._rate(self.halo.hits, self.halo.lookups)}), "
                f"{self.halo.insertions} published, "
                f"{self.halo.invalidations} invalidations"
                + (f", {self.halo.discarded} discarded" if self.halo.discarded else "")
            )
        if self.plans.lookups > 0:
            lines.append(
                f"  plan cache: {self.plans.exact_hits} exact + {self.plans.subset_hits} subset "
                f"+ {self.plans.superset_hits} superset hits / {self.plans.lookups} lookups "
                f"({self.plan_hit_rate * 100:.1f}%)"
            )
        if self.stage_total > 0:
            total = self.stage_total
            breakdown = "   ".join(
                f"{name} {seconds * 1e3:.2f} ms ({seconds / total * 100:.0f}%)"
                for name, seconds in self.stage_seconds.items()
                if seconds > 0
            )
            lines.append(f"  flush stages: {breakdown}")
        for worker in self.workers:
            health = ""
            if worker.health != "closed" or worker.failures or worker.breaker_opens:
                ewma = (
                    f", ewma {worker.latency_ewma * 1e3:.2f} ms"
                    if worker.latency_ewma is not None
                    else ""
                )
                health = (
                    f", {worker.health}: {worker.failures} failures, "
                    f"{worker.breaker_opens} opens{ewma}"
                )
            epoch = f", epoch {worker.epoch}" if worker.epoch else ""
            lines.append(
                f"  worker {worker.worker_id} (shard {worker.shard_id}): "
                f"{worker.nodes} nodes in {worker.batches} batches "
                f"[{worker.core_nodes} core + {worker.halo_nodes} halo, "
                f"peak {worker.peak_concurrency} in flight{health}{epoch}]"
            )
        if any(worker.pid is not None for worker in self.workers):
            lines.append("  worker processes:")
            lines.append("    worker     pid   epoch   heartbeat       rss")
            for worker in self.workers:
                if worker.pid is None:
                    continue
                beat = (
                    f"{worker.heartbeat_age * 1e3:.0f} ms ago"
                    if worker.heartbeat_age is not None
                    else "n/a"
                )
                rss = (
                    f"{worker.rss_bytes / (1024 * 1024):.1f} MiB"
                    if worker.rss_bytes is not None
                    else "n/a"
                )
                lines.append(
                    f"    {worker.worker_id:>6} {worker.pid:>7} {worker.epoch:>7} "
                    f"{beat:>11} {rss:>9}"
                )
        return "\n".join(lines)


def estimate_shard_request_cycles(
    model_name: str,
    shards: Sequence[GraphShard],
    num_classes: int,
    hidden_features: int = 512,
    num_layers: int = 2,
    sample_sizes: Sequence[int] = (25, 10),
    config: Optional[CirCoreConfig] = None,
    block_size: int = 128,
) -> List[PerformanceEstimate]:
    """Per-shard accelerator cost of serving one request batch (Eqs. 3–7).

    Each shard is priced as its own :class:`~repro.workloads.GNNWorkload`
    built from the shard's actual node/edge statistics, so the estimate
    reflects the partition's load balance: ``estimate.cycles_per_node`` is
    the accelerator cycles one core-node request costs on that shard.
    """
    if config is None:
        config = CirCoreConfig(
            fft_channels=16, ifft_channels=16, systolic_rows=4, systolic_cols=4,
            pe_parallelism=4, vpu_lanes=2, block_size=block_size,
        )
    estimates: List[PerformanceEstimate] = []
    for shard in shards:
        stats = DatasetStats(
            name=f"shard{shard.part_id}",
            num_nodes=max(shard.num_core, 1),
            num_edges=max(shard.graph.num_edges // 2, 1),
            num_features=shard.graph.num_features,
            num_classes=num_classes,
        )
        workload = build_workload(
            model_name,
            stats,
            hidden_features=hidden_features,
            num_layers=num_layers,
            sample_sizes=tuple(sample_sizes),
            num_classes=num_classes,
        )
        estimates.append(estimate_performance(workload, config, num_nodes=stats.num_nodes))
    return estimates
