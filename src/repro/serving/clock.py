"""Clock abstraction for the serving engine.

The micro-batcher's time-based flush policy and every latency measurement go
through a :class:`Clock`, so tests can drive the engine with a
:class:`ManualClock` and get bit-for-bit reproducible latencies and flush
decisions — no wall-clock dependence anywhere in the serving logic.
Production code uses :class:`SystemClock` (``time.perf_counter``).
"""

from __future__ import annotations

import threading
import time

__all__ = ["Clock", "SystemClock", "ManualClock"]


class Clock:
    """Monotonic time source (seconds as ``float``)."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        """Let ``seconds`` of clock time pass (retry backoff, injected hangs)."""
        raise NotImplementedError


class SystemClock(Clock):
    """Real wall-clock time via ``time.perf_counter``."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A simulated clock advanced explicitly by the caller.

    Used by the test-suite to make queueing delays and latency statistics
    deterministic: the clock only moves when :meth:`advance` (or ``tick``) is
    called, so a request's measured latency is exactly the simulated time the
    test chose to let pass.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        with self._lock:
            self._now += float(seconds)
            return self._now

    tick = advance

    def sleep(self, seconds: float) -> None:
        """Simulated sleep: advances the clock instead of blocking the thread.

        Retry backoff and injected hangs/slowdowns become pure clock
        arithmetic under tests — no wall time passes, so "hang for 50 ms"
        costs nothing but makes deadline expiry observable.
        """
        if seconds < 0:
            raise ValueError("a monotonic clock cannot move backwards")
        self.advance(seconds)
