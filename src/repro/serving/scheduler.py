"""The flush loop: decides *when* shards flush and dispatches the work.

Before this module existed the engine flushed due queues as a side effect of
``submit()``; the :class:`Scheduler` owns that loop instead.  Each call to
:meth:`poll` runs one *round*: collect the shards whose queues are due at the
current clock time, hand one flush task per shard to the
:class:`~repro.serving.executor.FlushExecutor`, and wait for all of them (a
barrier — no flush from round N+1 can overlap round N, which is what keeps
concurrent execution deterministic per shard and lets a ``ManualClock`` stand
still within a round).

``flush_on_submit`` preserves the old ergonomic default: the engine polls
after every ``submit()`` so size-triggered batches flush immediately.  Open-
loop benchmarks turn it off and drive :meth:`poll` themselves to let queues
actually build up (the admission-control scenarios).

Rounds are crash-safe: the engine's ``_flush`` isolates worker failures
(retry, failover, degraded serving — see :mod:`repro.serving.engine`), so a
raising replica fails only its own batch and the round's other shards
commit normally.  The executors still settle the whole round before
propagating an error, but with the fault-tolerant engine that path is a
backstop, not the contract.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from .batcher import MicroBatcher
from .clock import Clock
from .executor import FlushExecutor

__all__ = ["Scheduler", "DrainTimeout"]


class DrainTimeout(TimeoutError):
    """``drain(timeout=...)`` expired with requests still pending.

    Carries a ``snapshot`` dict (queue depths, in-flight flushes, terminal
    counts — filled in by the engine) so the caller can see exactly what was
    still wedged instead of a bare timeout.  The server remains usable: the
    pending requests stay queued and a later ``drain()`` can finish them.
    """

    def __init__(self, message: str, snapshot: Optional[dict] = None) -> None:
        super().__init__(message)
        self.snapshot = dict(snapshot or {})


class Scheduler:
    """Drives flush rounds over a :class:`MicroBatcher` via a pluggable executor.

    With ``work_stealing`` on, a round's executor workers that finish their
    own shard's flush pull further shard ids from ``steal_source`` (the
    engine's "hottest due queue" pick) and flush those too before the
    barrier settles; after the steal pass the round re-checks deadline
    expiry via ``expire_overdue`` so a stolen round can never hand the next
    round a request that already expired (the exactly-one-terminal-state
    ledger holds with stealing on).
    """

    def __init__(
        self,
        batcher: MicroBatcher,
        clock: Clock,
        flush: Callable[[int, bool], int],
        executor: FlushExecutor,
        flush_on_submit: bool = True,
        work_stealing: bool = False,
        steal_source: Optional[Callable[[], Optional[int]]] = None,
        expire_overdue: Optional[Callable[[], int]] = None,
        supervise: Optional[Callable[[], int]] = None,
    ) -> None:
        self.batcher = batcher
        self.clock = clock
        self._flush = flush
        self.executor = executor
        self.flush_on_submit = bool(flush_on_submit)
        self.work_stealing = bool(work_stealing) and steal_source is not None
        self._steal_source = steal_source
        self._expire_overdue = expire_overdue
        self._supervise = supervise
        self.rounds = 0
        self.stolen_batches = 0   # batches flushed by steal passes
        self.steal_rounds = 0     # rounds in which at least one steal landed
        self._steal_lock = threading.Lock()
        # Optional registry counters (bound by the engine).
        self._rounds_counter = None
        self._stolen_counter = None

    def bind_metrics(self, rounds_counter, stolen_counter=None) -> None:
        self._rounds_counter = rounds_counter
        self._stolen_counter = stolen_counter

    # -- the loop ---------------------------------------------------------------

    def poll(self) -> int:
        """Run one round: flush every shard whose queue is due right now."""
        due = self.batcher.due_shards(self.clock.now())
        return self._run_round(due, forced=False)

    def drain(self, deadline: Optional[float] = None) -> int:
        """Force-flush rounds until no request is pending (stream shutdown).

        ``deadline`` is an absolute ``time.monotonic()`` stamp: a pathological
        fault plan (every replica hanging, retries re-queueing work) can
        otherwise spin this loop forever.  Past the deadline a
        :class:`DrainTimeout` is raised with the work left standing — the
        engine enriches it with a full ledger snapshot.
        """
        flushed = 0
        while self.batcher.pending:
            if deadline is not None and time.monotonic() >= deadline:
                raise DrainTimeout(
                    f"drain deadline passed with {self.batcher.pending} request(s) pending"
                )
            flushed += self._run_round(self.batcher.nonempty_shards(), forced=True)
        return flushed

    def on_submit(self) -> int:
        """Hook called by the engine after each enqueue."""
        return self.poll() if self.flush_on_submit else 0

    def _run_round(self, shard_ids: List[int], forced: bool) -> int:
        if not shard_ids:
            return 0
        self.rounds += 1
        if self._rounds_counter is not None:
            self._rounds_counter.inc()

        def task(shard_id: int) -> int:
            return self._flush(shard_id, forced)

        if not self.work_stealing:
            flushed = sum(self.executor.map(task, shard_ids))
            if self._supervise is not None:
                # Supervision ticks at round barriers: the round's flush tasks
                # have all settled, so a replica rebuilt here can never have a
                # same-round attempt racing its swap (off-round attempts hit
                # the retired corpse and fail into the retry path).
                self._supervise()
            return flushed

        stolen_this_round = [0]

        def stolen_task(shard_id: int) -> int:
            flushed = self._flush(shard_id, forced)
            if flushed:
                with self._steal_lock:
                    stolen_this_round[0] += 1
                    self.stolen_batches += 1
                if self._stolen_counter is not None:
                    self._stolen_counter.inc()
            return flushed

        flushed = sum(
            self.executor.map_stealing(task, shard_ids, self._steal_source, stolen_task)
        )
        if stolen_this_round[0]:
            self.steal_rounds += 1
        if self._expire_overdue is not None:
            # The fix for stealing x deadlines: a steal pass burns clock time
            # after the due-shard set was computed, so requests still queued
            # behind the barrier may have expired meanwhile.  Re-checking
            # here keeps expiry decisions at round granularity — the next
            # round can never pop an already-expired request as live.
            self._expire_overdue()
        if self._supervise is not None:
            self._supervise()
        return flushed

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        self.executor.shutdown()
