"""The flush loop: decides *when* shards flush and dispatches the work.

Before this module existed the engine flushed due queues as a side effect of
``submit()``; the :class:`Scheduler` owns that loop instead.  Each call to
:meth:`poll` runs one *round*: collect the shards whose queues are due at the
current clock time, hand one flush task per shard to the
:class:`~repro.serving.executor.FlushExecutor`, and wait for all of them (a
barrier — no flush from round N+1 can overlap round N, which is what keeps
concurrent execution deterministic per shard and lets a ``ManualClock`` stand
still within a round).

``flush_on_submit`` preserves the old ergonomic default: the engine polls
after every ``submit()`` so size-triggered batches flush immediately.  Open-
loop benchmarks turn it off and drive :meth:`poll` themselves to let queues
actually build up (the admission-control scenarios).

Rounds are crash-safe: the engine's ``_flush`` isolates worker failures
(retry, failover, degraded serving — see :mod:`repro.serving.engine`), so a
raising replica fails only its own batch and the round's other shards
commit normally.  The executors still settle the whole round before
propagating an error, but with the fault-tolerant engine that path is a
backstop, not the contract.
"""

from __future__ import annotations

from typing import Callable, List

from .batcher import MicroBatcher
from .clock import Clock
from .executor import FlushExecutor

__all__ = ["Scheduler"]


class Scheduler:
    """Drives flush rounds over a :class:`MicroBatcher` via a pluggable executor."""

    def __init__(
        self,
        batcher: MicroBatcher,
        clock: Clock,
        flush: Callable[[int, bool], int],
        executor: FlushExecutor,
        flush_on_submit: bool = True,
    ) -> None:
        self.batcher = batcher
        self.clock = clock
        self._flush = flush
        self.executor = executor
        self.flush_on_submit = bool(flush_on_submit)
        self.rounds = 0
        # Optional registry counter mirroring `rounds` (bound by the engine).
        self._rounds_counter = None

    def bind_metrics(self, rounds_counter) -> None:
        self._rounds_counter = rounds_counter

    # -- the loop ---------------------------------------------------------------

    def poll(self) -> int:
        """Run one round: flush every shard whose queue is due right now."""
        due = self.batcher.due_shards(self.clock.now())
        return self._run_round(due, forced=False)

    def drain(self) -> int:
        """Force-flush rounds until no request is pending (stream shutdown)."""
        flushed = 0
        while self.batcher.pending:
            flushed += self._run_round(self.batcher.nonempty_shards(), forced=True)
        return flushed

    def on_submit(self) -> int:
        """Hook called by the engine after each enqueue."""
        return self.poll() if self.flush_on_submit else 0

    def _run_round(self, shard_ids: List[int], forced: bool) -> int:
        if not shard_ids:
            return 0
        self.rounds += 1
        if self._rounds_counter is not None:
            self._rounds_counter.inc()
        return sum(self.executor.map(lambda shard_id: self._flush(shard_id, forced), shard_ids))

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        self.executor.shutdown()
