"""Loss functions for node-classification training."""

from __future__ import annotations

import numpy as np

from ..tensor import functional as F
from ..tensor.tensor import Tensor
from .module import Module

__all__ = ["CrossEntropyLoss", "MSELoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class targets."""

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets)


class MSELoss(Module):
    """Mean squared error (used by regression-style smoke tests)."""

    def forward(self, predictions: Tensor, targets) -> Tensor:
        targets = targets if isinstance(targets, Tensor) else Tensor(np.asarray(targets))
        diff = predictions - targets
        return (diff * diff).mean()
