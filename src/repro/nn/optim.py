"""Gradient-descent optimisers for the NumPy substrate."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser: owns a parameter list and clears gradients."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update
            param.bump_version()


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015) with optional weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            param.bump_version()
