"""Dense and block-circulant fully-connected layers.

``Linear`` is the uncompressed baseline (the ``n = 1`` rows of Table III);
``BlockCirculantLinear`` is the compressed layer at the heart of BlockGNN.
Both compute ``y = x @ W^T + b`` so they are drop-in replacements for one
another, which is what allows :mod:`repro.compression.compress` to convert a
trained dense model layer-by-layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compression.circulant import (
    BlockCirculantSpec,
    expand_block_circulant,
    project_to_block_circulant,
)
from ..compression.spectral import circulant_linear, spectral_weights
from ..tensor.tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "BlockCirculantLinear"]


class Linear(Module):
    """Fully-connected layer ``y = x @ W^T + b`` with a dense weight matrix."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        generator = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.glorot_uniform((out_features, in_features), in_features, out_features, generator),
            name="weight",
        )
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def weight_matrix(self) -> np.ndarray:
        """Dense weight matrix (``(out_features, in_features)``)."""
        return self.weight.data

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class BlockCirculantLinear(Module):
    """Fully-connected layer whose weight matrix is block-circulant.

    The weight is stored as the ``(p, q, n)`` defining vectors and applied via
    the FFT kernel of Algorithm 1 (:func:`repro.compression.spectral.circulant_linear`),
    so the layer's forward complexity is ``O(N M log(n) / n)`` instead of
    ``O(N M)`` and its parameter count is ``N M / n``.

    Two execution optimisations make this the fast path of the repository:

    * **Cached spectral weights** — the weights are static between optimiser
      steps, so ``FFT(W)`` is computed once per weight :attr:`~repro.nn.Parameter.version`
      and reused by every forward *and* backward call (the software analogue
      of the accelerator's Weight Buffer; see :meth:`spectral`).
    * **rFFT kernels** — by default all transforms are real-input rFFTs over
      ``n // 2 + 1`` bins (Section V of the paper); ``use_rfft=False``
      restores the complex-FFT datapath.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        block_size: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        use_rfft: bool = True,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.spec = BlockCirculantSpec(out_features, in_features, block_size)
        self.in_features = in_features
        self.out_features = out_features
        self.block_size = block_size
        self.use_rfft = use_rfft
        std = float(np.sqrt(2.0 / (in_features + out_features)))
        self.weight = Parameter(
            generator.normal(0.0, std, size=self.spec.weight_shape()), name="circulant_weight"
        )
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None
        self._spectral_cache: Optional[tuple] = None

    def spectral(self) -> np.ndarray:
        """The spectral weights ``FFT(W)``, cached per weight version.

        The cache key is ``(weight identity, weight.version, use_rfft)`` —
        identity so torch-style parameter replacement (``layer.weight =
        Parameter(...)``, whose fresh version counter restarts at 0) cannot
        serve the old parameter's spectra.  Any code path that mutates
        ``weight.data`` in place must call ``weight.bump_version()`` (the
        optimisers, ``load_state_dict`` and the quantisation utilities
        already do).  The returned array is shared (the accelerator's Weight
        Buffer holds the same object) and therefore frozen read-only —
        ``.copy()`` it before editing.
        """
        weight = self.weight
        cache = self._spectral_cache
        if (
            cache is None
            or cache[0] is not weight
            or cache[1] != weight.version
            or cache[2] != self.use_rfft
        ):
            w_hat = spectral_weights(weight.data, use_rfft=self.use_rfft)
            w_hat.flags.writeable = False
            cache = (weight, weight.version, self.use_rfft, w_hat)
            self._spectral_cache = cache
        return cache[3]

    def invalidate_spectral_cache(self) -> None:
        """Drop the cached ``FFT(W)`` (for callers that mutated ``weight.data``
        without bumping the parameter version)."""
        self._spectral_cache = None

    def forward(self, x: Tensor) -> Tensor:
        out = circulant_linear(
            x, self.weight, self.spec, use_rfft=self.use_rfft, spectral=self.spectral()
        )
        if self.bias is not None:
            out = out + self.bias
        return out

    def weight_matrix(self) -> np.ndarray:
        """Expand the defining vectors into the equivalent dense matrix."""
        return expand_block_circulant(self.weight.data, self.spec)

    @classmethod
    def from_dense(
        cls,
        dense: Linear,
        block_size: int,
    ) -> "BlockCirculantLinear":
        """Convert a trained dense layer by projecting its weight matrix.

        The projection averages each circulant diagonal of every block, which
        is the least-squares-optimal block-circulant approximation; the bias
        is copied unchanged.
        """
        layer = cls(
            dense.in_features,
            dense.out_features,
            block_size,
            bias=dense.bias is not None,
        )
        weights, _ = project_to_block_circulant(dense.weight.data, block_size)
        layer.weight.data[...] = weights
        layer.weight.bump_version()
        if dense.bias is not None and layer.bias is not None:
            layer.bias.data[...] = dense.bias.data
            layer.bias.bump_version()
        return layer

    def compression_ratio(self) -> float:
        """Parameter-count reduction relative to the equivalent dense layer."""
        return self.spec.dense_parameters / self.spec.circulant_parameters

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BlockCirculantLinear(in={self.in_features}, out={self.out_features}, "
            f"n={self.block_size}, bias={self.bias is not None})"
        )
