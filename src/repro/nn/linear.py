"""Dense and block-circulant fully-connected layers.

``Linear`` is the uncompressed baseline (the ``n = 1`` rows of Table III);
``BlockCirculantLinear`` is the compressed layer at the heart of BlockGNN.
Both compute ``y = x @ W^T + b`` so they are drop-in replacements for one
another, which is what allows :mod:`repro.compression.compress` to convert a
trained dense model layer-by-layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compression.circulant import (
    BlockCirculantSpec,
    expand_block_circulant,
    project_to_block_circulant,
)
from ..compression.spectral import circulant_linear
from ..tensor.tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "BlockCirculantLinear"]


class Linear(Module):
    """Fully-connected layer ``y = x @ W^T + b`` with a dense weight matrix."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        generator = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.glorot_uniform((out_features, in_features), in_features, out_features, generator),
            name="weight",
        )
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def weight_matrix(self) -> np.ndarray:
        """Dense weight matrix (``(out_features, in_features)``)."""
        return self.weight.data

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class BlockCirculantLinear(Module):
    """Fully-connected layer whose weight matrix is block-circulant.

    The weight is stored as the ``(p, q, n)`` defining vectors and applied via
    the FFT kernel of Algorithm 1 (:func:`repro.compression.spectral.circulant_linear`),
    so the layer's forward complexity is ``O(N M log(n) / n)`` instead of
    ``O(N M)`` and its parameter count is ``N M / n``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        block_size: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        generator = rng if rng is not None else np.random.default_rng()
        self.spec = BlockCirculantSpec(out_features, in_features, block_size)
        self.in_features = in_features
        self.out_features = out_features
        self.block_size = block_size
        std = float(np.sqrt(2.0 / (in_features + out_features)))
        self.weight = Parameter(
            generator.normal(0.0, std, size=self.spec.weight_shape()), name="circulant_weight"
        )
        self.bias = Parameter(init.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = circulant_linear(x, self.weight, self.spec)
        if self.bias is not None:
            out = out + self.bias
        return out

    def weight_matrix(self) -> np.ndarray:
        """Expand the defining vectors into the equivalent dense matrix."""
        return expand_block_circulant(self.weight.data, self.spec)

    @classmethod
    def from_dense(
        cls,
        dense: Linear,
        block_size: int,
    ) -> "BlockCirculantLinear":
        """Convert a trained dense layer by projecting its weight matrix.

        The projection averages each circulant diagonal of every block, which
        is the least-squares-optimal block-circulant approximation; the bias
        is copied unchanged.
        """
        layer = cls(
            dense.in_features,
            dense.out_features,
            block_size,
            bias=dense.bias is not None,
        )
        weights, _ = project_to_block_circulant(dense.weight.data, block_size)
        layer.weight.data[...] = weights
        if dense.bias is not None and layer.bias is not None:
            layer.bias.data[...] = dense.bias.data
        return layer

    def compression_ratio(self) -> float:
        """Parameter-count reduction relative to the equivalent dense layer."""
        return self.spec.dense_parameters / self.spec.circulant_parameters

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"BlockCirculantLinear(in={self.in_features}, out={self.out_features}, "
            f"n={self.block_size}, bias={self.bias is not None})"
        )
