"""Module / Parameter abstractions for the NumPy neural-network substrate."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a learnable model parameter.

    Parameters carry a monotonically increasing ``version`` counter that is
    bumped whenever their values change in place (optimiser steps,
    ``load_state_dict``, quantisation, ...).  Layers that derive expensive
    state from a parameter — e.g. the spectral weights ``FFT(W)`` of
    :class:`repro.nn.BlockCirculantLinear` — key their caches on this counter
    so the derived state is recomputed exactly once per weight update.
    """

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)
        self.version: int = 0

    def bump_version(self) -> None:
        """Record an in-place mutation of :attr:`data`.

        Every code path that writes to ``param.data`` without replacing the
        parameter object must call this so version-keyed caches invalidate.
        """
        self.version += 1


class Module:
    """Base class for all layers and models.

    Mirrors the familiar torch-style interface: sub-modules and parameters
    assigned as attributes are discovered automatically, ``parameters()``
    iterates them recursively, and ``train()`` / ``eval()`` toggle behaviours
    such as dropout.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # -- attribute management --------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ---------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def children(self) -> List["Module"]:
        return list(self._modules.values())

    # -- training state -----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- (de)serialisation ----------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat name -> array mapping of all parameters (copies)."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a mapping produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, values in state.items():
            if own[name].data.shape != np.asarray(values).shape:
                raise ValueError(
                    f"shape mismatch for '{name}': {own[name].data.shape} vs {np.asarray(values).shape}"
                )
            own[name].data[...] = values
            own[name].bump_version()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the module tree."""
        return int(sum(param.size for param in self.parameters()))

    def weight_signature(self) -> Tuple[int, ...]:
        """The tuple of all parameter ``version`` counters, in traversal order.

        Any in-place weight mutation that goes through :meth:`Parameter.
        bump_version` (optimiser steps, ``load_state_dict``, quantisation)
        changes the signature, so caches of *derived* state — spectral weights
        inside a layer, or the serving engine's per-node embedding cache —
        can key on it to detect staleness in O(num parameters) without
        hashing any array data.
        """
        return tuple(param.version for param in self.parameters())

    # -- forward ------------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """A container that applies its children in order.

    Children are stored as ``layer_<i>`` attributes (and hence in
    ``_modules``) rather than in a plain list, so that layer replacement —
    e.g. :func:`repro.compression.compress_module` swapping a dense layer for
    a block-circulant one — is picked up by :meth:`forward` automatically.
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._num_layers = len(layers)
        for index, layer in enumerate(layers):
            setattr(self, f"layer_{index}", layer)

    @property
    def layers(self) -> List[Module]:
        return [getattr(self, f"layer_{index}") for index in range(self._num_layers)]

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return self._num_layers
