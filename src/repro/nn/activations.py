"""Activation-function layers used by the four GNN variants.

GCN / GS-Pool / G-GCN use ReLU combinations, GAT uses ELU outputs and
LeakyReLU attention logits, and G-GCN's edge gates use a Sigmoid (Table I).
"""

from __future__ import annotations

from ..tensor.tensor import Tensor
from .module import Module

__all__ = ["ReLU", "LeakyReLU", "ELU", "Sigmoid", "Tanh", "Identity"]


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope (GAT uses 0.2)."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class ELU(Module):
    """Exponential linear unit (GAT's combination non-linearity)."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)


class Sigmoid(Module):
    """Logistic sigmoid (G-GCN's edge gates)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    """No-op layer, useful as a placeholder."""

    def forward(self, x: Tensor) -> Tensor:
        return x
