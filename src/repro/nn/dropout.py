"""Dropout layer with a module-owned random generator for reproducibility."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import functional as F
from ..tensor.tensor import Tensor
from .module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, seed: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, rng=self.rng, training=self.training)
