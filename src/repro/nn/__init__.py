"""Neural-network layer library (dense + block-circulant) for BlockGNN."""

from .activations import ELU, Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from .dropout import Dropout
from .linear import BlockCirculantLinear, Linear
from .losses import CrossEntropyLoss, MSELoss
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, Optimizer

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "BlockCirculantLinear",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "Optimizer",
    "SGD",
    "Adam",
]
