"""Weight initialisation schemes shared by the dense and circulant layers."""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "glorot_normal", "kaiming_uniform", "zeros"]


def glorot_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a tensor of ``shape``."""
    limit = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation for a tensor of ``shape``."""
    std = float(np.sqrt(2.0 / (fan_in + fan_out)))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation (for ReLU networks)."""
    limit = float(np.sqrt(6.0 / fan_in))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)
