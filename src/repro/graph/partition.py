"""Graph partitioning.

Section IV-C of the paper notes that the Reddit graph exceeds the ZC706's
DRAM capacity and is therefore split into two sub-graphs for evaluation.
This module provides the partitioner used to reproduce that setup: a simple
BFS-grown balanced partition (plus a hash fallback) that returns induced
subgraphs whose union covers every node exactly once.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from .graph import Graph

__all__ = ["partition_nodes", "partition_graph"]


def partition_nodes(graph: Graph, num_parts: int, method: str = "bfs", seed: Optional[int] = None) -> List[np.ndarray]:
    """Assign every node to one of ``num_parts`` balanced partitions.

    ``method="bfs"`` grows each part from a random seed along edges, which
    keeps most edges inside a part (what a locality-aware DRAM partition would
    do); ``method="hash"`` assigns nodes round-robin, the degenerate baseline.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if num_parts == 1:
        return [np.arange(graph.num_nodes)]
    if method == "hash":
        assignment = np.arange(graph.num_nodes) % num_parts
    elif method == "bfs":
        assignment = _bfs_partition(graph, num_parts, seed)
    else:
        raise ValueError(f"unknown partition method '{method}'")
    return [np.where(assignment == part)[0] for part in range(num_parts)]


def _bfs_partition(graph: Graph, num_parts: int, seed: Optional[int]) -> np.ndarray:
    rng = np.random.default_rng(seed)
    target = -(-graph.num_nodes // num_parts)
    assignment = np.full(graph.num_nodes, -1, dtype=np.int64)
    order = rng.permutation(graph.num_nodes)
    cursor = 0
    for part in range(num_parts):
        filled = 0
        queue: deque = deque()
        # The part keeps growing while it is under target and there is anything
        # left to grow from: a non-empty BFS frontier, or an unassigned node to
        # seed a new frontier (cursor can never overrun the order array).
        while filled < target and (queue or cursor < graph.num_nodes):
            if not queue:
                # Find the next unassigned node to seed a new BFS frontier.
                while cursor < graph.num_nodes and assignment[order[cursor]] != -1:
                    cursor += 1
                if cursor >= graph.num_nodes:
                    break
                queue.append(order[cursor])
            node = queue.popleft()
            if assignment[node] != -1:
                continue
            assignment[node] = part
            filled += 1
            for neighbor in graph.neighbors(node):
                if assignment[neighbor] == -1:
                    queue.append(neighbor)
    # Any stragglers (possible when the last part fills early) go to the last part.
    assignment[assignment == -1] = num_parts - 1
    return assignment


def partition_graph(graph: Graph, num_parts: int, method: str = "bfs", seed: Optional[int] = None) -> List[Graph]:
    """Split ``graph`` into ``num_parts`` induced subgraphs (see Section IV-C)."""
    parts = partition_nodes(graph, num_parts, method=method, seed=seed)
    return [
        graph.subgraph(nodes, name=f"{graph.name}-part{index}")
        for index, nodes in enumerate(parts)
    ]
