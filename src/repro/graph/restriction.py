"""Row-restricted views of a frozen graph's propagation structure.

The serving hot path answers "recompute layer ``k`` for these *miss* nodes"
many thousands of times per second.  Re-materialising an induced subgraph per
flush (``graph.subgraph`` + fresh operator normalisation) pays CSR slicing,
feature copies and two sparse matmuls of pure overhead before any model work
runs.  A :class:`Restriction` instead *slices rows* out of the frozen graph's
CSR structure once per flush and remaps the column ids into the batch-local
index space — the "compile the aggregation operator once, reuse sliced views"
strategy of Alves et al. (PAPERS.md).

Consecutive flushes repeat themselves: a hot request mix produces miss sets
that are identical to, or overlap heavily with, recent ones.  A
:class:`PlanCache` therefore memoises built plans keyed on the miss-set
signature, and *patches* a cached plan instead of rebuilding when the new
miss set is a subset (:meth:`Restriction.restrict_to` — a pure row slice, no
graph access) or a superset (build a delta plan for the few new rows and
merge it with the cached one) of a recently cached plan.

Exactness: a restriction is only a valid stand-in for full-graph inference
when every neighbour of every requested row is present in ``cols``.  The
serving recursion guarantees that by construction (layer ``k``'s miss set is
expanded by exactly one hop to form layer ``k-1``'s needed set), and
:func:`_remap_columns` verifies it, so a violation raises instead of silently
corrupting a prediction.  Derived plans inherit the guarantee: a subset slice
keeps the parent's column set (a superset of the minimal one — extra columns
cost a few extra exact rows one layer down, never correctness), and a merged
plan's column set is the union of its parts'.

All node ids here are ids *of the frozen graph* (shard-local ids when the
graph is a shard's induced subgraph); translating global ids is the caller's
job.  Row sets are assumed sorted and duplicate-free, which is what the
serving recursion produces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["Restriction", "PlanCache", "PlanCacheStats", "slice_csr_rows"]


def _row_slices(
    indptr: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(new_indptr, edge_index)`` selecting the CSR entries of ``rows``.

    ``edge_index`` gathers the selected entries out of the parent ``data`` /
    ``indices`` arrays in row order; ``new_indptr`` delimits them per row.
    One vectorised pass, no Python-level loop over rows.
    """
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    new_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])
    total = int(new_indptr[-1])
    edge_index = np.repeat(starts - new_indptr[:-1], lengths) + np.arange(total, dtype=np.int64)
    return new_indptr, edge_index


def _interleave_rows(
    indptr_a: np.ndarray, indptr_b: np.ndarray, from_a: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merged CSR layout of two row-disjoint slices.

    ``from_a`` marks, per merged row in order, whether it comes from slice
    ``a`` (the i-th marked row is ``a``'s row i — both sides sorted).  Returns
    ``(indptr, edge_index)`` where ``edge_index`` gathers each merged row's
    segment out of the concatenation ``edges_a ++ edges_b``, preserving the
    per-row edge order both sides inherited from the parent graph.
    """
    lengths = np.empty(len(from_a), dtype=np.int64)
    lengths[from_a] = np.diff(indptr_a)
    lengths[~from_a] = np.diff(indptr_b)
    indptr = np.zeros(len(from_a) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    starts = np.empty(len(from_a), dtype=np.int64)
    starts[from_a] = indptr_a[:-1]
    starts[~from_a] = indptr_b[:-1] + indptr_a[-1]
    total = int(indptr[-1])
    edge_index = np.repeat(starts - indptr[:-1], lengths) + np.arange(total, dtype=np.int64)
    return indptr, edge_index


def _remap_columns(cols: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Positions of ``values`` inside the sorted id set ``cols`` (checked)."""
    positions = np.searchsorted(cols, values)
    if len(values):
        clipped = np.minimum(positions, len(cols) - 1)
        missing = cols[clipped] != values
        if np.any(missing):
            raise ValueError(
                f"restriction columns are missing neighbours "
                f"{np.unique(values[missing]).tolist()[:8]}..."
            )
    return positions


def _positions_if_contained(container: np.ndarray, values: np.ndarray) -> Optional[np.ndarray]:
    """Positions of ``values`` in sorted ``container``, or None if any absent."""
    positions = np.searchsorted(container, values)
    if len(values) == 0:
        return positions
    if positions[-1] >= len(container):  # sorted values: only the tail can overflow
        return None
    if not np.array_equal(container[positions], values):
        return None
    return positions


def slice_csr_rows(matrix: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray) -> sp.csr_matrix:
    """``matrix[rows][:, cols]`` assuming every selected entry's column ∈ ``cols``.

    Unlike scipy's general two-stage fancy indexing this never touches rows
    outside ``rows`` and performs no column search beyond one
    ``np.searchsorted`` — the restriction invariant (all neighbours present)
    turns submatrix extraction into a pure gather.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    indptr, edge_index = _row_slices(np.asarray(matrix.indptr, dtype=np.int64), rows)
    positions = _remap_columns(cols, matrix.indices[edge_index])
    return sp.csr_matrix(
        (matrix.data[edge_index], positions, indptr), shape=(len(rows), len(cols))
    )


def _slice_operator_rows(matrix: sp.csr_matrix, positions: np.ndarray) -> sp.csr_matrix:
    """Row slice of an already-remapped operator (columns untouched)."""
    indptr, edge_index = _row_slices(np.asarray(matrix.indptr, dtype=np.int64), positions)
    return sp.csr_matrix(
        (matrix.data[edge_index], matrix.indices[edge_index], indptr),
        shape=(len(positions), matrix.shape[1]),
    )


class Restriction:
    """The receptive-field slice one micro-batch needs from a frozen graph.

    Built from the *miss rows* of one layer: ``cols`` is the sorted union of
    the rows and their full (true, unsampled) neighbourhood, i.e. exactly the
    node set whose previous-layer representations the layer consumes.  The
    sliced CSR structure and any sliced propagation operators are memoised on
    the instance, so a layer's aggregation and a later bookkeeping step share
    one gather.

    Two degenerate shapes short-circuit instead of slicing:

    * an **empty** row set builds nothing and :meth:`operator` returns an
      empty matrix without ever touching (or normalising) a graph operator;
    * the **full** row set (every node of the graph) aliases the graph's own
      CSR arrays and :meth:`operator` returns the memoised full-graph
      operator as-is — no slice, no column remap.

    Attributes
    ----------
    rows:
        Sorted unique node ids whose outputs are requested.
    cols:
        Sorted node ids the computation reads (``rows`` ∪ neighbours; for
        derived subset plans, the parent's possibly-larger column set).
    indptr, col_positions:
        CSR of the rows' neighbour lists with neighbours given as positions
        into ``cols`` (edge order identical to the parent graph's, which is
        what keeps segment reductions bitwise-equal to full-graph inference).
    row_positions:
        Each row's own position inside ``cols``.
    """

    def __init__(self, graph: Graph, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        self.graph = graph
        self.rows = rows
        self._operators: dict = {}
        self._edge_rows: Optional[np.ndarray] = None
        self._op_source: Optional[tuple] = None
        num_nodes = graph.num_nodes
        self._full = len(rows) == num_nodes and (
            num_nodes == 0 or bool(np.array_equal(rows, np.arange(num_nodes, dtype=np.int64)))
        )
        if self._full:
            # Full-shard miss set: the restriction *is* the graph — alias its
            # CSR arrays (positions into cols == node ids) and skip the
            # union/searchsorted entirely.
            self.indptr = graph.indptr
            self._edge_index: Optional[np.ndarray] = None
            self.cols = rows
            self.col_positions = graph.indices
            self.row_positions = rows
        else:
            self.indptr, self._edge_index = _row_slices(graph.indptr, rows)
            neighbors = graph.indices[self._edge_index]
            self.cols = np.union1d(rows, neighbors)
            self.col_positions = _remap_columns(self.cols, neighbors)
            self.row_positions = _remap_columns(self.cols, rows)

    @classmethod
    def _merged(
        cls, base: "Restriction", delta: "Restriction", rows: np.ndarray, from_base: np.ndarray
    ) -> "Restriction":
        """Patch plan: ``base`` (cached) extended by the row-disjoint ``delta``.

        Structure is merged eagerly (one interleave over the two edge arrays,
        column maps of size ``|cols|`` instead of a searchsorted over every
        edge); operators merge lazily from the parts' operators, so the
        frozen-graph normalisation is never re-sliced for the cached rows.
        """
        merged = object.__new__(cls)
        merged.graph = base.graph
        merged.rows = rows
        merged._operators = {}
        merged._edge_rows = None
        merged._edge_index = None
        merged._full = False
        cols = np.union1d(base.cols, delta.cols)
        map_base = np.searchsorted(cols, base.cols)
        map_delta = np.searchsorted(cols, delta.cols)
        indptr, edge_index = _interleave_rows(base.indptr, delta.indptr, from_base)
        merged.indptr = indptr
        merged.col_positions = np.concatenate(
            [map_base[base.col_positions], map_delta[delta.col_positions]]
        )[edge_index]
        merged.cols = cols
        merged.row_positions = np.searchsorted(cols, rows)
        merged._op_source = ("merge", base, delta, from_base, map_base, map_delta)
        return merged

    def restrict_to(self, positions: np.ndarray) -> "Restriction":
        """Derived plan for a subset of this plan's rows, sharing its columns.

        ``positions`` indexes the requested rows inside :attr:`rows`.  A pure
        row slice: no graph access, no column union, no per-edge searchsorted
        — and :meth:`operator` slices this plan's memoised operators instead
        of the graph's.  The derived plan keeps this plan's ``cols`` (a
        superset of its minimal column set); exactness is unaffected, the
        caller merely reads/computes a few extra exact rows one layer down.
        """
        positions = np.asarray(positions, dtype=np.int64)
        derived = object.__new__(Restriction)
        derived.graph = self.graph
        derived.rows = self.rows[positions]
        indptr, edge_index = _row_slices(self.indptr, positions)
        derived.indptr = indptr
        derived.cols = self.cols
        derived.col_positions = self.col_positions[edge_index]
        derived.row_positions = self.row_positions[positions]
        derived._operators = {}
        derived._edge_rows = None
        derived._edge_index = None
        derived._full = False
        derived._op_source = ("slice", self, positions)
        return derived

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_cols(self) -> int:
        return len(self.cols)

    @property
    def num_edges(self) -> int:
        return len(self.col_positions)

    def row_degrees(self) -> np.ndarray:
        """True (full-graph) degree of every requested row."""
        return np.diff(self.indptr)

    def edge_rows(self) -> np.ndarray:
        """Row ordinal (0..num_rows-1) of every sliced edge, in edge order.

        The restricted counterpart of :func:`repro.models.base.edge_destinations`.
        """
        if self._edge_rows is None:
            self._edge_rows = np.repeat(
                np.arange(self.num_rows, dtype=np.int64), self.row_degrees()
            )
        return self._edge_rows

    def operator(self, kind: str = "random_walk", add_self_loops: bool = False) -> sp.csr_matrix:
        """Rows of the graph's memoised propagation operator, columns remapped.

        The returned ``(num_rows, num_cols)`` CSR carries the *frozen* shard
        operator's normalisation (computed once at server build), so a
        restricted SpMM reproduces ``operator @ h`` for the requested rows
        bitwise — the per-row data slice and its order are untouched.  Empty
        plans return an empty matrix without building any operator; full-graph
        plans return the memoised full operator itself; derived plans slice or
        merge their sources' operators instead of re-slicing the graph's.
        """
        key = (kind, add_self_loops)
        if key in self._operators:
            return self._operators[key]
        if self.num_rows == 0:
            operator = sp.csr_matrix((0, self.num_cols), dtype=np.float64)
        elif self._full:
            operator = self.graph.propagation_operator(kind, add_self_loops=add_self_loops)
        elif self._op_source is not None and self._op_source[0] == "slice":
            _, parent, positions = self._op_source
            operator = _slice_operator_rows(parent.operator(kind, add_self_loops), positions)
        elif self._op_source is not None and self._op_source[0] == "merge":
            _, base, delta, from_base, map_base, map_delta = self._op_source
            op_base = base.operator(kind, add_self_loops)
            op_delta = delta.operator(kind, add_self_loops)
            indptr, edge_index = _interleave_rows(
                np.asarray(op_base.indptr, dtype=np.int64),
                np.asarray(op_delta.indptr, dtype=np.int64),
                from_base,
            )
            data = np.concatenate([op_base.data, op_delta.data])[edge_index]
            indices = np.concatenate(
                [map_base[op_base.indices], map_delta[op_delta.indices]]
            )[edge_index]
            operator = sp.csr_matrix(
                (data, indices, indptr), shape=(self.num_rows, self.num_cols)
            )
        else:
            operator = self.graph.restricted_operator(
                self.rows, self.cols, kind=kind, add_self_loops=add_self_loops
            )
        self._operators[key] = operator
        return operator


@dataclass
class PlanCacheStats:
    """Counters describing plan-cache effectiveness."""

    exact_hits: int = 0
    subset_hits: int = 0
    superset_hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.exact_hits + self.subset_hits + self.superset_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "PlanCacheStats") -> "PlanCacheStats":
        """Element-wise sum (used to aggregate per-worker stats)."""
        return PlanCacheStats(
            exact_hits=self.exact_hits + other.exact_hits,
            subset_hits=self.subset_hits + other.subset_hits,
            superset_hits=self.superset_hits + other.superset_hits,
            misses=self.misses + other.misses,
            evictions=self.evictions + other.evictions,
        )

    def as_dict(self) -> dict:
        """Event-name → count view (the telemetry gauge mirror exports this)."""
        return {
            "exact_hits": self.exact_hits,
            "subset_hits": self.subset_hits,
            "superset_hits": self.superset_hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PlanCache:
    """LRU of ``(layer, miss-set signature)`` → :class:`Restriction`, with
    patching.

    Lookup order per requested row set:

    1. **exact** — same layer and signature (``rows.tobytes()``): return the
       cached plan untouched.
    2. **subset patch** — a recently used *same-layer* plan's rows contain
       the request and are at most ``subset_blowup`` times larger: derive
       via :meth:`Restriction.restrict_to` (a row slice; no graph work).
    3. **superset patch** — a recently used same-layer plan's rows are
       contained in the request and the delta is at most ``superset_delta``
       of it: build a delta plan for the new rows only and merge.
    4. **miss** — build from the graph.

    The layer in the key is a *correctness* requirement, not bookkeeping.
    Serving a shard exactly relies on a distance budget: a layer-``k`` miss
    set lies within ``K - k`` hops of the shard core, so its plan's column
    set — which becomes layer ``k-1``'s needed set — stays within
    ``K - k + 1`` hops, and every row the recursion ever *computes* is
    within ``K - 1`` hops, where the shard's K-hop halo still holds the
    node's complete neighbour list.  Patching only ever inherits column sets
    of same-layer plans, so derived plans respect the same budget; a
    cross-layer patch (say a layer-2 request sliced out of a cached
    layer-1 plan) would drag halo-edge nodes — whose shard-CSR rows are
    truncated — into the computed set and silently break exactness.

    Only the ``probe_depth`` most recently used same-layer plans are
    examined for patching (the containment test is a searchsorted over the
    candidate rows; probing the whole cache would cost more than it saves).
    Derived plans are inserted under the requested signature, so a repeating
    mix converges to exact hits.  Not thread-safe by itself — the serving
    worker's predict lock already serialises access, exactly as for its
    embedding cache.
    """

    def __init__(
        self,
        capacity: int,
        probe_depth: int = 4,
        subset_blowup: float = 3.0,
        superset_delta: float = 0.5,
    ) -> None:
        if capacity < 0:
            raise ValueError("plan cache capacity must be non-negative")
        self.capacity = int(capacity)
        self.probe_depth = int(probe_depth)
        self.subset_blowup = float(subset_blowup)
        self.superset_delta = float(superset_delta)
        self.stats = PlanCacheStats()
        self._plans: "OrderedDict[Tuple[int, bytes], Restriction]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def clear(self) -> None:
        self._plans.clear()

    def restriction(self, graph: Graph, rows: np.ndarray, layer: int = 0) -> Restriction:
        """The layer-``layer`` plan for ``rows`` (sorted unique ids), cached."""
        rows = np.asarray(rows, dtype=np.int64)
        if not self.enabled:
            self.stats.misses += 1
            return Restriction(graph, rows)
        key = (int(layer), rows.tobytes())
        plan = self._plans.get(key)
        if plan is not None and plan.graph is graph:
            self._plans.move_to_end(key)
            self.stats.exact_hits += 1
            return plan
        plan = self._derive(graph, rows, int(layer))
        if plan is None:
            self.stats.misses += 1
            plan = Restriction(graph, rows)
        self._plans[key] = plan
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
            self.stats.evictions += 1
        return plan

    def _derive(self, graph: Graph, rows: np.ndarray, layer: int) -> Optional[Restriction]:
        """Patch a recently used same-layer plan into the requested one."""
        if len(rows) == 0:
            return None  # an empty plan builds nothing anyway
        probed = 0
        for (cached_layer, _), cached in reversed(self._plans.items()):
            if probed >= self.probe_depth:
                break
            if cached_layer != layer:  # never inherit another layer's columns
                continue
            probed += 1
            if cached.graph is not graph:
                continue
            n_cached, n_rows = cached.num_rows, len(rows)
            if n_cached >= n_rows:
                if n_cached == 0 or n_cached > self.subset_blowup * n_rows:
                    continue
                positions = _positions_if_contained(cached.rows, rows)
                if positions is not None:
                    self.stats.subset_hits += 1
                    return cached.restrict_to(positions)
            else:
                if n_cached == 0 or (n_rows - n_cached) > self.superset_delta * n_rows:
                    continue
                positions = _positions_if_contained(rows, cached.rows)
                if positions is not None:
                    from_base = np.zeros(n_rows, dtype=bool)
                    from_base[positions] = True
                    delta = Restriction(graph, rows[~from_base])
                    self.stats.superset_hits += 1
                    return Restriction._merged(cached, delta, rows, from_base)
        return None
