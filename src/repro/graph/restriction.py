"""Row-restricted views of a frozen graph's propagation structure.

The serving hot path answers "recompute layer ``k`` for these *miss* nodes"
many thousands of times per second.  Re-materialising an induced subgraph per
flush (``graph.subgraph`` + fresh operator normalisation) pays CSR slicing,
feature copies and two sparse matmuls of pure overhead before any model work
runs.  A :class:`Restriction` instead *slices rows* out of the frozen graph's
CSR structure once per flush and remaps the column ids into the batch-local
index space — the "compile the aggregation operator once, reuse sliced views"
strategy of Alves et al. (PAPERS.md).

Exactness: a restriction is only a valid stand-in for full-graph inference
when every neighbour of every requested row is present in ``cols``.  The
serving recursion guarantees that by construction (layer ``k``'s miss set is
expanded by exactly one hop to form layer ``k-1``'s needed set), and
:func:`_remap_columns` verifies it, so a violation raises instead of silently
corrupting a prediction.

All node ids here are ids *of the frozen graph* (shard-local ids when the
graph is a shard's induced subgraph); translating global ids is the caller's
job.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph

__all__ = ["Restriction", "slice_csr_rows"]


def _row_slices(
    indptr: np.ndarray, rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(new_indptr, edge_index)`` selecting the CSR entries of ``rows``.

    ``edge_index`` gathers the selected entries out of the parent ``data`` /
    ``indices`` arrays in row order; ``new_indptr`` delimits them per row.
    One vectorised pass, no Python-level loop over rows.
    """
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    new_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])
    total = int(new_indptr[-1])
    edge_index = np.repeat(starts - new_indptr[:-1], lengths) + np.arange(total, dtype=np.int64)
    return new_indptr, edge_index


def _remap_columns(cols: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Positions of ``values`` inside the sorted id set ``cols`` (checked)."""
    positions = np.searchsorted(cols, values)
    if len(values):
        clipped = np.minimum(positions, len(cols) - 1)
        missing = cols[clipped] != values
        if np.any(missing):
            raise ValueError(
                f"restriction columns are missing neighbours "
                f"{np.unique(values[missing]).tolist()[:8]}..."
            )
    return positions


def slice_csr_rows(matrix: sp.csr_matrix, rows: np.ndarray, cols: np.ndarray) -> sp.csr_matrix:
    """``matrix[rows][:, cols]`` assuming every selected entry's column ∈ ``cols``.

    Unlike scipy's general two-stage fancy indexing this never touches rows
    outside ``rows`` and performs no column search beyond one
    ``np.searchsorted`` — the restriction invariant (all neighbours present)
    turns submatrix extraction into a pure gather.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    indptr, edge_index = _row_slices(np.asarray(matrix.indptr, dtype=np.int64), rows)
    positions = _remap_columns(cols, matrix.indices[edge_index])
    return sp.csr_matrix(
        (matrix.data[edge_index], positions, indptr), shape=(len(rows), len(cols))
    )


class Restriction:
    """The receptive-field slice one micro-batch needs from a frozen graph.

    Built from the *miss rows* of one layer: ``cols`` is the sorted union of
    the rows and their full (true, unsampled) neighbourhood, i.e. exactly the
    node set whose previous-layer representations the layer consumes.  The
    sliced CSR structure and any sliced propagation operators are memoised on
    the instance, so a layer's aggregation and a later bookkeeping step share
    one gather.

    Attributes
    ----------
    rows:
        Sorted unique node ids whose outputs are requested.
    cols:
        Sorted node ids the computation reads (``rows`` ∪ neighbours).
    indptr, col_positions:
        CSR of the rows' neighbour lists with neighbours given as positions
        into ``cols`` (edge order identical to the parent graph's, which is
        what keeps segment reductions bitwise-equal to full-graph inference).
    row_positions:
        Each row's own position inside ``cols``.
    """

    def __init__(self, graph: Graph, rows: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        self.graph = graph
        self.rows = rows
        self.indptr, self._edge_index = _row_slices(graph.indptr, rows)
        neighbors = graph.indices[self._edge_index]
        self.cols = np.union1d(rows, neighbors)
        self.col_positions = _remap_columns(self.cols, neighbors)
        self.row_positions = _remap_columns(self.cols, rows)
        self._operators: dict = {}
        self._edge_rows: Optional[np.ndarray] = None

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_cols(self) -> int:
        return len(self.cols)

    @property
    def num_edges(self) -> int:
        return len(self.col_positions)

    def row_degrees(self) -> np.ndarray:
        """True (full-graph) degree of every requested row."""
        return np.diff(self.indptr)

    def edge_rows(self) -> np.ndarray:
        """Row ordinal (0..num_rows-1) of every sliced edge, in edge order.

        The restricted counterpart of :func:`repro.models.base.edge_destinations`.
        """
        if self._edge_rows is None:
            self._edge_rows = np.repeat(
                np.arange(self.num_rows, dtype=np.int64), self.row_degrees()
            )
        return self._edge_rows

    def operator(self, kind: str = "random_walk", add_self_loops: bool = False) -> sp.csr_matrix:
        """Rows of the graph's memoised propagation operator, columns remapped.

        The returned ``(num_rows, num_cols)`` CSR carries the *frozen* shard
        operator's normalisation (computed once at server build), so a
        restricted SpMM reproduces ``operator @ h`` for the requested rows
        bitwise — the per-row data slice and its order are untouched.
        """
        key = (kind, add_self_loops)
        if key not in self._operators:
            self._operators[key] = self.graph.restricted_operator(
                self.rows, self.cols, kind=kind, add_self_loops=add_self_loops
            )
        return self._operators[key]
