"""Graph data structure used throughout the reproduction.

A :class:`Graph` stores an undirected (symmetrised) adjacency in CSR form
plus dense node features, integer labels and train/val/test masks — the same
information the PyG/GraphSAGE datasets in the paper provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = ["Graph"]


@dataclass
class Graph:
    """An attributed graph in CSR form.

    Attributes
    ----------
    indptr, indices:
        CSR row pointers and column indices of the (symmetric) adjacency.
    features:
        ``(num_nodes, num_features)`` dense node features.
    labels:
        ``(num_nodes,)`` integer class labels.
    train_mask, val_mask, test_mask:
        Boolean masks selecting the node splits.
    name:
        Human-readable dataset name (``"cora"``, ``"reddit"``, ...).
    """

    indptr: np.ndarray
    indices: np.ndarray
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    val_mask: np.ndarray
    test_mask: np.ndarray
    name: str = "graph"
    _adjacency: Optional[sp.csr_matrix] = field(default=None, repr=False, compare=False)
    #: memoised propagation operators keyed by (kind, add_self_loops); the
    #: adjacency structure is immutable, so full-graph layer-wise inference
    #: pays the normalisation cost once per graph instead of once per layer.
    _operator_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: np.ndarray,
        features: np.ndarray,
        labels: np.ndarray,
        train_mask: Optional[np.ndarray] = None,
        val_mask: Optional[np.ndarray] = None,
        test_mask: Optional[np.ndarray] = None,
        name: str = "graph",
        make_undirected: bool = True,
    ) -> "Graph":
        """Build a graph from an ``(E, 2)`` edge list (symmetrised, dedup'd)."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= num_nodes):
            raise ValueError("edge endpoints out of range")
        src, dst = edges[:, 0], edges[:, 1]
        if make_undirected:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        data = np.ones(len(src), dtype=np.float64)
        adjacency = sp.csr_matrix((data, (src, dst)), shape=(num_nodes, num_nodes))
        adjacency.data[:] = 1.0  # collapse duplicate edges
        adjacency.setdiag(0)
        adjacency.eliminate_zeros()
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.shape[0] != num_nodes or labels.shape[0] != num_nodes:
            raise ValueError("features/labels must have one row per node")

        def default_mask() -> np.ndarray:
            return np.zeros(num_nodes, dtype=bool)

        graph = cls(
            indptr=adjacency.indptr.astype(np.int64),
            indices=adjacency.indices.astype(np.int64),
            features=features,
            labels=labels,
            train_mask=train_mask if train_mask is not None else default_mask(),
            val_mask=val_mask if val_mask is not None else default_mask(),
            test_mask=test_mask if test_mask is not None else default_mask(),
            name=name,
        )
        graph._adjacency = adjacency
        return graph

    @classmethod
    def from_networkx(cls, nx_graph, features: np.ndarray, labels: np.ndarray, name: str = "graph") -> "Graph":
        """Build a graph from a ``networkx`` graph (nodes must be 0..N-1)."""
        num_nodes = nx_graph.number_of_nodes()
        edges = np.asarray(list(nx_graph.edges()), dtype=np.int64).reshape(-1, 2)
        return cls.from_edges(num_nodes, edges, features, labels, name=name)

    # -- basic properties --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges stored (2x the undirected edge count)."""
        return len(self.indices)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    def degrees(self) -> np.ndarray:
        """Out-degree of every node."""
        return np.diff(self.indptr)

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of ``node``."""
        return self.indices[self.indptr[node]: self.indptr[node + 1]]

    def adjacency(self) -> sp.csr_matrix:
        """The binary adjacency matrix in CSR form."""
        if self._adjacency is None:
            data = np.ones(len(self.indices), dtype=np.float64)
            self._adjacency = sp.csr_matrix(
                (data, self.indices, self.indptr), shape=(self.num_nodes, self.num_nodes)
            )
        return self._adjacency

    # -- GCN-style propagation helpers ---------------------------------------------

    @staticmethod
    def _freeze(matrix: sp.csr_matrix) -> sp.csr_matrix:
        """Mark a cached operator's buffers read-only.

        The memoised operators are shared between callers, so in-place
        mutation (``op.data *= alpha``) would silently corrupt every later
        full-graph inference; freezing turns that into an immediate error.
        Callers that need a mutable operator should ``.copy()`` it.
        """
        matrix.data.flags.writeable = False
        matrix.indices.flags.writeable = False
        matrix.indptr.flags.writeable = False
        return matrix

    def normalized_adjacency(self, add_self_loops: bool = True) -> sp.csr_matrix:
        """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}``.

        Memoised and returned read-only — ``.copy()`` before mutating.
        """
        key = ("normalized", add_self_loops)
        if key not in self._operator_cache:
            adjacency = self.adjacency().copy()
            if add_self_loops:
                adjacency = adjacency + sp.eye(self.num_nodes, format="csr")
            degrees = np.asarray(adjacency.sum(axis=1)).flatten()
            inv_sqrt = np.zeros_like(degrees)
            nonzero = degrees > 0
            inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
            scaling = sp.diags(inv_sqrt)
            self._operator_cache[key] = self._freeze((scaling @ adjacency @ scaling).tocsr())
        return self._operator_cache[key]

    def random_walk_adjacency(self, add_self_loops: bool = False) -> sp.csr_matrix:
        """Row-normalised adjacency ``D^{-1} A`` (mean aggregation).

        With ``add_self_loops`` the operator becomes ``D̂^{-1} (A + I)`` — the
        mean over the neighbourhood *including the node itself*, which is the
        full-graph limit of the sampled GCN aggregation
        ``(sum_neigh + h_self) / (fanout + 1)``.

        Memoised and returned read-only — ``.copy()`` before mutating.
        """
        key = ("random_walk", add_self_loops)
        if key not in self._operator_cache:
            adjacency = self.adjacency()
            if add_self_loops:
                adjacency = (adjacency + sp.eye(self.num_nodes, format="csr")).tocsr()
            degrees = np.maximum(np.asarray(adjacency.sum(axis=1)).flatten(), 1.0)
            self._operator_cache[key] = self._freeze(
                (sp.diags(1.0 / degrees) @ adjacency).tocsr()
            )
        return self._operator_cache[key]

    def propagation_operator(
        self, kind: str = "random_walk", add_self_loops: bool = False
    ) -> sp.csr_matrix:
        """The memoised full-graph operator of ``kind`` (read-only).

        One dispatch point for :meth:`random_walk_adjacency` /
        :meth:`normalized_adjacency` (``kind`` ∈ ``{"random_walk",
        "normalized"}``) shared by ``prepare_full`` warm-up, restricted
        slicing and full-shard restrictions (which return this operator
        as-is instead of slicing every row).
        """
        if kind == "random_walk":
            return self.random_walk_adjacency(add_self_loops=add_self_loops)
        if kind == "normalized":
            return self.normalized_adjacency(add_self_loops=add_self_loops)
        raise ValueError(f"kind must be 'random_walk' or 'normalized', got {kind!r}")

    def restricted_operator(
        self,
        rows: Sequence[int],
        cols: Sequence[int],
        kind: str = "random_walk",
        add_self_loops: bool = False,
    ) -> sp.csr_matrix:
        """Rows of a memoised propagation operator as a ``(rows, cols)`` CSR.

        Slices ``rows`` out of :meth:`propagation_operator` and remaps the
        column ids to positions inside the sorted id set ``cols`` — the
        restricted-SpMM building block of the serving fast path.  Every
        selected entry's column must be present in ``cols`` (i.e. ``cols``
        covers the rows' neighbourhoods, plus the rows themselves when
        ``add_self_loops``); missing columns raise.  An empty row set
        short-circuits to an empty matrix without building (or normalising)
        any operator.

        The slice carries the *whole-graph* normalisation: because the rows'
        neighbour lists are complete, each sliced row is bit-identical to the
        corresponding row of the full operator, unlike the re-normalised
        operator of an induced :meth:`subgraph`.
        """
        from .restriction import slice_csr_rows

        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if len(rows) == 0:
            return sp.csr_matrix((0, len(cols)), dtype=np.float64)
        operator = self.propagation_operator(kind, add_self_loops=add_self_loops)
        return slice_csr_rows(operator, rows, cols)

    # -- restructuring ----------------------------------------------------------------

    def subgraph(self, nodes: Sequence[int], name: Optional[str] = None) -> "Graph":
        """Induced subgraph on ``nodes`` (relabelled to 0..len(nodes)-1)."""
        # np.unique sorts and deduplicates in C while keeping an integer dtype,
        # unlike the Python-level sorted(set(...)) round-trip it replaces.
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        adjacency = self.adjacency()[nodes][:, nodes].tocsr()
        sub = Graph(
            indptr=adjacency.indptr.astype(np.int64),
            indices=adjacency.indices.astype(np.int64),
            features=self.features[nodes],
            labels=self.labels[nodes],
            train_mask=self.train_mask[nodes],
            val_mask=self.val_mask[nodes],
            test_mask=self.test_mask[nodes],
            name=name or f"{self.name}-sub",
        )
        sub._adjacency = adjacency
        return sub

    def split_nodes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Node id arrays of the train / val / test splits."""
        all_nodes = np.arange(self.num_nodes)
        return all_nodes[self.train_mask], all_nodes[self.val_mask], all_nodes[self.test_mask]

    def summary(self) -> str:
        """One-line human readable description (used by examples)."""
        return (
            f"{self.name}: {self.num_nodes} nodes, {self.num_edges // 2} undirected edges, "
            f"{self.num_features} features, {self.num_classes} classes"
        )

    def validate(self) -> None:
        """Raise if internal invariants are violated (used by property tests)."""
        if len(self.indptr) != self.num_nodes + 1:
            raise ValueError("indptr length mismatch")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr endpoints invalid")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) and (self.indices.min() < 0 or self.indices.max() >= self.num_nodes):
            raise ValueError("indices out of range")
        for mask in (self.train_mask, self.val_mask, self.test_mask):
            if mask.shape != (self.num_nodes,):
                raise ValueError("mask shape mismatch")
        if self.features.shape[0] != self.num_nodes:
            raise ValueError("feature rows must equal num_nodes")
        if self.labels.shape != (self.num_nodes,):
            raise ValueError("labels shape mismatch")
