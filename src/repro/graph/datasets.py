"""Benchmark graph datasets (Table IV of the paper).

The paper evaluates on Cora, Citeseer, Pubmed and Reddit.  Those datasets
cannot be downloaded in this offline environment, so this module provides:

* :class:`DatasetStats` — the exact node/edge/feature/label counts from
  Table IV, used verbatim by the analytical experiments (profiling, the
  performance & resource model, and the latency/energy comparisons), which
  only depend on graph statistics, never on actual feature values.
* :func:`load_dataset` — deterministic *synthetic* stand-ins generated with a
  stochastic block model whose communities correspond to class labels and
  whose features are noisy class prototypes.  This preserves the property the
  accuracy experiments rely on (labels are predictable from graph structure +
  features, i.e. homophily), so the compression-vs-accuracy *trend* of
  Table III can be reproduced.  A ``scale`` parameter shrinks the graphs so
  training runs fit in CI budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .graph import Graph

__all__ = ["DatasetStats", "PAPER_DATASETS", "dataset_stats", "load_dataset", "synthetic_graph"]


@dataclass(frozen=True)
class DatasetStats:
    """Graph statistics as reported in Table IV."""

    name: str
    num_nodes: int
    num_edges: int
    num_features: int
    num_classes: int

    @property
    def average_degree(self) -> float:
        return 2.0 * self.num_edges / self.num_nodes

    def scaled(self, scale: float) -> "DatasetStats":
        """Proportionally shrunk statistics (used for synthetic generation)."""
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        nodes = max(int(round(self.num_nodes * scale)), 4 * self.num_classes)
        edges = max(int(round(self.num_edges * scale)), nodes)
        features = max(int(round(self.num_features * min(1.0, scale * 4))), 16)
        return DatasetStats(self.name, nodes, edges, features, self.num_classes)


#: Table IV of the paper.
PAPER_DATASETS: Dict[str, DatasetStats] = {
    "cora": DatasetStats("cora", 2_708, 10_556, 1_433, 7),
    "citeseer": DatasetStats("citeseer", 3_327, 4_732, 3_703, 6),
    "pubmed": DatasetStats("pubmed", 19_717, 44_338, 500, 3),
    "reddit": DatasetStats("reddit", 232_965, 11_606_919, 602, 41),
}

#: Short names used in the paper's figures.
DATASET_ALIASES = {"cr": "cora", "cs": "citeseer", "pb": "pubmed", "rd": "reddit"}


def dataset_stats(name: str) -> DatasetStats:
    """Look up Table IV statistics by full name or paper abbreviation."""
    key = name.lower()
    key = DATASET_ALIASES.get(key, key)
    if key not in PAPER_DATASETS:
        raise KeyError(f"unknown dataset '{name}'; known: {sorted(PAPER_DATASETS)}")
    return PAPER_DATASETS[key]


def synthetic_graph(
    num_nodes: int,
    num_edges: int,
    num_features: int,
    num_classes: int,
    seed: int = 0,
    homophily: float = 0.82,
    feature_noise: float = 0.8,
    train_fraction: float = 0.6,
    val_fraction: float = 0.2,
    name: str = "synthetic",
) -> Graph:
    """Generate a labelled homophilous graph with class-informative features.

    The generator is a degree-corrected planted-partition model: each node is
    assigned a class; ``homophily`` of the edges connect same-class endpoints
    and the rest connect uniformly random pairs.  Features are a class
    prototype plus Gaussian noise (``feature_noise`` controls the SNR), which
    mimics the bag-of-words / embedding features of the citation and Reddit
    graphs closely enough for accuracy-trend experiments.
    """
    if num_nodes < num_classes:
        raise ValueError("need at least one node per class")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_classes, size=num_nodes)
    # Guarantee every class appears so the classifier head is well defined.
    labels[:num_classes] = np.arange(num_classes)

    nodes_by_class = [np.where(labels == c)[0] for c in range(num_classes)]

    num_undirected = max(num_edges, num_nodes)
    same_class = rng.random(num_undirected) < homophily
    src = rng.integers(0, num_nodes, size=num_undirected)
    dst = np.empty(num_undirected, dtype=np.int64)
    # Homophilous edges pick the destination from the source's class.
    for c in range(num_classes):
        member_mask = same_class & (labels[src] == c)
        count = int(member_mask.sum())
        if count:
            dst[member_mask] = rng.choice(nodes_by_class[c], size=count)
    random_mask = ~same_class
    dst[random_mask] = rng.integers(0, num_nodes, size=int(random_mask.sum()))
    keep = src != dst
    edges = np.stack([src[keep], dst[keep]], axis=1)

    prototypes = rng.normal(0.0, 1.0, size=(num_classes, num_features))
    features = prototypes[labels] + feature_noise * rng.normal(0.0, 1.0, size=(num_nodes, num_features))

    order = rng.permutation(num_nodes)
    train_end = int(train_fraction * num_nodes)
    val_end = train_end + int(val_fraction * num_nodes)
    train_mask = np.zeros(num_nodes, dtype=bool)
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    train_mask[order[:train_end]] = True
    val_mask[order[train_end:val_end]] = True
    test_mask[order[val_end:]] = True

    return Graph.from_edges(
        num_nodes,
        edges,
        features,
        labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        name=name,
    )


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    num_features: Optional[int] = None,
) -> Graph:
    """Load a synthetic stand-in for one of the paper's datasets.

    Parameters
    ----------
    name:
        ``"cora" | "citeseer" | "pubmed" | "reddit"`` (or the CR/CS/PB/RD
        abbreviations used in the paper's figures).
    scale:
        Fraction of the original node/edge counts to generate.  ``1.0``
        reproduces the Table IV sizes; small values (e.g. ``0.02``) are used
        by the test-suite and the accuracy benchmarks so that training remains
        laptop-scale.
    seed:
        Seed for the deterministic generator.
    num_features:
        Optionally override the feature dimension (e.g. to keep 512-dim
        hidden-layer experiments cheap).
    """
    stats = dataset_stats(name)
    if scale != 1.0:
        stats = stats.scaled(scale)
    features = num_features if num_features is not None else stats.num_features
    return synthetic_graph(
        num_nodes=stats.num_nodes,
        num_edges=stats.num_edges,
        num_features=features,
        num_classes=stats.num_classes,
        seed=seed,
        name=stats.name if scale == 1.0 else f"{stats.name}-x{scale:g}",
    )
