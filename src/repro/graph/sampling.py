"""GraphSAGE-style neighbour sampling and mini-batch construction.

The paper adopts the sampling-based aggregation strategy of GraphSAGE for all
four GNN variants with sample sizes ``S1 = 25`` and ``S2 = 10`` (Section IV-A).
A :class:`MiniBatch` bundles, for every layer, the sampled neighbourhood of
the nodes whose representations that layer must produce, already translated
to *local* row indices so that models can aggregate with plain fancy
indexing on dense feature tensors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .graph import Graph

__all__ = ["SampledBlock", "MiniBatch", "NeighborSampler", "minibatch_iterator"]


@dataclass
class SampledBlock:
    """Sampled neighbourhood for one GNN layer.

    ``self_index`` and ``neighbor_index`` are row indices into the *previous*
    layer's node array (``MiniBatch.layer_nodes[k]``), so a layer's forward
    pass is ``h_self = h[self_index]`` and ``h_neigh = h[neighbor_index]``
    with ``h_neigh`` of shape ``(num_dst, fanout, features)``.
    """

    dst_nodes: np.ndarray          # global node ids whose output this layer produces
    self_index: np.ndarray         # (num_dst,) rows of dst nodes in the previous layer's array
    neighbor_index: np.ndarray     # (num_dst, fanout) rows of sampled neighbours

    @property
    def num_dst(self) -> int:
        return len(self.dst_nodes)

    @property
    def fanout(self) -> int:
        return self.neighbor_index.shape[1]


@dataclass
class MiniBatch:
    """A sampled computation graph for a batch of seed nodes.

    Attributes
    ----------
    seeds:
        Global ids of the target nodes (the batch).
    layer_nodes:
        ``layer_nodes[0]`` is the input-layer node set; ``layer_nodes[k]`` is
        the node set whose hidden features layer ``k`` produces
        (``layer_nodes[-1] == seeds``).
    blocks:
        One :class:`SampledBlock` per layer, input-most first.
    """

    seeds: np.ndarray
    layer_nodes: List[np.ndarray]
    blocks: List[SampledBlock]

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    def input_nodes(self) -> np.ndarray:
        """Global ids whose raw features must be gathered before layer 1."""
        return self.layer_nodes[0]

    def labels(self, graph: Graph) -> np.ndarray:
        """Labels of the seed nodes."""
        return graph.labels[self.seeds]

    def input_features(self, graph: Graph) -> np.ndarray:
        """Raw features of the input-layer nodes."""
        return graph.features[self.input_nodes()]


class NeighborSampler:
    """Uniform neighbour sampler with replacement (fixed fanout per layer).

    ``fanouts`` are listed from the *first* (input-side) layer to the last,
    matching the paper's ``S1 = 25, S2 = 10`` convention: layer 1 aggregates
    25 sampled neighbours per node, layer 2 aggregates 10.
    """

    def __init__(self, graph: Graph, fanouts: Sequence[int], seed: Optional[int] = None) -> None:
        if not fanouts or any(f <= 0 for f in fanouts):
            raise ValueError("fanouts must be positive")
        self.graph = graph
        self.fanouts = list(fanouts)
        self.rng = np.random.default_rng(seed)

    def _sample_neighbors(self, nodes: np.ndarray, fanout: int) -> np.ndarray:
        """Sample ``fanout`` neighbours (with replacement) for each node.

        Isolated nodes fall back to self-loops so every row is fully
        populated, mirroring the padding behaviour of GraphSAGE.
        """
        graph = self.graph
        result = np.empty((len(nodes), fanout), dtype=np.int64)
        for row, node in enumerate(nodes):
            start, stop = graph.indptr[node], graph.indptr[node + 1]
            neighborhood = graph.indices[start:stop]
            if len(neighborhood) == 0:
                result[row, :] = node
            else:
                result[row, :] = self.rng.choice(neighborhood, size=fanout, replace=True)
        return result

    def sample(self, seeds: Sequence[int]) -> MiniBatch:
        """Build the sampled computation graph for ``seeds``.

        Sampling proceeds from the output layer inwards: the last layer needs
        the seeds' neighbours, the layer before needs the neighbours of that
        union, and so on.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.ndim != 1 or len(seeds) == 0:
            raise ValueError("seeds must be a non-empty 1-D sequence of node ids")

        dst_per_layer: List[np.ndarray] = [None] * len(self.fanouts)
        neighbors_per_layer: List[np.ndarray] = [None] * len(self.fanouts)
        current = seeds
        for layer in reversed(range(len(self.fanouts))):
            sampled = self._sample_neighbors(current, self.fanouts[layer])
            dst_per_layer[layer] = current
            neighbors_per_layer[layer] = sampled
            current = np.unique(np.concatenate([current, sampled.reshape(-1)]))

        layer_nodes: List[np.ndarray] = [current]
        blocks: List[SampledBlock] = []
        for layer in range(len(self.fanouts)):
            previous = layer_nodes[-1]
            lookup = {int(node): row for row, node in enumerate(previous)}
            dst = dst_per_layer[layer]
            neighbors = neighbors_per_layer[layer]
            self_index = np.fromiter((lookup[int(n)] for n in dst), dtype=np.int64, count=len(dst))
            neighbor_index = np.fromiter(
                (lookup[int(n)] for n in neighbors.reshape(-1)), dtype=np.int64, count=neighbors.size
            ).reshape(neighbors.shape)
            blocks.append(SampledBlock(dst_nodes=dst, self_index=self_index, neighbor_index=neighbor_index))
            layer_nodes.append(dst)
        return MiniBatch(seeds=seeds, layer_nodes=layer_nodes, blocks=blocks)

    def sample_batches(self, nodes: Sequence[int], batch_size: int) -> Iterator[MiniBatch]:
        """Yield batches covering an arbitrary seed-node subset, in order.

        Unlike :func:`minibatch_iterator` — which is built for epoch-style
        sweeps (shuffling, its own seeding) — this is the entry point for
        callers that already hold a specific, possibly small or duplicated,
        set of seed nodes: the serving engine's micro-batcher coalesces each
        flush's queued requests into exactly one such batch.  Nothing beyond
        the current batch is materialised.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        for start in range(0, len(nodes), batch_size):
            batch = nodes[start: start + batch_size]
            if len(batch):
                yield self.sample(batch)


def minibatch_iterator(
    sampler: NeighborSampler,
    nodes: Sequence[int],
    batch_size: int,
    shuffle: bool = True,
    seed: Optional[int] = None,
) -> Iterator[MiniBatch]:
    """Yield :class:`MiniBatch` objects covering ``nodes`` in batches."""
    nodes = np.asarray(nodes, dtype=np.int64)
    order = np.arange(len(nodes))
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    yield from sampler.sample_batches(nodes[order], batch_size)
