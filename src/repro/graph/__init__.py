"""Graph data structures, datasets, sampling and partitioning."""

from .datasets import (
    DATASET_ALIASES,
    PAPER_DATASETS,
    DatasetStats,
    dataset_stats,
    load_dataset,
    synthetic_graph,
)
from .graph import Graph
from .partition import partition_graph, partition_nodes
from .restriction import PlanCache, PlanCacheStats, Restriction, slice_csr_rows
from .sampling import MiniBatch, NeighborSampler, SampledBlock, minibatch_iterator

__all__ = [
    "Graph",
    "DatasetStats",
    "PAPER_DATASETS",
    "DATASET_ALIASES",
    "dataset_stats",
    "load_dataset",
    "synthetic_graph",
    "NeighborSampler",
    "SampledBlock",
    "MiniBatch",
    "minibatch_iterator",
    "partition_graph",
    "partition_nodes",
    "Restriction",
    "PlanCache",
    "PlanCacheStats",
    "slice_csr_rows",
]
