"""Legacy setup shim.

The project metadata lives in ``pyproject.toml`` (PEP 621).  This file exists
only so that ``pip install -e .`` can fall back to the legacy
``setup.py develop`` code path in offline environments that lack the
``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import setup

setup()
