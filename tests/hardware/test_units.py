"""Unit tests for the individual hardware components (FFT unit, systolic array, VPU, buffers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import BlockCirculantSpec, random_block_circulant, spectral_weights
from repro.hardware import (
    BufferOverflowError,
    FFTUnit,
    GlobalBuffer,
    IFFTUnit,
    NodeFeatureBuffer,
    SystolicArray,
    VectorProcessingUnit,
    WeightBuffer,
)


class TestFFTUnit:
    def test_published_latency_coefficient(self):
        unit = FFTUnit(channels=1, block_size=128)
        assert unit.cycles_per_transform == 484  # alpha(128) from Section IV-B

    def test_cycles_follow_equation_3(self):
        unit = FFTUnit(channels=18, block_size=128)
        # 25 neighbours x 12 sub-vectors = 300 transforms on 18 channels.
        assert unit.cycles_for(300) == 484 * int(np.ceil(300 / 18))

    def test_zero_transforms_cost_nothing(self):
        assert FFTUnit(channels=4, block_size=128).cycles_for(0) == 0

    def test_forward_transform_matches_numpy(self, rng):
        unit = FFTUnit(channels=2, block_size=16)
        data = rng.standard_normal((5, 16))
        assert np.allclose(unit.process(data), np.fft.fft(data, axis=-1))

    def test_inverse_transform_matches_numpy(self, rng):
        unit = IFFTUnit(channels=2, block_size=16)
        data = rng.standard_normal((3, 16)) + 1j * rng.standard_normal((3, 16))
        assert np.allclose(unit.process(data), np.fft.ifft(data, axis=-1))

    def test_statistics_accumulate_and_reset(self, rng):
        unit = FFTUnit(channels=2, block_size=8)
        unit.process(rng.standard_normal((4, 8)))
        assert unit.transforms_processed == 4
        assert unit.busy_cycles == unit.cycles_for(4)
        unit.reset_stats()
        assert unit.transforms_processed == 0

    def test_wrong_length_rejected(self, rng):
        with pytest.raises(ValueError):
            FFTUnit(channels=1, block_size=8).process(rng.standard_normal((2, 6)))

    def test_dsp_cost_is_beta_times_channels(self):
        unit = FFTUnit(channels=5, block_size=128)
        assert unit.dsp_cost == 5 * 18

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            FFTUnit(channels=0, block_size=8)


class TestSystolicArray:
    def _loaded_array(self, rng, rows=2, cols=3, block=8, p=3, q=2, parallelism=1):
        array = SystolicArray(rows=rows, cols=cols, pe_parallelism=parallelism, block_size=block)
        spec = BlockCirculantSpec(p * block, q * block, block)
        weights = random_block_circulant(spec, rng)
        array.load_weights(spectral_weights(weights))
        return array, weights, spec

    def test_process_matches_einsum(self, rng):
        array, weights, spec = self._loaded_array(rng)
        x_hat = np.fft.fft(rng.standard_normal((4, spec.q, spec.block_size)), axis=-1)
        out = array.process(x_hat)
        expected = np.einsum("pqn,vqn->vpn", spectral_weights(weights), x_hat)
        assert np.allclose(out, expected)

    def test_cycles_follow_equation_4(self, rng):
        array, _, spec = self._loaded_array(rng, rows=2, cols=3, parallelism=2)
        expected = 5 * int(np.ceil(spec.q / 2)) * int(np.ceil(spec.p / 3)) * int(np.ceil(spec.block_size / 2))
        assert array.cycles_for(5) == expected

    def test_requires_loaded_weights(self, rng):
        array = SystolicArray(rows=1, cols=1, block_size=8)
        with pytest.raises(RuntimeError):
            array.process(np.zeros((1, 1, 8), dtype=complex))
        with pytest.raises(RuntimeError):
            array.cycles_for(1)

    def test_weight_shape_validation(self):
        array = SystolicArray(rows=1, cols=1, block_size=8)
        with pytest.raises(ValueError):
            array.load_weights(np.zeros((2, 2, 4)))

    def test_input_shape_validation(self, rng):
        array, _, spec = self._loaded_array(rng)
        with pytest.raises(ValueError):
            array.process(np.zeros((1, spec.q + 1, spec.block_size), dtype=complex))

    def test_dsp_cost_is_gamma(self):
        array = SystolicArray(rows=4, cols=4, pe_parallelism=2, block_size=128)
        assert array.dsp_cost == 4 * 4 * 16 * 2

    def test_stats_accumulate(self, rng):
        array, _, spec = self._loaded_array(rng)
        array.process(np.zeros((2, spec.q, spec.block_size), dtype=complex))
        assert array.macs_processed == 2 * spec.p * spec.q * spec.block_size
        assert array.busy_cycles == array.cycles_for(2)


class TestVPU:
    def test_width_and_cycles(self):
        vpu = VectorProcessingUnit(lanes=2)
        assert vpu.width == 32
        assert vpu.cycles_for(100) == int(np.ceil(100 / 32))
        assert vpu.cycles_for(0) == 0

    def test_relu_and_stats(self, rng):
        vpu = VectorProcessingUnit(lanes=1)
        data = rng.standard_normal((4, 8))
        out = vpu.relu(data)
        assert np.allclose(out, np.maximum(data, 0))
        assert vpu.elements_processed == 32
        assert vpu.busy_cycles == 2

    def test_sigmoid_elu_exp(self, rng):
        vpu = VectorProcessingUnit()
        data = rng.standard_normal(10)
        assert np.allclose(vpu.sigmoid(data), 1 / (1 + np.exp(-data)))
        assert np.allclose(vpu.exp(data), np.exp(data))
        assert np.allclose(vpu.elu(data), np.where(data > 0, data, np.exp(data) - 1))

    def test_max_pool_and_sum_reduce(self, rng):
        vpu = VectorProcessingUnit()
        data = rng.standard_normal((5, 3, 4))
        assert np.allclose(vpu.max_pool(data, axis=1), data.max(axis=1))
        assert np.allclose(vpu.sum_reduce(data, axis=1), data.sum(axis=1))

    def test_scale_accumulate(self, rng):
        vpu = VectorProcessingUnit()
        vectors = rng.standard_normal((4, 6))
        scales = rng.standard_normal(4)
        expected = (vectors * scales[:, None]).sum(axis=0)
        assert np.allclose(vpu.scale_accumulate(vectors, scales, axis=0), expected)

    def test_add_bias(self, rng):
        vpu = VectorProcessingUnit()
        values = rng.standard_normal((3, 4))
        bias = rng.standard_normal(4)
        assert np.allclose(vpu.add_bias(values, bias), values + bias)

    def test_dsp_cost_is_eta(self):
        assert VectorProcessingUnit(lanes=3).dsp_cost == 3 * 64

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            VectorProcessingUnit(lanes=0)


class TestBuffers:
    def test_weight_buffer_capacity_enforced(self):
        buffer = WeightBuffer(capacity_bytes=1024)
        buffer.store("small", np.zeros(64))  # 256 bytes
        with pytest.raises(BufferOverflowError):
            buffer.store("big", np.zeros(1024))

    def test_complex_values_count_double(self):
        buffer = WeightBuffer(capacity_bytes=10_000)
        buffer.store("spectral", np.zeros(100, dtype=complex))
        assert buffer.used_bytes == 100 * 4 * 2

    def test_store_load_roundtrip_and_replace(self, rng):
        buffer = WeightBuffer(capacity_bytes=100_000)
        weights = rng.standard_normal((4, 4, 8))
        buffer.store("layer", weights)
        assert np.allclose(buffer.load("layer"), weights)
        buffer.store("layer", weights * 2)  # replacement must not double-count
        assert buffer.used_bytes == weights.size * 4

    def test_missing_weight_raises(self):
        with pytest.raises(KeyError):
            WeightBuffer().load("nope")

    def test_feature_buffer_bank_capacity(self):
        buffer = NodeFeatureBuffer(capacity_bytes=4096)
        assert buffer.bank_bytes == 2048
        assert buffer.max_nodes_per_batch(feature_dim=64) == 2048 // 256

    def test_feature_buffer_overflow(self):
        buffer = NodeFeatureBuffer(capacity_bytes=1024)
        with pytest.raises(BufferOverflowError):
            buffer.load_batch(np.zeros((10, 64)))

    def test_feature_traffic_accounting(self):
        buffer = NodeFeatureBuffer(capacity_bytes=65536)
        buffer.load_batch(np.zeros((8, 16)))
        buffer.store_batch(np.zeros((8, 4)))
        assert buffer.total_traffic_bytes == (8 * 16 + 8 * 4) * 4

    def test_global_buffer_defaults_to_paper_sizes(self):
        global_buffer = GlobalBuffer()
        assert global_buffer.weight_buffer.capacity_bytes == 256 * 1024
        assert global_buffer.feature_buffer.capacity_bytes == 512 * 1024
        summary = global_buffer.summary()
        assert summary["weight_buffer_used_bytes"] == 0
